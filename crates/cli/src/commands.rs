//! CLI subcommand implementations.
//!
//! Each command is a thin, testable wrapper over the library crates; I/O is
//! restricted to printing tables and reading/writing the `.clsm`
//! sensitivity files.

use crate::args::{Args, ArgsError};
use clado_core::{
    assign_bits, load_sensitivities, measure_sensitivities, quantized_accuracy, save_sensitivities,
    Algorithm, AssignOptions, CladoVariant, ExperimentContext, SensitivityOptions, ShardContext,
};
use clado_dist::{
    run_pool_worker, run_worker, scheme_to_u8, Coordinator, CoordinatorOptions, JobSpec,
    WorkerOptions,
};
use clado_estim::{
    assignment_regret, build_report, estimate_sensitivities, estimation_fingerprint, estimator_for,
    EstimatorKind, EstimatorOptions, DEFAULT_ESTIMATOR_SEED,
};
use clado_models::{pretrained, ModelKind};
use clado_quant::{bits_to_mb, BitWidth, BitWidthSet, LayerSizes, QuantScheme};
use clado_serve::{
    submit_with_retries, AssignRow, MeasureSpec, Op, ServeMessage, ServeOptions, Server,
    SubmitRequest,
};
use clado_solver::{IqpProblem, Solution, SolverConfig, SymMatrix};
use clado_telemetry::{ManifestValue, Telemetry};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::error::Error;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Usage text for `clado --help` / unknown commands.
pub const USAGE: &str = "\
clado — mixed-precision quantization with cross-layer dependencies (CLADO)

USAGE:
  clado <command> [--options]

COMMANDS:
  models                          list the model zoo
  train        --model <id>       pretrain (or load cached) and report accuracy
  sensitivity  --model <id> --out <file.clsm>      (alias: measure)
                                  run Algorithm 1 and persist Ĝ
               [--set-size 128] [--set-seed 0] [--bits 2,4,8] [--scheme symmetric|affine]
               [--threads N (0 = all cores)] [--no-prefix-cache] [--verbose]
               [--no-batched-probes      probe each pair from the outer stage instead
                                         of advancing the prefix cache (exact either way)]
               [--checkpoint-dir <dir>   journal each probe for crash-safe resume]
               [--resume                 restore completed probes from the journal]
               [--retries N (default 1)  per-probe retry budget on worker panics]
               [--workers N              shard the sweep across N local worker processes]
               [--listen <addr>          accept remote `clado worker` processes
                                         (default 127.0.0.1:0; prints the bound address)]
               [--heartbeat-timeout-ms 3000   evict a silent worker after this long]
               [--idle-timeout-secs 180       fail if no worker connects (0 = wait forever)]
               [--estimator sketched|adaptive|blocktopk|hutchinson
                                         estimate Ω under a probe budget instead of
                                         the full O(|𝔹|²I²) sweep (see `estimate`)]
               [--probe-budget N (0 = 25% of the full sweep)]
               [--estimator-seed 0xE571  probe-selection / ALS seed]
  estimate     --model <id>       run the sub-quadratic Ω estimators against the
                                  exact sweep and report probes spent, entry-wise
                                  error, and IQP assignment regret
               [--estimator <name>|all (default all)] [--probe-budget N]
               [--estimator-seed 0xE571] [--avg-bits 4.0   regret budget]
               [--set-size 128] [--set-seed 0] [--bits 2,4,8]
               [--scheme symmetric|affine] [--threads N] [--no-prefix-cache]
               [--out <file.clsm>   persist the estimated Ω̂ (single estimator only)]
  worker       --connect <addr>          join a distributed sensitivity sweep; the
                                         coordinator sends the job spec and shards
               [--heartbeat-ms 500] [--connect-timeout-secs 10] [--verbose]
               [--connect-retries 5      capped-exponential-backoff connect attempts]
               [--pool                   stay connected across jobs (for `clado serve`);
                                         repeat job specs reuse the warm model]
  serve        run the quantization-planning daemon: bounded admission with
               typed shedding (overloaded / deadline-infeasible), an Ω result
               cache (repeat configs pay zero probes), pooled crash-resilient
               workers, graceful drain on SIGTERM / Ctrl-C (exit 0)
               [--listen 127.0.0.1:4750     client-facing address (0 port → OS-picked,
                                            printed as `serve listening on <addr>`)]
               [--worker-listen 127.0.0.1:0] [--workers N    spawn N pooled workers]
               [--queue-depth 16] [--executors 2] [--cache-capacity 8]
               [--cache-bytes N        in-memory Ω cache byte budget (0 = entry
                                       count only); evicts LRU when exceeded]
               [--cache-dir <dir>      persist Ω results to disk (crash-consistent:
                                       atomic tmp/fsync/rename, checksummed); a
                                       restarted daemon warm-loads the cache and
                                       answers repeat configs with zero probes]
               [--cache-disk-bytes N   on-disk cache byte budget (0 = unbounded);
                                       evicts least-recently-used entries]
               [--heartbeat-timeout-ms 3000] [--shard-retries 5]
  submit       --connect <addr> --model <id>    send one request to a daemon
               [--connect-retries N (default 0)  capped-backoff-with-jitter connect
                                    attempts; the request itself is never resent]
               [--op measure|assign|sweep (default assign)]
               [--avg-bits 4.0 (assign)] [--from 2.5 --to 4.0 --step 0.5 (sweep)]
               [--deadline-ms N (0 = none; infeasible deadlines are refused)]
               [--set-size 128] [--set-seed 0] [--batch-size 64] [--bits 2,4,8]
               [--scheme symmetric|affine] [--no-prefix-cache]
               [--estimator <name> --probe-budget N --estimator-seed S
                                    measure op: budgeted Ω estimation; the daemon's
                                    Ω cache keys on the estimator, so estimated and
                                    exact results never alias]
               [--out <file.clsm>   persist the measured Ĝ (measure op)]
  chaos        soak a self-spawned daemon under fault churn: concurrent clients
               submit a deterministic measure/assign/sweep mix (exact + estimated,
               repeat configs), pooled workers are SIGKILLed and respawned, and
               the daemon itself can be SIGKILLed mid-soak and relaunched over the
               same --cache-dir; every reply is checked bitwise against the first
               answer for its config, and a divergence (or an SLO breach) exits
               nonzero
               [--duration 30s] [--clients 4] [--workers 2] [--configs 4]
               [--daemon-kills 0       SIGKILL + relaunch the daemon N times]
               [--worker-churn-ms 0    kill/respawn one worker this often (0 = off)]
               [--slo-p99-ms 0         fail if request p99 exceeds this (0 = off)]
               [--cache-dir <dir>      persistent Ω cache shared across daemon
                                       generations (default: a temp dir)]
               [--seed 7] [--model resnet20] [--set-size 8] [--batch-size 16]
               [--bits 4,8] [--connect-retries 2   per-request budget; failed
                                       requests re-resolve the daemon address]
  assign       --model <id> --avg-bits <f>
                                  solve eq. (11) and report the bit map + PTQ accuracy
               [--sens <file.clsm>] [--algorithm clado|clado-star|block|hawq|mpqco]
               [--bits 2,4,8] [--scheme symmetric|affine] [--no-psd]
  sweep        --model <id>       tradeoff table over a budget range
               [--from 2.5] [--to 4.0] [--step 0.5] [--algorithm clado]
  eval         --model <id> --map 8,4,4,2,...
                                  PTQ accuracy of an explicit bit map
               [--layer-times     record per-stage forward spans]
               [--integer         also run the map on real int8/int4 kernels and
                                  report the measured speedup over the float path]
  stress       solve a planted dense cross-term IQP (worst case for eq. (11))
               under the anytime flags; prints a deterministic result line
               [--layers 32] [--seed 7] [--avg-bits 4] [--bits 2,4,8]
  trace        --file <trace.json>     summarize a --trace-out file: top
                                       self-time spans, per-process utilization
                                       and straggler report, incumbent curve
               [--top 10               how many spans to list]
               --file <file.clsm>      instead print a stored Ĝ's shape, stats,
                                       and Ω provenance (exact vs. estimator)

SOLVER (assign / sweep / stress):
  --solver-timeout <dur>          wall-clock budget per solve (500ms, 10s, 2m, 1h);
                                  on expiry the solver degrades to the best
                                  incumbent and reports an optimality gap
  --solver-nodes <N>              branch-and-bound node cap (deterministic stop)
  --solver-strict                 reject damaged Ĝ matrices (non-finite,
                                  asymmetric, or mostly clipped by the PSD
                                  projection) instead of repairing leniently
  Ctrl-C                          first press cancels the solve cooperatively
                                  (best incumbent is returned); second aborts

TELEMETRY (any command):
  --metrics-out <file.json>       write a machine-readable run manifest
                                  (schema clado-telemetry-manifest/v1)
  --trace-out <file.json>         record a Chrome Trace Format timeline (open in
                                  Perfetto / chrome://tracing; distributed runs
                                  merge worker events under one trace id)
  --progress | --no-progress      rate-limited stderr progress lines (default: on)
  --quiet                         only the final result line; implies --no-progress

Set CLADO_CACHE_DIR to relocate the trained-weight cache.";

/// Per-invocation telemetry wiring shared by every command: one enabled
/// registry, the `--metrics-out` / `--progress` / `--quiet` flags, and the
/// end-of-run rendering (human summary table + manifest file).
struct RunContext {
    telemetry: Telemetry,
    metrics_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    quiet: bool,
}

impl RunContext {
    fn from_args(args: &Args) -> Result<Self, ArgsError> {
        if args.switch("progress") && args.switch("no-progress") {
            return Err(ArgsError(
                "--progress and --no-progress are mutually exclusive".into(),
            ));
        }
        let quiet = args.switch("quiet");
        let telemetry = Telemetry::new();
        telemetry.set_progress_enabled(!quiet && !args.switch("no-progress"));
        let trace_out = args.get("trace-out").map(PathBuf::from);
        if trace_out.is_some() {
            // Mint a nonzero correlation id; distributed runs carry it to
            // every worker in the job spec so the merged timeline shares
            // one trace id across processes.
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            telemetry.set_trace_id((nanos ^ (u64::from(std::process::id()) << 32)) | 1);
            telemetry.set_trace_enabled(true);
        }
        Ok(Self {
            telemetry,
            metrics_out: args.get("metrics-out").map(PathBuf::from),
            trace_out,
            quiet,
        })
    }

    /// Prints `line` unless `--quiet` was given.
    fn info(&self, line: &str) {
        if !self.quiet {
            println!("{line}");
        }
    }

    /// Renders the registry summary (unless quiet) and writes the manifest
    /// if `--metrics-out` was given. Call after the final result line.
    ///
    /// The trace is flushed *first* so a buffer overflow surfaces as an
    /// explicit end-of-run warning (stderr, even under `--quiet`) and as
    /// a `trace_dropped` note in the manifest — an incomplete timeline
    /// must never be mistaken for a complete one.
    fn finish(
        &self,
        command: &str,
        config: &[(&str, ManifestValue)],
    ) -> Result<(), Box<dyn Error>> {
        let mut trace_events = None;
        let mut trace_dropped = 0u64;
        if let Some(path) = &self.trace_out {
            clado_telemetry::flush_thread_local();
            trace_events = Some(self.telemetry.write_chrome_trace(path)?);
            trace_dropped = self.telemetry.trace_dropped();
            if trace_dropped > 0 {
                eprintln!(
                    "warning: {trace_dropped} trace events dropped at the buffer cap — \
                     the timeline in {} is incomplete",
                    path.display()
                );
            }
        }
        if !self.quiet {
            let summary = self.telemetry.render_summary();
            if !summary.is_empty() {
                print!("{summary}");
            }
        }
        if let Some(path) = &self.metrics_out {
            // Every manifest records the compute-kernel identity so runs
            // on different hosts (or CLADO_FORCE_SCALAR runs) are
            // distinguishable when diffing results.
            let mut full: Vec<(&str, ManifestValue)> = vec![
                ("kernel", clado_tensor::kernel_name().into()),
                ("cpu_features", clado_tensor::cpu_features().into()),
            ];
            if trace_dropped > 0 {
                full.push(("trace_dropped", trace_dropped.into()));
            }
            full.extend(config.iter().cloned());
            std::fs::write(path, self.telemetry.manifest(command, &full))?;
        }
        if let (Some(events), Some(path)) = (trace_events, &self.trace_out) {
            self.info(&format!("trace: {events} events → {}", path.display()));
        }
        Ok(())
    }
}

/// Shared anytime-solver flags (`assign`, `sweep`, `stress`): wall-clock
/// budget, node cap, and the Ctrl-C cancel flag.
fn solver_config_of(args: &Args, run: &RunContext) -> Result<SolverConfig, ArgsError> {
    let defaults = SolverConfig::default();
    Ok(SolverConfig {
        max_wall: args.duration("solver-timeout")?,
        max_nodes: args.get_or("solver-nodes", defaults.max_nodes)?,
        cancel: crate::cancel::install(),
        telemetry: run.telemetry.clone(),
        ..defaults
    })
}

/// Manifest entries describing how a solve terminated, appended to the
/// command's config block so scripts can assert on degradation behavior.
fn solver_manifest(solution: &Solution) -> Vec<(&'static str, ManifestValue)> {
    vec![
        ("solver_method", solution.method_used.label().into()),
        ("solver_termination", solution.termination.label().into()),
        ("solver_gap", solution.gap.into()),
        ("solver_downgrades", solution.downgrades.len().into()),
    ]
}

/// Prints the solver outcome when it is worth a line: any downgrade, or a
/// termination other than a completed proof/heuristic run.
fn report_solver_outcome(run: &RunContext, solution: &Solution) {
    if solution.downgrades.is_empty() {
        return;
    }
    let trail: Vec<String> = solution.downgrades.iter().map(|d| d.to_string()).collect();
    run.info(&format!(
        "solver: {} via {}, gap {:.3e} ({})",
        solution.termination.label(),
        solution.method_used.label(),
        solution.gap,
        trail.join("; ")
    ));
}

/// Parses `--estimator` into an [`EstimatorKind`]; `None` when the flag
/// is absent (exact measurement).
fn estimator_of(args: &Args) -> Result<Option<EstimatorKind>, ArgsError> {
    args.get("estimator")
        .map(|name| name.parse::<EstimatorKind>().map_err(ArgsError))
        .transpose()
}

fn model_kind(id: &str) -> Result<ModelKind, ArgsError> {
    match id {
        "resnet20" => Ok(ModelKind::ResNet20),
        "resnet34" => Ok(ModelKind::ResNet34),
        "resnet50" => Ok(ModelKind::ResNet50),
        "mobilenetv3" | "mobilenet" => Ok(ModelKind::MobileNet),
        "regnet" => Ok(ModelKind::RegNet),
        "vit" => Ok(ModelKind::ViT),
        other => Err(ArgsError(format!(
            "unknown model `{other}` (see `clado models` for the zoo)"
        ))),
    }
}

fn scheme_of(args: &Args) -> Result<QuantScheme, ArgsError> {
    match args.get("scheme").unwrap_or("symmetric") {
        "symmetric" => Ok(QuantScheme::PerTensorSymmetric),
        "affine" => Ok(QuantScheme::PerChannelAffine),
        other => Err(ArgsError(format!(
            "unknown scheme `{other}` (symmetric|affine)"
        ))),
    }
}

fn algorithm_of(args: &Args) -> Result<Algorithm, ArgsError> {
    match args.get("algorithm").unwrap_or("clado") {
        "clado" => Ok(Algorithm::Clado),
        "clado-star" => Ok(Algorithm::CladoStar),
        "block" => Ok(Algorithm::BlockClado),
        "hawq" => Ok(Algorithm::Hawq),
        "mpqco" => Ok(Algorithm::Mpqco),
        other => Err(ArgsError(format!(
            "unknown algorithm `{other}` (clado|clado-star|block|hawq|mpqco)"
        ))),
    }
}

/// `clado models`
pub fn cmd_models(args: &Args) -> Result<(), Box<dyn Error>> {
    let run = RunContext::from_args(args)?;
    println!("{:<14} {:<28} role", "id", "name");
    for (kind, role) in [
        (ModelKind::ResNet20, "Table 2 (vHv validation)"),
        (ModelKind::ResNet34, "Table 1 / Figs. 1-3, 6, 7"),
        (ModelKind::ResNet50, "Table 1 / Figs. 2, 3, 5, 6"),
        (ModelKind::MobileNet, "Table 1"),
        (ModelKind::RegNet, "Table 1"),
        (ModelKind::ViT, "Table 1 / Fig. 2"),
    ] {
        println!("{:<14} {:<28} {}", kind.id(), kind.display_name(), role);
    }
    run.finish("models", &[])
}

/// `clado train --model <id>`
pub fn cmd_train(args: &Args) -> Result<(), Box<dyn Error>> {
    let run = RunContext::from_args(args)?;
    let kind = model_kind(args.require::<String>("model")?.as_str())?;
    let p = {
        let _s = run.telemetry.span("load");
        pretrained(kind)
    };
    println!(
        "{}: FP32 val accuracy {:.2}% ({} quantizable layers, {:.1}s incl. cache)",
        kind.display_name(),
        p.val_accuracy * 100.0,
        p.network.quantizable_layers().len(),
        run.telemetry.elapsed().as_secs_f64()
    );
    run.finish("train", &[("model", kind.id().into())])
}

/// `clado sensitivity --model <id> --out <file>` (alias: `measure`)
pub fn cmd_sensitivity(args: &Args) -> Result<(), Box<dyn Error>> {
    let run = RunContext::from_args(args)?;
    let kind = model_kind(args.require::<String>("model")?.as_str())?;
    let out: PathBuf = PathBuf::from(args.require::<String>("out")?);
    let set_size: usize = args.get_or("set-size", 128)?;
    let set_seed: u64 = args.get_or("set-seed", 0)?;
    let bits = BitWidthSet::new(&args.u8_list_or("bits", &[2, 4, 8])?);
    let scheme = scheme_of(args)?;
    let checkpoint_dir = args.get("checkpoint-dir").map(PathBuf::from);
    let resume = args.switch("resume");
    if resume && checkpoint_dir.is_none() {
        return Err(Box::new(ArgsError(
            "--resume requires --checkpoint-dir".into(),
        )));
    }

    let estimator = estimator_of(args)?;
    let workers: usize = args.get_or("workers", 0)?;
    if workers > 0 || args.get("listen").is_some() {
        if estimator == Some(EstimatorKind::Hutchinson) {
            return Err(Box::new(ArgsError(
                "--estimator hutchinson is diagonal-only and not grid-shardable; \
                 drop --workers/--listen to run it single-process"
                    .into(),
            )));
        }
        return cmd_sensitivity_distributed(
            args,
            &run,
            kind,
            &out,
            set_size,
            set_seed,
            &bits,
            scheme,
            checkpoint_dir,
            resume,
            workers,
            estimator,
        );
    }

    let (mut p, sens_set) = {
        let _s = run.telemetry.span("load");
        let p = pretrained(kind);
        let sens_set = p
            .data
            .train
            .sample_subset(set_size.min(p.data.train.len()), set_seed);
        (p, sens_set)
    };
    let measure_options = SensitivityOptions {
        scheme,
        verbose: args.switch("verbose"),
        threads: args.get_or("threads", 0)?,
        use_prefix_cache: !args.switch("no-prefix-cache"),
        batched_probes: !args.switch("no-batched-probes"),
        telemetry: run.telemetry.clone(),
        checkpoint_dir,
        resume,
        retries: args.get_or("retries", 1)?,
        ..Default::default()
    };
    let (sm, budget_line) = match estimator {
        Some(est_kind) => {
            let est = estimate_sensitivities(
                &mut p.network,
                &sens_set,
                &bits,
                &EstimatorOptions {
                    probe_budget: args.get_or("probe-budget", 0)?,
                    seed: args.get_or("estimator-seed", DEFAULT_ESTIMATOR_SEED)?,
                    measure: measure_options,
                    ..EstimatorOptions::new(est_kind)
                },
            )?;
            let line = format!(
                "estimated via {est_kind}: {} / {} probes ({:.1}% of the full sweep), \
                 {:.1}% of Ω entries observed",
                est.probes_spent,
                est.full_sweep_probes,
                est.probe_fraction() * 100.0,
                est.observed.fraction() * 100.0
            );
            (est.matrix, Some(line))
        }
        None => (
            measure_sensitivities(&mut p.network, &sens_set, &bits, &measure_options)?,
            None,
        ),
    };
    {
        let _s = run.telemetry.span("save");
        save_sensitivities(&sm, &out)?;
    }
    println!(
        "measured Ĝ for {} (𝔹 = {bits}, {} samples): {} evaluations in {:.1}s → {}",
        kind.display_name(),
        set_size,
        sm.stats.evaluations,
        sm.stats.seconds,
        out.display()
    );
    if let Some(line) = budget_line {
        run.info(&line);
    }
    if sm.stats.resumed + sm.stats.retried + sm.stats.quarantined > 0 {
        run.info(&format!(
            "fault recovery: {} probes resumed from journal, {} retried, {} quarantined",
            sm.stats.resumed, sm.stats.retried, sm.stats.quarantined
        ));
    }
    run.finish(
        "sensitivity",
        &[
            ("model", kind.id().into()),
            ("threads", sm.stats.threads_used.into()),
            ("bits", bits.to_string().into()),
            ("scheme", format!("{scheme:?}").into()),
            ("set_size", set_size.into()),
            ("seed", set_seed.into()),
            ("resume", resume.into()),
            ("resumed", sm.stats.resumed.into()),
            ("retried", sm.stats.retried.into()),
            ("quarantined", sm.stats.quarantined.into()),
            ("omega_provenance", sm.stats.provenance.to_string().into()),
        ],
    )
}

/// The distributed arm of `clado sensitivity`: bind a coordinator,
/// optionally spawn `--workers` local worker subprocesses, lease shards
/// until the sweep completes, then persist the (bitwise-identical) Ĝ.
#[allow(clippy::too_many_arguments)]
fn cmd_sensitivity_distributed(
    args: &Args,
    run: &RunContext,
    kind: ModelKind,
    out: &std::path::Path,
    set_size: usize,
    set_seed: u64,
    bits: &BitWidthSet,
    scheme: QuantScheme,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    workers: usize,
    estimator: Option<EstimatorKind>,
) -> Result<(), Box<dyn Error>> {
    let verbose = args.switch("verbose");
    let use_prefix_cache = !args.switch("no-prefix-cache");
    let batch_size = SensitivityOptions::default().batch_size;
    let (p, sens_set) = {
        let _s = run.telemetry.span("load");
        let p = pretrained(kind);
        let sens_set = p
            .data
            .train
            .sample_subset(set_size.min(p.data.train.len()), set_seed);
        (p, sens_set)
    };
    let ctx = ShardContext::new(
        &p.network,
        sens_set.len(),
        bits,
        scheme,
        batch_size,
        use_prefix_cache,
    );
    let (probe_budget, estimator_seed) = match estimator {
        Some(_) => (
            args.get_or::<u64>("probe-budget", 0)?,
            args.get_or("estimator-seed", DEFAULT_ESTIMATOR_SEED)?,
        ),
        None => (0, 0),
    };
    let job = JobSpec {
        model: kind.id().to_string(),
        set_size: set_size as u64,
        set_seed,
        batch_size: batch_size as u64,
        bits: bits.iter().map(|b| b.bits()).collect(),
        scheme: scheme_to_u8(scheme),
        use_prefix_cache,
        fingerprint: match estimator {
            Some(est_kind) => {
                estimation_fingerprint(&ctx, est_kind, probe_budget as usize, estimator_seed)
            }
            None => ctx.fingerprint(),
        },
        trace_id: run.telemetry.trace_id(),
        estimator: estimator.map_or(0, |k| k.tag()),
        probe_budget,
        estimator_seed,
    };
    let idle_secs: u64 = args.get_or("idle-timeout-secs", 180)?;
    let coordinator = Coordinator::bind(
        args.get("listen").unwrap_or("127.0.0.1:0"),
        ctx,
        job,
        CoordinatorOptions {
            heartbeat_timeout: Duration::from_millis(args.get_or("heartbeat-timeout-ms", 3000)?),
            checkpoint_dir,
            resume,
            telemetry: run.telemetry.clone(),
            verbose,
            idle_timeout: (idle_secs > 0).then(|| Duration::from_secs(idle_secs)),
        },
    )?;
    let addr = coordinator.local_addr();
    // Always printed (even under --quiet): with `--listen 127.0.0.1:0`
    // this line is the only way to learn the bound port, and scripts
    // parse it to start remote workers.
    println!("coordinator listening on {addr}");
    std::io::stdout().flush()?;

    let mut children = Vec::new();
    for _ in 0..workers {
        let mut cmd = std::process::Command::new(std::env::current_exe()?);
        cmd.arg("worker")
            .arg("--connect")
            .arg(addr.to_string())
            .arg("--quiet")
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null());
        if verbose {
            cmd.arg("--verbose");
        }
        children.push(cmd.spawn()?);
    }
    let outcome = coordinator.run();
    // Reap the subprocess fleet whether the sweep succeeded or not.
    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }
    let outcome = outcome?;
    let sm = outcome.matrix;
    {
        let _s = run.telemetry.span("save");
        save_sensitivities(&sm, out)?;
    }
    println!(
        "measured Ĝ for {} (𝔹 = {bits}, {} samples): {} evaluations in {:.1}s → {}",
        kind.display_name(),
        set_size,
        sm.stats.evaluations,
        sm.stats.seconds,
        out.display()
    );
    if !sm.stats.provenance.is_exact() {
        run.info(&format!("Ω provenance: {}", sm.stats.provenance));
    }
    run.info(&format!(
        "distributed: {} worker(s), {} eviction(s), {} rejected, straggler {:.1}s",
        outcome.workers.len(),
        outcome.evictions,
        outcome.rejected,
        outcome.straggler_seconds
    ));
    for w in &outcome.workers {
        run.info(&format!(
            "  worker {} (pid {}): {} shards, {} probes, {:.1}s busy",
            w.id, w.pid, w.shards, w.probes, w.seconds
        ));
    }
    if sm.stats.resumed + sm.stats.retried + sm.stats.quarantined > 0 {
        run.info(&format!(
            "fault recovery: {} probes resumed from journal, {} retried, {} quarantined",
            sm.stats.resumed, sm.stats.retried, sm.stats.quarantined
        ));
    }
    run.finish(
        "sensitivity",
        &[
            ("model", kind.id().into()),
            ("bits", bits.to_string().into()),
            ("scheme", format!("{scheme:?}").into()),
            ("set_size", set_size.into()),
            ("seed", set_seed.into()),
            ("resume", resume.into()),
            ("resumed", sm.stats.resumed.into()),
            ("retried", sm.stats.retried.into()),
            ("quarantined", sm.stats.quarantined.into()),
            ("workers", outcome.workers.len().into()),
            ("evictions", outcome.evictions.into()),
            ("rejected_workers", outcome.rejected.into()),
            ("straggler_seconds", outcome.straggler_seconds.into()),
            ("omega_provenance", sm.stats.provenance.to_string().into()),
        ],
    )
}

/// `clado estimate --model <id> [--estimator <name>|all]`
///
/// Runs the sub-quadratic Ω estimators against the exact full sweep and
/// reports, per estimator: probes spent vs. the full-sweep count,
/// entry-wise error of the completed Ω̂, and the metric that matters —
/// the task-loss regret of the IQP assignment solved under Ω̂ instead
/// of Ω at the same bit budget.
pub fn cmd_estimate(args: &Args) -> Result<(), Box<dyn Error>> {
    let run = RunContext::from_args(args)?;
    let kind = model_kind(args.require::<String>("model")?.as_str())?;
    let set_size: usize = args.get_or("set-size", 128)?;
    let set_seed: u64 = args.get_or("set-seed", 0)?;
    let bits = BitWidthSet::new(&args.u8_list_or("bits", &[2, 4, 8])?);
    let scheme = scheme_of(args)?;
    let avg_bits: f64 = args.get_or("avg-bits", 4.0)?;
    let probe_budget: usize = args.get_or("probe-budget", 0)?;
    let seed: u64 = args.get_or("estimator-seed", DEFAULT_ESTIMATOR_SEED)?;
    let selected: Vec<EstimatorKind> = match args.get("estimator").unwrap_or("all") {
        "all" => EstimatorKind::ALL.to_vec(),
        name => vec![name.parse().map_err(ArgsError)?],
    };
    let out = args.get("out").map(PathBuf::from);
    if out.is_some() && selected.len() > 1 {
        return Err(Box::new(ArgsError(
            "--out needs a single --estimator (which Ω̂ would it store?)".into(),
        )));
    }

    let (mut p, sens_set) = {
        let _s = run.telemetry.span("load");
        let p = pretrained(kind);
        let sens_set = p
            .data
            .train
            .sample_subset(set_size.min(p.data.train.len()), set_seed);
        (p, sens_set)
    };
    let measure = SensitivityOptions {
        scheme,
        verbose: args.switch("verbose"),
        threads: args.get_or("threads", 0)?,
        use_prefix_cache: !args.switch("no-prefix-cache"),
        telemetry: run.telemetry.clone(),
        ..Default::default()
    };
    let exact = {
        let _s = run.telemetry.span("estimate.exact_reference");
        measure_sensitivities(&mut p.network, &sens_set, &bits, &measure)?
    };
    let sizes = LayerSizes::new(p.network.layer_param_counts());
    let budget_bits = sizes.budget_from_avg_bits(avg_bits);
    let assign_options = AssignOptions {
        telemetry: run.telemetry.clone(),
        ..Default::default()
    };

    println!(
        "exact sweep: {} probes ({} evaluations); regret measured at {avg_bits} avg bits",
        exact.stats.full_evals + exact.stats.prefix_cache_hits,
        exact.stats.evaluations
    );
    let mut config: Vec<(&str, ManifestValue)> = vec![
        ("model", kind.id().into()),
        ("bits", bits.to_string().into()),
        ("avg_bits", avg_bits.into()),
        ("probe_budget", probe_budget.into()),
    ];
    for est_kind in selected {
        let est = estimator_for(est_kind).estimate(
            &mut p.network,
            &sens_set,
            &bits,
            &EstimatorOptions {
                probe_budget,
                seed,
                measure: measure.clone(),
                ..EstimatorOptions::new(est_kind)
            },
        )?;
        let regret = assignment_regret(
            &mut p.network,
            &sens_set,
            &exact,
            &est.matrix,
            &sizes,
            budget_bits,
            &assign_options,
            scheme,
            measure.batch_size,
        )?;
        let report = build_report(est_kind, &est, Some(&exact), Some(regret));
        println!("{report}");
        run.telemetry.set_gauge(
            &format!("estim.{est_kind}.probe_fraction"),
            report.probe_fraction,
        );
        run.telemetry
            .set_gauge(&format!("estim.{est_kind}.regret"), regret.relative);
        config.push((
            match est_kind {
                EstimatorKind::Sketched => "regret_sketched",
                EstimatorKind::Adaptive => "regret_adaptive",
                EstimatorKind::BlockTopK => "regret_blocktopk",
                EstimatorKind::Hutchinson => "regret_hutchinson",
            },
            regret.relative.into(),
        ));
        if let Some(path) = &out {
            let _s = run.telemetry.span("save");
            save_sensitivities(&est.matrix, path)?;
            run.info(&format!(
                "wrote Ω̂ ({}) → {}",
                est.matrix.stats.provenance,
                path.display()
            ));
        }
    }
    run.finish("estimate", &config)
}

/// `clado worker --connect <addr> [--pool]`
pub fn cmd_worker(args: &Args) -> Result<(), Box<dyn Error>> {
    let run = RunContext::from_args(args)?;
    let addr: String = args.require("connect")?;
    // Mirror the coordinator's job setup exactly: same model loader,
    // same subset sampling. Any drift shows up as a fingerprint
    // mismatch and the coordinator rejects us.
    let provider = |job: &JobSpec| {
        let kind = model_kind(&job.model).map_err(|e| e.to_string())?;
        let p = pretrained(kind);
        let n = (job.set_size as usize).min(p.data.train.len());
        Ok((p.network, p.data.train.sample_subset(n, job.set_seed)))
    };
    let opts = WorkerOptions {
        heartbeat_interval: Duration::from_millis(args.get_or("heartbeat-ms", 500)?),
        connect_timeout: Duration::from_secs(args.get_or("connect-timeout-secs", 10)?),
        connect_retries: args.get_or("connect-retries", 5)?,
        telemetry: run.telemetry.clone(),
        verbose: args.switch("verbose"),
    };
    let report = if args.switch("pool") {
        run_pool_worker(&addr, provider, &opts)?
    } else {
        run_worker(&addr, provider, &opts)?
    };
    println!(
        "worker finished: {} shards, {} probes, {:.1}s busy",
        report.shards, report.probes, report.seconds
    );
    run.finish(
        "worker",
        &[
            ("connect", addr.as_str().into()),
            ("pool", args.switch("pool").into()),
            ("shards", report.shards.into()),
            ("probes", report.probes.into()),
            ("busy_seconds", report.seconds.into()),
        ],
    )
}

/// `clado serve [--listen <addr>] [--workers N]`
///
/// The quantization-planning daemon: bounded admission with typed
/// shedding, per-request deadlines, a content-addressed Ω cache, and a
/// pool of crash-resilient workers. SIGTERM / Ctrl-C drains gracefully
/// and exits 0.
pub fn cmd_serve(args: &Args) -> Result<(), Box<dyn Error>> {
    let run = RunContext::from_args(args)?;
    let verbose = args.switch("verbose");
    let workers: usize = args.get_or("workers", 0)?;
    let opts = ServeOptions {
        queue_depth: args.get_or("queue-depth", 16)?,
        executors: args.get_or("executors", 2)?,
        cache_capacity: args.get_or("cache-capacity", 8)?,
        cache_bytes: args.get_or("cache-bytes", 0)?,
        cache_dir: args.get("cache-dir").map(PathBuf::from),
        cache_disk_bytes: args.get_or("cache-disk-bytes", 0)?,
        heartbeat_timeout: Duration::from_millis(args.get_or("heartbeat-timeout-ms", 3000)?),
        shard_retries: args.get_or("shard-retries", 5)?,
        telemetry: run.telemetry.clone(),
        verbose,
    };
    let provider: clado_serve::ModelProvider = Arc::new(|spec: &MeasureSpec| {
        let kind = model_kind(&spec.model).map_err(|e| e.to_string())?;
        let p = pretrained(kind);
        let n = (spec.set_size as usize).min(p.data.train.len());
        Ok((p.network, p.data.train.sample_subset(n, spec.set_seed)))
    });
    let server = Server::bind(
        args.get("listen").unwrap_or("127.0.0.1:4750"),
        args.get("worker-listen").unwrap_or("127.0.0.1:0"),
        provider,
        opts,
    )?;
    let client_addr = server.client_addr();
    let worker_addr = server.worker_addr();
    // Always printed (even under --quiet): with a :0 listen address
    // these lines are the only way to learn the bound ports, and
    // scripts parse them to point `submit` / workers at the daemon.
    println!("serve listening on {client_addr}");
    println!("serve worker port {worker_addr}");
    std::io::stdout().flush()?;

    // Bridge the signal handler's static drain flag to this server's:
    // a handler can only touch statics, and the server's flag is born
    // with the server.
    let drain = server.drain_flag();
    let sig = crate::cancel::install_drain();
    {
        let drain = Arc::clone(&drain);
        std::thread::spawn(move || loop {
            if sig.load(Ordering::SeqCst) {
                drain.store(true, Ordering::SeqCst);
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }

    let mut children = Vec::new();
    for _ in 0..workers {
        let mut cmd = std::process::Command::new(std::env::current_exe()?);
        cmd.arg("worker")
            .arg("--connect")
            .arg(worker_addr.to_string())
            .arg("--pool")
            .arg("--quiet")
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null());
        if verbose {
            cmd.arg("--verbose");
        }
        children.push(cmd.spawn()?);
    }

    let outcome = server.run();
    // Reap the worker fleet whether the daemon drained cleanly or not.
    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }
    let report = outcome?;
    let shed =
        report.shed_overload + report.shed_deadline + report.shed_draining + report.shed_malformed;
    println!(
        "serve drained: {} request(s) — {} completed, {} failed, {} shed \
         (overload {}, deadline {}, draining {}, malformed {}), \
         cache {} hit(s) / {} miss(es)",
        report.requests,
        report.completed,
        report.failed,
        shed,
        report.shed_overload,
        report.shed_deadline,
        report.shed_draining,
        report.shed_malformed,
        report.cache_hits,
        report.cache_misses,
    );
    run.finish(
        "serve",
        &[
            ("listen", client_addr.to_string().into()),
            ("workers", workers.into()),
            ("requests", report.requests.into()),
            ("completed", report.completed.into()),
            ("failed", report.failed.into()),
            ("shed_overload", report.shed_overload.into()),
            ("shed_deadline", report.shed_deadline.into()),
            ("shed_draining", report.shed_draining.into()),
            ("shed_malformed", report.shed_malformed.into()),
            ("cache_hits", report.cache_hits.into()),
            ("cache_misses", report.cache_misses.into()),
        ],
    )
}

/// One `AssignRow` rendered in the `assign`/`sweep` result style.
fn print_assign_row(row: &AssignRow) {
    let map: Vec<String> = row.bits.iter().map(|b| b.to_string()).collect();
    println!(
        "{:>9.2} {:>11.4} {:>12.4e}  {}/{}  [{}]",
        row.avg_bits,
        bits_to_mb(row.cost_bits),
        row.predicted_delta_loss,
        row.method,
        row.termination,
        map.join(","),
    );
}

/// `clado submit --connect <addr> --model <id> [--op assign]`
pub fn cmd_submit(args: &Args) -> Result<(), Box<dyn Error>> {
    let run = RunContext::from_args(args)?;
    let addr: String = args.require("connect")?;
    let op = match args.get("op").unwrap_or("assign") {
        "measure" => Op::Measure,
        "assign" => Op::Assign {
            avg_bits: args.get_or("avg-bits", 4.0)?,
        },
        "sweep" => Op::Sweep {
            from: args.get_or("from", 2.5)?,
            to: args.get_or("to", 4.0)?,
            step: args.get_or("step", 0.5)?,
        },
        other => {
            return Err(Box::new(ArgsError(format!(
                "unknown op `{other}` (measure|assign|sweep)"
            ))))
        }
    };
    // Exact requests keep the estimator fields at their zero defaults so
    // equal exact specs keep hashing equal in the daemon's Ω cache.
    let estimator = estimator_of(args)?;
    let (probe_budget, estimator_seed) = match estimator {
        Some(_) => (
            args.get_or::<u64>("probe-budget", 0)?,
            args.get_or("estimator-seed", DEFAULT_ESTIMATOR_SEED)?,
        ),
        None => (0, 0),
    };
    let spec = MeasureSpec {
        model: args.require("model")?,
        set_size: args.get_or("set-size", 128)?,
        set_seed: args.get_or("set-seed", 0)?,
        batch_size: args.get_or("batch-size", 64)?,
        bits: args.u8_list_or("bits", &[2, 4, 8])?,
        scheme: scheme_to_u8(scheme_of(args)?),
        use_prefix_cache: !args.switch("no-prefix-cache"),
        estimator: estimator.map_or(0, |k| k.tag()),
        probe_budget,
        estimator_seed,
    };
    let req = SubmitRequest {
        spec,
        op,
        deadline_ms: args.get_or("deadline-ms", 0)?,
    };
    let outcome = submit_with_retries(&addr, &req, None, args.get_or("connect-retries", 0)?)?;
    let hit_label = |hit: bool| if hit { "cache hit" } else { "cache miss" };
    match outcome.response {
        ServeMessage::MeasureDone {
            request_id,
            cache_hit,
            evaluations,
            clsm,
        } => {
            println!(
                "request {request_id}: measured Ĝ ({}, {evaluations} evaluations, {} bytes)",
                hit_label(cache_hit),
                clsm.len()
            );
            if let Some(out) = args.get("out") {
                std::fs::write(out, &clsm)?;
                run.info(&format!("wrote {out}"));
            }
        }
        ServeMessage::AssignDone {
            request_id,
            cache_hit,
            evaluations,
            row,
        } => {
            println!(
                "request {request_id}: assigned ({}, {evaluations} evaluations)",
                hit_label(cache_hit)
            );
            println!(
                "{:>9} {:>11} {:>12}  outcome  bit map",
                "avg bits", "size (MB)", "pred ΔL"
            );
            print_assign_row(&row);
        }
        ServeMessage::SweepDone {
            request_id,
            cache_hit,
            evaluations,
            rows,
        } => {
            println!(
                "request {request_id}: swept {} budget(s) ({}, {evaluations} evaluations)",
                rows.len(),
                hit_label(cache_hit)
            );
            println!(
                "{:>9} {:>11} {:>12}  outcome  bit map",
                "avg bits", "size (MB)", "pred ΔL"
            );
            for row in &rows {
                print_assign_row(row);
            }
        }
        ServeMessage::Failed {
            request_id,
            kind,
            detail,
        } => {
            return Err(Box::new(ArgsError(format!(
                "request {request_id} failed ({kind}): {detail}"
            ))))
        }
        // `submit` only returns the four final kinds above.
        other => {
            return Err(Box::new(ArgsError(format!(
                "unexpected response kind {}",
                other.kind()
            ))))
        }
    }
    run.finish(
        "submit",
        &[
            ("connect", addr.as_str().into()),
            ("op", args.get("op").unwrap_or("assign").into()),
            ("request_id", outcome.request_id.into()),
            ("queue_depth", outcome.queue_depth.into()),
        ],
    )
}

/// A `clado serve` child process spawned by the chaos harness, with the
/// addresses parsed from its startup lines.
struct ChaosDaemon {
    child: std::process::Child,
    client_addr: String,
    worker_addr: String,
    metrics_path: PathBuf,
}

/// Spawns a daemon over `cache_dir` and blocks until it prints its bound
/// addresses (the same lines the CI smoke scripts parse).
fn spawn_chaos_daemon(
    cache_dir: &std::path::Path,
    metrics_path: PathBuf,
) -> Result<ChaosDaemon, Box<dyn Error>> {
    use std::io::BufRead;
    let mut child = std::process::Command::new(std::env::current_exe()?)
        .arg("serve")
        .arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--worker-listen")
        .arg("127.0.0.1:0")
        .arg("--cache-dir")
        .arg(cache_dir)
        .arg("--metrics-out")
        .arg(&metrics_path)
        .arg("--quiet")
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()?;
    let stdout = child.stdout.take().expect("stdout piped above");
    let mut reader = std::io::BufReader::new(stdout);
    let (mut client_addr, mut worker_addr) = (None, None);
    let mut line = String::new();
    while client_addr.is_none() || worker_addr.is_none() {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            let _ = child.kill();
            return Err(Box::new(ArgsError(
                "chaos daemon exited before printing its addresses".into(),
            )));
        }
        if let Some(rest) = line.trim().strip_prefix("serve listening on ") {
            client_addr = Some(rest.to_string());
        } else if let Some(rest) = line.trim().strip_prefix("serve worker port ") {
            worker_addr = Some(rest.to_string());
        }
    }
    // Keep draining so the daemon can never block on a full stdout pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = std::io::Read::read_to_string(&mut reader, &mut sink);
    });
    Ok(ChaosDaemon {
        child,
        client_addr: client_addr.expect("set above"),
        worker_addr: worker_addr.expect("set above"),
        metrics_path,
    })
}

/// Spawns one pooled worker pointed at a daemon's worker port.
fn spawn_chaos_worker(worker_addr: &str) -> Result<std::process::Child, Box<dyn Error>> {
    Ok(std::process::Command::new(std::env::current_exe()?)
        .arg("worker")
        .arg("--connect")
        .arg(worker_addr)
        .arg("--pool")
        .arg("--quiet")
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()?)
}

/// Percentile (nearest-rank) of an unsorted latency sample, µs.
fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Pulls one `"key": N` integer out of the daemon manifest's
/// `serve.request` histogram block (the manifest is our own fixed
/// format; a full JSON parser would be a dependency for nothing).
fn manifest_hist_value(manifest: &str, key: &str) -> Option<u64> {
    let hist = manifest.find("\"serve.request\"")?;
    let tail = &manifest[hist..];
    let at = tail.find(&format!("\"{key}\":"))? + key.len() + 3;
    let digits: String = tail[at..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// The response with identity fields (request id, cache provenance)
/// zeroed, so a cache hit and the measurement that populated it encode
/// byte-identically. `None` for non-comparable kinds (`Failed`).
///
/// `MeasureDone` replies additionally get their CLSM measurement-stats
/// block (wall-clock seconds, threads used, retry counters, …) zeroed:
/// two concurrent cache misses for the same config measure the same
/// matrix but legitimately record different timings — only the semantic
/// payload (Ĝ, base loss, bit-widths, Ω provenance) must be stable.
fn comparable_reply(msg: &ServeMessage) -> Option<Vec<u8>> {
    let mut m = msg.clone();
    if let ServeMessage::MeasureDone { clsm, .. } = &mut m {
        if let Ok(mut sens) = clado_core::sensitivities_from_bytes(clsm) {
            sens.stats = clado_core::SensitivityStats {
                provenance: sens.stats.provenance,
                ..Default::default()
            };
            *clsm = clado_core::sensitivities_to_bytes(&sens);
        }
    }
    match &mut m {
        ServeMessage::MeasureDone {
            request_id,
            cache_hit,
            evaluations,
            ..
        }
        | ServeMessage::AssignDone {
            request_id,
            cache_hit,
            evaluations,
            ..
        }
        | ServeMessage::SweepDone {
            request_id,
            cache_hit,
            evaluations,
            ..
        } => {
            *request_id = 0;
            *cache_hit = false;
            *evaluations = 0;
        }
        _ => return None,
    }
    Some(m.encode())
}

/// `clado chaos --duration 30s [--daemon-kills 1] [--slo-p99-ms N]`
///
/// A soak harness against a live daemon it spawns itself: concurrent
/// clients submit a deterministic mix of measure/assign/sweep requests
/// (exact and estimated, with repeat configs), a churn thread SIGKILLs
/// and respawns pooled workers, and the daemon itself can be SIGKILLed
/// and relaunched over the same `--cache-dir` mid-soak. Every completed
/// reply is checked bitwise against the first answer for its
/// configuration; any divergence is a consistency violation and the run
/// exits nonzero, as does a `--slo-p99-ms` breach.
pub fn cmd_chaos(args: &Args) -> Result<(), Box<dyn Error>> {
    use std::collections::HashMap;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;
    use std::time::Instant;

    /// Golden first answer per config key: the daemon generation that
    /// produced it and the normalized reply bytes every later completion
    /// must match bitwise.
    type GoldenAnswers = HashMap<u64, (u64, Vec<u8>)>;

    let run = RunContext::from_args(args)?;
    let duration = args
        .duration("duration")?
        .unwrap_or(Duration::from_secs(30));
    let clients: usize = args.get_or("clients", 4)?;
    let workers: usize = args.get_or("workers", 2)?;
    let configs: u64 = args.get_or("configs", 4)?;
    let daemon_kills: u32 = args.get_or("daemon-kills", 0)?;
    let worker_churn_ms: u64 = args.get_or("worker-churn-ms", 0)?;
    let slo_p99_ms: u64 = args.get_or("slo-p99-ms", 0)?;
    let seed: u64 = args.get_or("seed", 7)?;
    let model: String = args.get_or("model", "resnet20".to_string())?;
    let set_size: u64 = args.get_or("set-size", 8)?;
    let batch_size: u64 = args.get_or("batch-size", 16)?;
    // Small per-request budget: failed requests re-read the (possibly
    // relaunched) daemon address from the outer loop, so long backoff
    // against a dead endpoint would only stall the soak.
    let connect_retries: u32 = args.get_or("connect-retries", 2)?;
    let bits = args.u8_list_or("bits", &[4, 8])?;
    if configs == 0 || clients == 0 {
        return Err(Box::new(ArgsError(
            "--configs and --clients must be positive".into(),
        )));
    }

    let scratch = std::env::temp_dir().join(format!("clado-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&scratch)?;
    let cache_dir = args
        .get("cache-dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| scratch.join("omega-cache"));
    std::fs::create_dir_all(&cache_dir)?;

    // --- shared soak state ---------------------------------------------
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    // (client addr, worker addr) of the *current* daemon generation.
    let daemon = spawn_chaos_daemon(&cache_dir, scratch.join("daemon-gen0.json"))?;
    let endpoints = Arc::new(Mutex::new((
        daemon.client_addr.clone(),
        daemon.worker_addr.clone(),
    )));
    // Bumped on every daemon relaunch; a cache hit for a config first
    // answered under an older generation is a cross-restart hit — the
    // persistent store, not warm memory, must have served it.
    let generation = Arc::new(AtomicU64::new(0));
    let golden: Arc<Mutex<GoldenAnswers>> = Arc::new(Mutex::new(HashMap::new()));
    let completed = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let interrupted = Arc::new(AtomicU64::new(0));
    let cache_hits = Arc::new(AtomicU64::new(0));
    let cross_restart_hits = Arc::new(AtomicU64::new(0));
    let violations = Arc::new(AtomicU64::new(0));
    let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

    let mut worker_children = Vec::new();
    {
        let g = endpoints.lock().unwrap_or_else(|p| p.into_inner());
        for _ in 0..workers {
            worker_children.push(spawn_chaos_worker(&g.1)?);
        }
    }
    let worker_children = Arc::new(Mutex::new(worker_children));
    let worker_restarts = Arc::new(AtomicU64::new(0));

    // --- traffic threads -----------------------------------------------
    let mut traffic = Vec::new();
    for client in 0..clients {
        let stop = Arc::clone(&stop);
        let endpoints = Arc::clone(&endpoints);
        let generation = Arc::clone(&generation);
        let golden = Arc::clone(&golden);
        let completed = Arc::clone(&completed);
        let failed = Arc::clone(&failed);
        let rejected = Arc::clone(&rejected);
        let interrupted = Arc::clone(&interrupted);
        let cache_hits = Arc::clone(&cache_hits);
        let cross_restart_hits = Arc::clone(&cross_restart_hits);
        let violations = Arc::clone(&violations);
        let latencies = Arc::clone(&latencies);
        let (model, bits) = (model.clone(), bits.clone());
        traffic.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed ^ ((client as u64) << 32));
            while !stop.load(Ordering::SeqCst) {
                // Deterministic mix: config index picks the measurement
                // identity (odd configs are estimated), the op roll the
                // work done with it. Repeats are the norm by design —
                // `configs` is small, so the cache is exercised hard.
                let config = rng.gen_range(0..configs);
                let estimated = config % 2 == 1;
                let spec = MeasureSpec {
                    model: model.clone(),
                    set_size,
                    set_seed: config,
                    batch_size,
                    bits: bits.clone(),
                    scheme: 0,
                    use_prefix_cache: true,
                    estimator: if estimated {
                        EstimatorKind::BlockTopK.tag()
                    } else {
                        0
                    },
                    probe_budget: 0,
                    estimator_seed: if estimated { DEFAULT_ESTIMATOR_SEED } else { 0 },
                };
                let op = match rng.gen_range(0..3u8) {
                    0 => Op::Measure,
                    1 => Op::Assign { avg_bits: 6.0 },
                    _ => Op::Sweep {
                        from: 6.0,
                        to: 7.0,
                        step: 0.5,
                    },
                };
                // The golden map keys on (fingerprint, op kind): same Ω,
                // different op → different (but individually stable) reply.
                let key = spec.fingerprint()
                    ^ match op {
                        Op::Measure => 0x1111_1111,
                        Op::Assign { .. } => 0x2222_2222,
                        Op::Sweep { .. } => 0x3333_3333,
                    };
                let addr = endpoints
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .0
                    .clone();
                let gen_now = generation.load(Ordering::SeqCst);
                let started = Instant::now();
                let req = SubmitRequest {
                    spec,
                    op,
                    deadline_ms: 0,
                };
                match submit_with_retries(
                    &addr,
                    &req,
                    Some(Duration::from_secs(120)),
                    connect_retries,
                ) {
                    Ok(outcome) => {
                        if let ServeMessage::Failed { .. } = outcome.response {
                            failed.fetch_add(1, Ordering::SeqCst);
                            continue;
                        }
                        completed.fetch_add(1, Ordering::SeqCst);
                        latencies
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .push(started.elapsed().as_micros() as u64);
                        let hit = matches!(
                            outcome.response,
                            ServeMessage::MeasureDone {
                                cache_hit: true,
                                ..
                            } | ServeMessage::AssignDone {
                                cache_hit: true,
                                ..
                            } | ServeMessage::SweepDone {
                                cache_hit: true,
                                ..
                            }
                        );
                        if let Some(bytes) = comparable_reply(&outcome.response) {
                            let mut g = golden.lock().unwrap_or_else(|p| p.into_inner());
                            match g.get(&key) {
                                None => {
                                    g.insert(key, (gen_now, bytes));
                                }
                                Some((first_gen, first)) => {
                                    if hit {
                                        cache_hits.fetch_add(1, Ordering::SeqCst);
                                        if gen_now > *first_gen {
                                            cross_restart_hits.fetch_add(1, Ordering::SeqCst);
                                        }
                                    }
                                    if first != &bytes {
                                        violations.fetch_add(1, Ordering::SeqCst);
                                        eprintln!(
                                            "chaos: CONSISTENCY VIOLATION for config key \
                                             {key:#018x}: reply differs from the golden answer"
                                        );
                                    }
                                }
                            }
                        }
                    }
                    Err(clado_serve::ServeError::Rejected { .. }) => {
                        rejected.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(_) => {
                        // Connection torn mid-request — expected while the
                        // daemon is being killed; the request is simply lost.
                        interrupted.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
        }));
    }

    // --- worker churn thread -------------------------------------------
    let churn = (worker_churn_ms > 0 && workers > 0).then(|| {
        let stop = Arc::clone(&stop);
        let endpoints = Arc::clone(&endpoints);
        let worker_children = Arc::clone(&worker_children);
        let worker_restarts = Arc::clone(&worker_restarts);
        std::thread::spawn(move || {
            let mut victim = 0usize;
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(worker_churn_ms));
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let waddr = endpoints
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .1
                    .clone();
                let mut kids = worker_children.lock().unwrap_or_else(|p| p.into_inner());
                if kids.is_empty() {
                    continue;
                }
                victim = (victim + 1) % kids.len();
                let _ = kids[victim].kill();
                let _ = kids[victim].wait();
                if let Ok(fresh) = spawn_chaos_worker(&waddr) {
                    kids[victim] = fresh;
                    worker_restarts.fetch_add(1, Ordering::SeqCst);
                }
            }
        })
    });

    // --- the soak itself: main thread schedules daemon kills -----------
    let soak_started = Instant::now();
    let mut daemon = daemon;
    let mut kills_done = 0u32;
    while soak_started.elapsed() < duration {
        let next_kill = (kills_done < daemon_kills).then(|| {
            duration
                .mul_f64(f64::from(kills_done + 1) / f64::from(daemon_kills + 1))
                .saturating_sub(soak_started.elapsed())
        });
        match next_kill {
            Some(wait) => {
                std::thread::sleep(wait.min(duration.saturating_sub(soak_started.elapsed())));
                if soak_started.elapsed() >= duration {
                    break;
                }
                run.info(&format!(
                    "chaos: SIGKILL daemon generation {kills_done} at {:.1}s",
                    soak_started.elapsed().as_secs_f64()
                ));
                let _ = daemon.child.kill();
                let _ = daemon.child.wait();
                kills_done += 1;
                let fresh = spawn_chaos_daemon(
                    &cache_dir,
                    scratch.join(format!("daemon-gen{kills_done}.json")),
                )?;
                {
                    let mut g = endpoints.lock().unwrap_or_else(|p| p.into_inner());
                    *g = (fresh.client_addr.clone(), fresh.worker_addr.clone());
                }
                generation.fetch_add(1, Ordering::SeqCst);
                daemon = fresh;
                // The old generation's workers die with their sockets;
                // point a fresh fleet at the relaunched daemon.
                let mut kids = worker_children.lock().unwrap_or_else(|p| p.into_inner());
                for kid in kids.iter_mut() {
                    let _ = kid.kill();
                    let _ = kid.wait();
                }
                kids.clear();
                for _ in 0..workers {
                    kids.push(spawn_chaos_worker(&daemon.worker_addr)?);
                }
            }
            None => std::thread::sleep(
                Duration::from_millis(50).min(
                    duration
                        .saturating_sub(soak_started.elapsed())
                        .max(Duration::from_millis(1)),
                ),
            ),
        }
    }
    stop.store(true, Ordering::SeqCst);
    for t in traffic {
        let _ = t.join();
    }
    if let Some(churn) = churn {
        let _ = churn.join();
    }

    // Graceful drain of the final daemon generation (SIGTERM → exit 0),
    // so its manifest — the serve.request histogram — lands on disk.
    let pid = daemon.child.id().to_string();
    let _ = std::process::Command::new("kill")
        .arg("-TERM")
        .arg(&pid)
        .status();
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    let drained = loop {
        match daemon.child.try_wait()? {
            Some(status) => break status.success(),
            None if Instant::now() >= drain_deadline => {
                let _ = daemon.child.kill();
                let _ = daemon.child.wait();
                break false;
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    };
    for kid in worker_children
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter_mut()
    {
        let _ = kid.kill();
        let _ = kid.wait();
    }

    // --- verdict --------------------------------------------------------
    let mut lat = latencies.lock().unwrap_or_else(|p| p.into_inner()).clone();
    lat.sort_unstable();
    let (p50, p95, p99) = (
        percentile_us(&lat, 0.50),
        percentile_us(&lat, 0.95),
        percentile_us(&lat, 0.99),
    );
    let daemon_manifest = std::fs::read_to_string(&daemon.metrics_path).unwrap_or_default();
    let serve_p50 = manifest_hist_value(&daemon_manifest, "p50_us");
    let serve_p95 = manifest_hist_value(&daemon_manifest, "p95_us");
    let serve_p99 = manifest_hist_value(&daemon_manifest, "p99_us");
    let completed = completed.load(Ordering::SeqCst);
    let failed = failed.load(Ordering::SeqCst);
    let rejected = rejected.load(Ordering::SeqCst);
    let interrupted = interrupted.load(Ordering::SeqCst);
    let cache_hits = cache_hits.load(Ordering::SeqCst);
    let cross_restart_hits = cross_restart_hits.load(Ordering::SeqCst);
    let violations = violations.load(Ordering::SeqCst);
    let worker_restarts = worker_restarts.load(Ordering::SeqCst);

    println!(
        "chaos: {completed} completed, {failed} failed, {rejected} rejected, \
         {interrupted} interrupted over {:.1}s — cache {cache_hits} hit(s) \
         ({cross_restart_hits} across restarts), {kills_done} daemon kill(s), \
         {worker_restarts} worker restart(s), {violations} violation(s)",
        soak_started.elapsed().as_secs_f64()
    );
    println!(
        "chaos: client latency p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms{}",
        p50 as f64 / 1_000.0,
        p95 as f64 / 1_000.0,
        p99 as f64 / 1_000.0,
        match (serve_p50, serve_p95, serve_p99) {
            (Some(a), Some(b), Some(c)) => format!(
                "; serve.request p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms (final generation)",
                a as f64 / 1_000.0,
                b as f64 / 1_000.0,
                c as f64 / 1_000.0
            ),
            _ => String::new(),
        }
    );

    let mut config: Vec<(&str, ManifestValue)> = vec![
        ("model", model.as_str().into()),
        ("duration_secs", duration.as_secs_f64().into()),
        ("clients", clients.into()),
        ("workers", workers.into()),
        ("configs", configs.into()),
        ("daemon_kills", u64::from(kills_done).into()),
        ("worker_restarts", worker_restarts.into()),
        ("completed", completed.into()),
        ("failed", failed.into()),
        ("rejected", rejected.into()),
        ("interrupted", interrupted.into()),
        ("cache_hits", cache_hits.into()),
        ("cross_restart_cache_hits", cross_restart_hits.into()),
        ("consistency_violations", violations.into()),
        ("client_p50_us", p50.into()),
        ("client_p95_us", p95.into()),
        ("client_p99_us", p99.into()),
        ("drained_clean", drained.into()),
    ];
    if let (Some(a), Some(b), Some(c)) = (serve_p50, serve_p95, serve_p99) {
        config.push(("serve_p50_us", a.into()));
        config.push(("serve_p95_us", b.into()));
        config.push(("serve_p99_us", c.into()));
    }
    run.finish("chaos", &config)?;

    if completed == 0 {
        return Err(Box::new(ArgsError(
            "chaos soak completed zero requests — the daemon never answered".into(),
        )));
    }
    if violations > 0 {
        return Err(Box::new(ArgsError(format!(
            "chaos soak found {violations} consistency violation(s)"
        ))));
    }
    // Gate on the daemon's own histogram when available (it excludes
    // client-side reconnect backoff), else the client-observed tail.
    let gate_p99_us = serve_p99.unwrap_or(p99);
    if slo_p99_ms > 0 && gate_p99_us > slo_p99_ms * 1_000 {
        return Err(Box::new(ArgsError(format!(
            "p99 {:.1} ms breaches the {slo_p99_ms} ms SLO",
            gate_p99_us as f64 / 1_000.0
        ))));
    }
    Ok(())
}

/// `clado assign --model <id> --avg-bits <f> [--sens <file>]`
pub fn cmd_assign(args: &Args) -> Result<(), Box<dyn Error>> {
    let run = RunContext::from_args(args)?;
    let kind = model_kind(args.require::<String>("model")?.as_str())?;
    let avg_bits: f64 = args.require("avg-bits")?;
    let scheme = scheme_of(args)?;
    let algorithm = algorithm_of(args)?;
    let solver = solver_config_of(args, &run)?;
    let strict = args.switch("solver-strict");
    let mut config = vec![
        ("model", ManifestValue::from(kind.id())),
        ("algorithm", algorithm.label().into()),
        ("avg_bits", avg_bits.into()),
        ("scheme", format!("{scheme:?}").into()),
    ];

    let mut p = {
        let _s = run.telemetry.span("load");
        pretrained(kind)
    };
    let sizes = LayerSizes::new(p.network.layer_param_counts());
    let budget = sizes.budget_from_avg_bits(avg_bits);

    let assignment = if let Some(sens_path) = args.get("sens") {
        // Reuse persisted sensitivities (CLADO variants only).
        let sm = load_sensitivities(std::path::Path::new(sens_path))?;
        if !sm.stats.provenance.is_exact() {
            run.info(&format!("Ω provenance: {}", sm.stats.provenance));
        }
        let variant = match algorithm {
            Algorithm::CladoStar => CladoVariant::DiagonalOnly,
            Algorithm::BlockClado => CladoVariant::BlockOnly(
                p.network
                    .quantizable_layers()
                    .iter()
                    .map(|l| l.block)
                    .collect(),
            ),
            Algorithm::Clado | Algorithm::CladoNoPsd => CladoVariant::Full,
            other => {
                return Err(Box::new(ArgsError(format!(
                    "--sens files apply to CLADO variants, not {other:?}"
                ))))
            }
        };
        assign_bits(
            &sm,
            &sizes,
            budget,
            &AssignOptions {
                variant,
                skip_psd: args.switch("no-psd"),
                solver,
                strict,
                telemetry: run.telemetry.clone(),
            },
        )?
    } else {
        let bits = BitWidthSet::new(&args.u8_list_or("bits", &[2, 4, 8])?);
        let set_size: usize = args.get_or("set-size", 128)?;
        let sens_set = p
            .data
            .train
            .sample_subset(set_size.min(p.data.train.len()), 0);
        let mut ctx = ExperimentContext::new(p.network, sens_set, p.data.val.clone(), bits, scheme);
        ctx.telemetry = run.telemetry.clone();
        ctx.solver = solver;
        ctx.solver_strict = strict;
        let (assignment, acc) = ctx.run(algorithm, budget)?;
        report_solver_outcome(&run, &assignment.solution);
        println!(
            "{:<10} {:>7.4} MB  acc {:>6.2}%  {}",
            algorithm.label(),
            bits_to_mb(assignment.cost_bits),
            acc * 100.0,
            assignment.bitmap()
        );
        config.extend(solver_manifest(&assignment.solution));
        return run.finish("assign", &config);
    };
    report_solver_outcome(&run, &assignment.solution);
    config.extend(solver_manifest(&assignment.solution));
    let acc = {
        let _s = run.telemetry.span("eval");
        quantized_accuracy(&mut p.network, &assignment.bits, scheme, &p.data.val)
    };
    println!(
        "{:<10} {:>7.4} MB  acc {:>6.2}%  {}",
        algorithm.label(),
        bits_to_mb(assignment.cost_bits),
        acc * 100.0,
        assignment.bitmap()
    );
    run.finish("assign", &config)
}

/// `clado sweep --model <id> [--from --to --step]`
pub fn cmd_sweep(args: &Args) -> Result<(), Box<dyn Error>> {
    let run = RunContext::from_args(args)?;
    let kind = model_kind(args.require::<String>("model")?.as_str())?;
    let from: f64 = args.get_or("from", 2.5)?;
    let to: f64 = args.get_or("to", 4.0)?;
    let step: f64 = args.get_or("step", 0.5)?;
    if !(from > 0.0 && to >= from && step > 0.0) {
        return Err(Box::new(ArgsError("invalid sweep range".into())));
    }
    let algorithm = algorithm_of(args)?;
    let scheme = scheme_of(args)?;
    let bits = BitWidthSet::new(&args.u8_list_or("bits", &[2, 4, 8])?);
    let set_size: usize = args.get_or("set-size", 128)?;

    let p = {
        let _s = run.telemetry.span("load");
        pretrained(kind)
    };
    run.info(&format!(
        "{} (FP32 {:.2}%), {}",
        kind.display_name(),
        p.val_accuracy * 100.0,
        algorithm.label()
    ));
    let sens_set = p
        .data
        .train
        .sample_subset(set_size.min(p.data.train.len()), 0);
    let mut ctx = ExperimentContext::new(p.network, sens_set, p.data.val.clone(), bits, scheme);
    ctx.telemetry = run.telemetry.clone();
    ctx.solver = solver_config_of(args, &run)?;
    ctx.solver_strict = args.switch("solver-strict");
    run.info(&format!(
        "{:>9} {:>11} {:>9}",
        "avg bits", "size (MB)", "accuracy"
    ));
    let mut avg = from;
    while avg <= to + 1e-9 {
        let budget = ctx.sizes.budget_from_avg_bits(avg);
        match ctx.run(algorithm, budget) {
            Ok((a, acc)) => println!(
                "{avg:>9.2} {:>11.4} {:>8.2}%",
                bits_to_mb(a.cost_bits),
                acc * 100.0
            ),
            Err(e) => println!("{avg:>9.2} {e:>20}"),
        }
        avg += step;
    }
    run.finish(
        "sweep",
        &[
            ("model", kind.id().into()),
            ("algorithm", algorithm.label().into()),
            ("from", from.into()),
            ("to", to.into()),
            ("step", step.into()),
        ],
    )
}

/// `clado eval --model <id> --map 8,4,...`
pub fn cmd_eval(args: &Args) -> Result<(), Box<dyn Error>> {
    let run = RunContext::from_args(args)?;
    let kind = model_kind(args.require::<String>("model")?.as_str())?;
    let map = args.u8_list_or("map", &[])?;
    let scheme = scheme_of(args)?;
    let mut p = {
        let _s = run.telemetry.span("load");
        pretrained(kind)
    };
    let layers = p.network.quantizable_layers().len();
    if map.len() != layers {
        return Err(Box::new(ArgsError(format!(
            "--map has {} entries but {} has {layers} quantizable layers",
            map.len(),
            kind.display_name()
        ))));
    }
    if args.switch("layer-times") {
        // Per-stage `forward.<stage>` spans land in the same manifest.
        p.network.set_telemetry(run.telemetry.clone());
    }
    let assignment: Vec<BitWidth> = map.iter().map(|&b| BitWidth::of(b)).collect();
    let sizes = LayerSizes::new(p.network.layer_param_counts());
    let cost = sizes.assignment_bits(&assignment);
    let acc = {
        let _s = run.telemetry.span("eval");
        quantized_accuracy(&mut p.network, &assignment, scheme, &p.data.val)
    };
    println!(
        "{}: {:.4} MB ({:.2} bits/weight avg), PTQ accuracy {:.2}%",
        kind.display_name(),
        bits_to_mb(cost),
        clado_quant::avg_bits(cost, sizes.total_params()),
        acc * 100.0
    );
    let mut config: Vec<(&str, ManifestValue)> = vec![
        ("model", kind.id().into()),
        ("scheme", format!("{scheme:?}").into()),
        (
            "avg_bits",
            clado_quant::avg_bits(cost, sizes.total_params()).into(),
        ),
    ];
    if args.switch("integer") {
        let _s = run.telemetry.span("integer_eval");
        // Float baseline on the restored fp32 weights, then the same pass
        // with real int8 / packed-int4 kernels installed. Best of two
        // passes each, so one scheduler hiccup cannot invert the ratio.
        let timed = |network: &mut clado_nn::Network, split| {
            let mut acc = 0.0;
            let mut best = f64::INFINITY;
            for _ in 0..2 {
                let start = std::time::Instant::now();
                acc = clado_models::evaluate(network, split);
                best = best.min(start.elapsed().as_secs_f64());
            }
            (acc, best)
        };
        let (_, float_secs) = timed(&mut p.network, &p.data.val);
        let installed = p.network.set_integer_assignment(&assignment, scheme);
        let (int_acc, int_secs) = timed(&mut p.network, &p.data.val);
        p.network.clear_integer_assignment();
        let speedup = float_secs / int_secs;
        println!(
            "integer execution: accuracy {:.2}% ({installed}/{layers} layers on int kernels), \
             {:.1} ms vs float {:.1} ms → {speedup:.2}×",
            int_acc * 100.0,
            int_secs * 1e3,
            float_secs * 1e3,
        );
        config.push(("int_accuracy", int_acc.into()));
        config.push(("int_speedup", speedup.into()));
        config.push(("int_layers", installed.into()));
    }
    run.finish("eval", &config)
}

/// `clado stress [--layers 32] [--seed 7] [--avg-bits 4]`
///
/// Solves a planted dense cross-term IQP — the worst case for eq. (11)'s
/// branch and bound — under the anytime flags. This is the robustness
/// testbed for `--solver-timeout` and Ctrl-C: the instance is seeded, the
/// degraded result is deterministic, and the result line is stable across
/// runs, so CI can diff two invocations byte for byte.
pub fn cmd_stress(args: &Args) -> Result<(), Box<dyn Error>> {
    let run = RunContext::from_args(args)?;
    let layers: usize = args.get_or("layers", 32)?;
    let seed: u64 = args.get_or("seed", 7)?;
    let avg_bits: f64 = args.get_or("avg-bits", 4.0)?;
    let bits = args.u8_list_or("bits", &[2, 4, 8])?;
    if layers == 0 || bits.is_empty() {
        return Err(Box::new(ArgsError(
            "stress needs at least one layer and one bit-width".into(),
        )));
    }
    let mut solver = solver_config_of(args, &run)?;
    // The planted instance must outlive any practical node cap so that the
    // wall-clock deadline (or Ctrl-C) is what stops it; an explicit
    // --solver-nodes still wins.
    if args.get("solver-nodes").is_none() {
        solver.max_nodes = u64::MAX;
    }

    let choices_per_layer = bits.len();
    let n = layers * choices_per_layer;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = SymMatrix::zeros(n);
    for i in 0..n {
        for j in i..n {
            let v = rng.gen_range(-1.0f64..1.0);
            // Dense cross terms at a quarter of the diagonal scale: enough
            // coupling to defeat bound pruning, per the paper's observation
            // that Ĝ is far from separable.
            g.set(i, j, if i == j { v.abs() } else { 0.25 * v });
        }
    }
    // Parameter counts in multiples of 64 keep candidate costs and the
    // budget in whole bits.
    let params: Vec<u64> = (0..layers).map(|_| 64 * rng.gen_range(1u64..=64)).collect();
    let costs: Vec<u64> = params
        .iter()
        .flat_map(|&p| bits.iter().map(move |&b| p * b as u64))
        .collect();
    let budget = (params.iter().sum::<u64>() as f64 * avg_bits) as u64;

    let problem = IqpProblem::new(g, &vec![choices_per_layer; layers], costs, budget)?;
    let solution = problem.solve(&solver)?;
    assert!(
        problem.is_feasible(&solution.choices),
        "stress solve returned an infeasible assignment"
    );
    for d in &solution.downgrades {
        run.info(&format!("downgrade: {d}"));
    }
    println!(
        "termination={} method={} gap={:.6e} objective={:.6e} cost={}",
        solution.termination.label(),
        solution.method_used.label(),
        solution.gap,
        solution.objective,
        solution.cost,
    );
    println!("choices={:?}", solution.choices);
    let mut config: Vec<(&str, ManifestValue)> = vec![
        ("layers", layers.into()),
        ("seed", seed.into()),
        ("avg_bits", avg_bits.into()),
    ];
    config.extend(solver_manifest(&solution));
    run.finish("stress", &config)
}

/// `clado trace --file <file.clsm>`: the stored matrix's shape, how it
/// was measured, and — the v4 stats block — how the Ω was produced
/// (exact full sweep vs. estimator name / budget / seed).
fn print_clsm_summary(path: &std::path::Path) -> Result<(), Box<dyn Error>> {
    let sm = load_sensitivities(path)?;
    let dim = sm.num_layers() * sm.bits().len();
    println!(
        "{}: Ĝ {dim}×{dim} ({} layers × 𝔹 = {}), base loss {:.6}",
        path.display(),
        sm.num_layers(),
        sm.bits(),
        sm.base_loss
    );
    println!("  Ω provenance: {}", sm.stats.provenance);
    println!(
        "  {} evaluations in {:.1}s on {} thread(s) \
         ({} full, {} prefix-cache hits, {} cache builds)",
        sm.stats.evaluations,
        sm.stats.seconds,
        sm.stats.threads_used,
        sm.stats.full_evals,
        sm.stats.prefix_cache_hits,
        sm.stats.prefix_cache_builds
    );
    if sm.stats.resumed + sm.stats.retried + sm.stats.quarantined > 0 {
        println!(
            "  fault recovery: {} resumed, {} retried, {} quarantined",
            sm.stats.resumed, sm.stats.retried, sm.stats.quarantined
        );
    }
    Ok(())
}

/// One "X" (complete) event pulled out of a trace file.
struct SpanEvent {
    name: String,
    pid: u32,
    tid: u32,
    ts_us: u64,
    dur_us: u64,
}

/// Everything `clado trace` needs from a Chrome Trace Format file:
/// complete spans, instant events, and the per-process metadata records.
struct TraceFile {
    spans: Vec<SpanEvent>,
    instants: Vec<(String, u64, Option<f64>, Option<String>)>,
    process_names: Vec<(u32, String)>,
    trace_ids: Vec<String>,
}

fn load_trace_file(path: &std::path::Path) -> Result<TraceFile, Box<dyn Error>> {
    let text = std::fs::read_to_string(path)?;
    let json = clado_telemetry::parse_json(&text)
        .map_err(|e| ArgsError(format!("{}: not a JSON trace: {e}", path.display())))?;
    let events = json
        .as_arr()
        .ok_or_else(|| ArgsError(format!("{}: expected a JSON array", path.display())))?;
    let mut out = TraceFile {
        spans: Vec::new(),
        instants: Vec::new(),
        process_names: Vec::new(),
        trace_ids: Vec::new(),
    };
    use clado_telemetry::Json;
    let num = |e: &Json, key: &str| e.get(key).and_then(Json::as_num).unwrap_or(0.0);
    for e in events {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let pid = num(e, "pid") as u32;
        match e.get("ph").and_then(Json::as_str) {
            Some("M") => {
                if let Some(args) = e.get("args") {
                    if name == "process_name" {
                        if let Some(label) = args.get("name").and_then(Json::as_str) {
                            out.process_names.push((pid, label.to_string()));
                        }
                    } else if name == "trace_id" {
                        if let Some(id) = args.get("trace_id").and_then(Json::as_str) {
                            if !out.trace_ids.contains(&id.to_string()) {
                                out.trace_ids.push(id.to_string());
                            }
                        }
                    }
                }
            }
            Some("X") => out.spans.push(SpanEvent {
                name,
                pid,
                tid: num(e, "tid") as u32,
                ts_us: num(e, "ts") as u64,
                dur_us: num(e, "dur") as u64,
            }),
            Some("i") => {
                let (value, label) = match e.get("args") {
                    Some(args) => (
                        args.get("value").and_then(Json::as_num),
                        args.get("label").and_then(Json::as_str).map(str::to_string),
                    ),
                    None => (None, None),
                };
                out.instants.push((name, num(e, "ts") as u64, value, label));
            }
            _ => {}
        }
    }
    Ok(out)
}

/// Per-name self-time aggregation: each span's duration minus its direct
/// children's durations, computed per (pid, tid) thread lane.
fn self_time_by_name(spans: &[SpanEvent]) -> Vec<(String, u64, u64, u64)> {
    use std::collections::HashMap;
    let mut lanes: HashMap<(u32, u32), Vec<&SpanEvent>> = HashMap::new();
    for s in spans {
        lanes.entry((s.pid, s.tid)).or_default().push(s);
    }
    // name → (self_us, total_us, count)
    let mut agg: HashMap<&str, (u64, u64, u64)> = HashMap::new();
    for lane in lanes.values_mut() {
        // Parents start no later than their children; ties (same ts) put
        // the longer span first so it becomes the enclosing frame.
        lane.sort_by_key(|s| (s.ts_us, std::cmp::Reverse(s.dur_us)));
        // (end_us, name, dur_us, child_us)
        let mut stack: Vec<(u64, &str, u64, u64)> = Vec::new();
        fn finalize<'a>(
            frame: (u64, &'a str, u64, u64),
            agg: &mut HashMap<&'a str, (u64, u64, u64)>,
        ) {
            let (_, name, dur, child) = frame;
            let entry = agg.entry(name).or_insert((0u64, 0u64, 0u64));
            entry.0 += dur.saturating_sub(child);
            entry.1 += dur;
            entry.2 += 1;
        }
        for s in lane.iter() {
            while stack.last().is_some_and(|&(end, ..)| end <= s.ts_us) {
                let frame = stack.pop().expect("checked non-empty");
                finalize(frame, &mut agg);
            }
            if let Some(top) = stack.last_mut() {
                top.3 += s.dur_us;
            }
            stack.push((s.ts_us + s.dur_us, &s.name, s.dur_us, 0));
        }
        while let Some(frame) = stack.pop() {
            finalize(frame, &mut agg);
        }
    }
    let mut rows: Vec<(String, u64, u64, u64)> = agg
        .into_iter()
        .map(|(name, (self_us, total_us, count))| (name.to_string(), self_us, total_us, count))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

/// `clado trace --file <trace.json>`
///
/// Summarizes a `--trace-out` file: where the time went (top self-time
/// spans), how evenly the processes were loaded (utilization/straggler
/// report), and how the solver objective improved over time (incumbent
/// curve from the `solver.incumbents` instants).
pub fn cmd_trace(args: &Args) -> Result<(), Box<dyn Error>> {
    let path = PathBuf::from(args.require::<String>("file")?);
    if path.extension().is_some_and(|e| e == "clsm") {
        return print_clsm_summary(&path);
    }
    let top: usize = args.get_or("top", 10)?;
    let trace = load_trace_file(&path)?;
    if trace.spans.is_empty() && trace.instants.is_empty() {
        println!("{}: no events", path.display());
        return Ok(());
    }
    let first_ts = trace.spans.iter().map(|s| s.ts_us).min().unwrap_or(0);
    let last_end = trace
        .spans
        .iter()
        .map(|s| s.ts_us + s.dur_us)
        .chain(trace.instants.iter().map(|&(_, ts, _, _)| ts))
        .max()
        .unwrap_or(0);
    let wall_us = last_end.saturating_sub(first_ts).max(1);
    match trace.trace_ids.as_slice() {
        [] => println!(
            "{}: untagged trace, {:.2}s wall",
            path.display(),
            wall_us as f64 / 1e6
        ),
        [id] => println!(
            "{}: trace {id}, {:.2}s wall",
            path.display(),
            wall_us as f64 / 1e6
        ),
        ids => println!(
            "{}: WARNING: {} distinct trace ids ({}) — mixed runs?",
            path.display(),
            ids.len(),
            ids.join(", ")
        ),
    }

    let rows = self_time_by_name(&trace.spans);
    if !rows.is_empty() {
        println!("\ntop self-time spans:");
        println!(
            "  {:<32} {:>9} {:>9} {:>7} {:>6}",
            "span", "self", "total", "count", "self%"
        );
        for (name, self_us, total_us, count) in rows.iter().take(top) {
            println!(
                "  {:<32} {:>9} {:>9} {:>7} {:>5.1}%",
                name,
                fmt_us(*self_us),
                fmt_us(*total_us),
                count,
                100.0 * *self_us as f64 / wall_us as f64
            );
        }
    }

    // Per-process utilization: busy = per-lane top-level span time (the
    // self-time pass already de-nests; here top-level totals suffice
    // because lanes serialize their spans).
    let mut pids: Vec<u32> = trace.spans.iter().map(|s| s.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    if pids.len() > 1 {
        println!("\nper-process report:");
        println!(
            "  {:<16} {:>9} {:>9} {:>7} {:>6}",
            "process", "busy", "last-end", "spans", "util%"
        );
        let mut straggler: (u32, u64) = (0, 0);
        for &pid in &pids {
            let name = trace
                .process_names
                .iter()
                .find(|(p, _)| *p == pid)
                .map(|(_, n)| n.clone())
                .unwrap_or_else(|| format!("pid {pid}"));
            let lane_spans: Vec<&SpanEvent> = trace.spans.iter().filter(|s| s.pid == pid).collect();
            // Top-level busy time per (tid) lane: sum spans not nested in
            // an earlier span of the same lane.
            use std::collections::HashMap;
            let mut by_tid: HashMap<u32, Vec<&SpanEvent>> = HashMap::new();
            for s in &lane_spans {
                by_tid.entry(s.tid).or_default().push(s);
            }
            let mut busy = 0u64;
            for lane in by_tid.values_mut() {
                lane.sort_by_key(|s| (s.ts_us, std::cmp::Reverse(s.dur_us)));
                let mut covered_until = 0u64;
                for s in lane {
                    let end = s.ts_us + s.dur_us;
                    if end > covered_until {
                        busy += end - s.ts_us.max(covered_until);
                        covered_until = end;
                    }
                }
            }
            let end = lane_spans
                .iter()
                .map(|s| s.ts_us + s.dur_us)
                .max()
                .unwrap_or(0);
            if end > straggler.1 {
                straggler = (pid, end);
            }
            println!(
                "  {:<16} {:>9} {:>9} {:>7} {:>5.1}%",
                name,
                fmt_us(busy),
                fmt_us(end.saturating_sub(first_ts)),
                lane_spans.len(),
                100.0 * busy as f64 / wall_us as f64
            );
        }
        let name = trace
            .process_names
            .iter()
            .find(|(p, _)| *p == straggler.0)
            .map(|(_, n)| n.as_str())
            .unwrap_or("?");
        println!(
            "  straggler: {name} (finished last, at {})",
            fmt_us(straggler.1.saturating_sub(first_ts))
        );
    }

    let incumbents: Vec<_> = trace
        .instants
        .iter()
        .filter(|(name, _, value, _)| name == "solver.incumbents" && value.is_some())
        .collect();
    if !incumbents.is_empty() {
        println!("\nincumbent curve (objective vs time):");
        for (_, ts, value, label) in &incumbents {
            println!(
                "  {:>9}  {:>14.6e}  {}",
                fmt_us(ts.saturating_sub(first_ts)),
                value.expect("filtered Some"),
                label.as_deref().unwrap_or("")
            );
        }
    }

    let other_instants = trace.instants.len() - incumbents.len();
    if other_instants > 0 {
        println!("\n{other_instants} other instant events (lease grants, heartbeats, ...)");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::parse(parts.iter().map(|s| s.to_string())).expect("valid test args")
    }

    #[test]
    fn model_ids_resolve() {
        assert_eq!(model_kind("resnet34").unwrap(), ModelKind::ResNet34);
        assert_eq!(model_kind("mobilenet").unwrap(), ModelKind::MobileNet);
        assert!(model_kind("alexnet").is_err());
    }

    #[test]
    fn scheme_and_algorithm_parsing() {
        assert_eq!(
            scheme_of(&args(&["x"])).unwrap(),
            QuantScheme::PerTensorSymmetric
        );
        assert_eq!(
            scheme_of(&args(&["x", "--scheme", "affine"])).unwrap(),
            QuantScheme::PerChannelAffine
        );
        assert!(scheme_of(&args(&["x", "--scheme", "nope"])).is_err());
        assert_eq!(algorithm_of(&args(&["x"])).unwrap(), Algorithm::Clado);
        assert_eq!(
            algorithm_of(&args(&["x", "--algorithm", "hawq"])).unwrap(),
            Algorithm::Hawq
        );
        assert!(algorithm_of(&args(&["x", "--algorithm", "nas"])).is_err());
    }

    #[test]
    fn eval_rejects_wrong_map_length() {
        // Use the cached resnet20 if present; otherwise this trains once
        // (~15 s) and caches for every other test/bench on the machine.
        let a = args(&["eval", "--model", "resnet20", "--map", "8,8"]);
        let err = cmd_eval(&a).unwrap_err();
        assert!(err.to_string().contains("quantizable layers"), "{err}");
    }

    #[test]
    fn usage_covers_every_command() {
        for cmd in [
            "models",
            "train",
            "sensitivity",
            "estimate",
            "worker",
            "serve",
            "submit",
            "chaos",
            "assign",
            "sweep",
            "eval",
            "stress",
            "trace",
        ] {
            assert!(USAGE.contains(cmd), "usage missing `{cmd}`");
        }
        for flag in [
            "--solver-timeout",
            "--solver-nodes",
            "--solver-strict",
            "--trace-out",
            "--cache-dir",
            "--cache-disk-bytes",
            "--cache-bytes",
            "--connect-retries",
            "--slo-p99-ms",
            "--daemon-kills",
            "--worker-churn-ms",
        ] {
            assert!(USAGE.contains(flag), "usage missing `{flag}`");
        }
    }

    #[test]
    fn quiet_suppresses_progress_and_trace_stderr_entirely() {
        let run = RunContext::from_args(&args(&["models", "--quiet"])).unwrap();
        assert!(run.quiet);
        let p = run.telemetry.progress("probes", 100);
        for _ in 0..100 {
            p.tick();
        }
        p.finish();
        assert_eq!(
            p.lines_printed(),
            0,
            "--quiet must suppress progress output entirely"
        );
    }

    #[test]
    fn trace_out_writes_a_file_that_cmd_trace_can_summarize() {
        let dir = std::env::temp_dir().join(format!("clado-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        let path_str = path.to_str().unwrap();
        let run =
            RunContext::from_args(&args(&["models", "--quiet", "--trace-out", path_str])).unwrap();
        assert!(run.telemetry.trace_enabled());
        assert_ne!(run.telemetry.trace_id(), 0);
        {
            let _outer = run.telemetry.span("load");
            {
                let _inner = run.telemetry.span("load.weights");
                run.telemetry
                    .series_push("solver.incumbents", 1.25, "warm_start");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            // Keep the outer span strictly longer than the inner one: at µs
            // granularity two spans with identical (ts, dur) cannot be
            // oriented as parent/child by the summarizer.
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        run.finish("models", &[]).unwrap();

        let trace = load_trace_file(&path).expect("trace file parses");
        assert_eq!(trace.spans.len(), 2, "both spans recorded");
        assert_eq!(trace.trace_ids.len(), 1, "one trace id");
        assert!(trace
            .instants
            .iter()
            .any(|(name, _, value, label)| name == "solver.incumbents"
                && *value == Some(1.25)
                && label.as_deref() == Some("warm_start")));
        // The nested span's time is attributed to it, not its parent.
        let rows = self_time_by_name(&trace.spans);
        let parent = rows.iter().find(|r| r.0 == "load").expect("parent row");
        let child = rows
            .iter()
            .find(|r| r.0 == "load.weights")
            .expect("child row");
        assert!(parent.1 <= parent.2, "self <= total");
        assert_eq!(child.1, child.2, "leaf span is all self time");

        cmd_trace(&args(&["trace", "--file", path_str])).expect("summary renders");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stress_is_deterministic_for_a_fixed_seed_under_a_zero_deadline() {
        // `--solver-timeout 0s` expires immediately: the ladder must fall
        // to its deterministic floor, and two runs must agree exactly.
        let a = args(&[
            "stress",
            "--layers",
            "12",
            "--solver-timeout",
            "0s",
            "--quiet",
        ]);
        cmd_stress(&a).expect("stress degrades, never errors");
        cmd_stress(&a).expect("stress degrades, never errors");
    }

    #[test]
    fn stress_solves_tiny_instances_to_proof() {
        let a = args(&["stress", "--layers", "2", "--quiet"]);
        cmd_stress(&a).expect("tiny stress instance solves");
    }

    #[test]
    fn solver_flags_parse_into_the_config() {
        let run = RunContext::from_args(&args(&["assign", "--quiet"])).unwrap();
        let config = solver_config_of(
            &args(&["assign", "--solver-timeout", "10s", "--solver-nodes", "99"]),
            &run,
        )
        .unwrap();
        assert_eq!(config.max_wall, Some(Duration::from_secs(10)));
        assert_eq!(config.max_nodes, 99);
        assert!(solver_config_of(&args(&["assign", "--solver-timeout", "x"]), &run).is_err());
    }
}
