//! Ctrl-C → cooperative solver cancellation.
//!
//! The first SIGINT raises the shared cancel flag that [`install`] returned;
//! the anytime solver notices it at its next deterministic check point and
//! degrades to the best incumbent instead of dying mid-solve. A second
//! SIGINT exits immediately with the conventional 128+SIGINT status, so an
//! impatient user is never trapped.
//!
//! The handler is registered through a raw `signal(2)` FFI call (the build
//! environment has no `libc`/`ctrlc` crates) and does only
//! async-signal-safe work: an atomic swap, `write(2)`, and `_exit(2)`.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

#[cfg(unix)]
mod imp {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const STDERR: i32 = 2;

    /// The flag shared between the handler and every `SolverConfig`.
    static CANCEL: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    /// The drain flag shared with `clado serve`: SIGTERM or Ctrl-C
    /// raises it once; a second signal hard-exits.
    static DRAIN: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn _exit(status: i32) -> !;
    }

    extern "C" fn on_sigint(_signum: i32) {
        // First interrupt: raise the cooperative flag and keep running.
        // Second interrupt (flag already raised): hard-exit with 130.
        if let Some(flag) = CANCEL.get() {
            if !flag.swap(true, Ordering::SeqCst) {
                let msg =
                    b"\ninterrupted: finishing with the best incumbent (Ctrl-C again to abort)\n";
                unsafe {
                    write(STDERR, msg.as_ptr(), msg.len());
                }
                return;
            }
        }
        unsafe { _exit(128 + SIGINT) }
    }

    extern "C" fn on_drain(signum: i32) {
        // First SIGTERM/SIGINT: raise the drain flag; the daemon stops
        // admitting, finishes in-flight requests, and exits 0. A second
        // signal aborts immediately with the conventional status.
        if let Some(flag) = DRAIN.get() {
            if !flag.swap(true, Ordering::SeqCst) {
                let msg = b"\ndraining: finishing in-flight requests (signal again to abort)\n";
                unsafe {
                    write(STDERR, msg.as_ptr(), msg.len());
                }
                return;
            }
        }
        unsafe { _exit(128 + signum) }
    }

    pub fn install() -> Arc<AtomicBool> {
        let flag = CANCEL
            .get_or_init(|| Arc::new(AtomicBool::new(false)))
            .clone();
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
        flag
    }

    pub fn install_drain() -> Arc<AtomicBool> {
        let flag = DRAIN
            .get_or_init(|| Arc::new(AtomicBool::new(false)))
            .clone();
        unsafe {
            signal(SIGTERM, on_drain as *const () as usize);
            signal(SIGINT, on_drain as *const () as usize);
        }
        flag
    }
}

#[cfg(not(unix))]
mod imp {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    pub fn install() -> Arc<AtomicBool> {
        // No signal support: solves are simply not Ctrl-C-cancellable.
        Arc::new(AtomicBool::new(false))
    }

    pub fn install_drain() -> Arc<AtomicBool> {
        // No signal support: the daemon runs until killed.
        Arc::new(AtomicBool::new(false))
    }
}

/// Installs the SIGINT handler (idempotent) and returns the shared cancel
/// flag to pass to `SolverConfig::cancel`.
pub fn install() -> Arc<AtomicBool> {
    imp::install()
}

/// Installs the SIGTERM + SIGINT drain handler for `clado serve`
/// (idempotent) and returns the shared drain flag: the first signal
/// raises it (graceful drain), the second aborts with `128 + signum`.
/// Takes over SIGINT from [`install`] — the daemon drains on Ctrl-C
/// rather than cancelling a single solve.
pub fn install_drain() -> Arc<AtomicBool> {
    imp::install_drain()
}

#[cfg(all(test, unix))]
mod tests {
    use std::sync::atomic::Ordering;

    #[test]
    fn install_is_idempotent_and_shares_one_flag() {
        let a = super::install();
        let b = super::install();
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert!(!a.load(Ordering::Relaxed));
    }

    #[test]
    fn install_drain_is_idempotent_and_distinct_from_cancel() {
        let cancel = super::install();
        let a = super::install_drain();
        let b = super::install_drain();
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert!(!std::sync::Arc::ptr_eq(&a, &cancel));
        assert!(!a.load(Ordering::Relaxed));
    }
}
