//! A small `--flag value` argument parser (no external dependencies).

use std::collections::BTreeMap;
use std::fmt;

/// Error produced while parsing or reading arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgsError(pub String);

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgsError {}

/// Parsed command line: one subcommand plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    subcommand: Option<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// Grammar: `[subcommand] (--key value | --switch)*`. A `--key` that is
    /// followed by another `--…` token (or nothing) is a boolean switch.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] on a stray positional argument after options
    /// began, or a duplicated key.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgsError> {
        let mut args = Args::default();
        let mut it = raw.into_iter().peekable();
        if let Some(first) = it.peek() {
            if !first.starts_with("--") {
                args.subcommand = it.next();
            }
        }
        while let Some(tok) = it.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(ArgsError(format!("unexpected positional argument `{tok}`")));
            };
            if key.is_empty() {
                return Err(ArgsError("empty option name `--`".into()));
            }
            let takes_value = it.peek().is_some_and(|next| !next.starts_with("--"));
            if takes_value {
                let value = it.next().expect("peeked");
                if args.options.insert(key.to_string(), value).is_some() {
                    return Err(ArgsError(format!("option `--{key}` given twice")));
                }
            } else {
                if args.flags.contains(&key.to_string()) {
                    return Err(ArgsError(format!("switch `--{key}` given twice")));
                }
                args.flags.push(key.to_string());
            }
        }
        Ok(args)
    }

    /// The subcommand, if any.
    pub fn subcommand(&self) -> Option<&str> {
        self.subcommand.as_deref()
    }

    /// Raw string value of `--key`.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// `true` if the boolean switch `--key` was given.
    pub fn switch(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Typed value with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] if the value does not parse as `T`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgsError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgsError(format!("invalid value `{v}` for --{key}"))),
        }
    }

    /// Required typed value.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] if the key is missing or does not parse.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgsError> {
        let v = self
            .get(key)
            .ok_or_else(|| ArgsError(format!("missing required --{key}")))?;
        v.parse()
            .map_err(|_| ArgsError(format!("invalid value `{v}` for --{key}")))
    }

    /// Duration value of `--key` (e.g. `--solver-timeout 10s`), accepting
    /// the suffixes `ms`, `s`, `m`, and `h` (a bare number means seconds).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] if the value does not parse as a duration.
    pub fn duration(&self, key: &str) -> Result<Option<std::time::Duration>, ArgsError> {
        self.get(key)
            .map(|v| {
                parse_duration(v).ok_or_else(|| {
                    ArgsError(format!(
                        "invalid duration `{v}` for --{key} (use e.g. 500ms, 10s, 2m, 1h)"
                    ))
                })
            })
            .transpose()
    }

    /// Comma-separated `u8` list (e.g. `--bits 2,4,8`).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] on parse failure.
    pub fn u8_list_or(&self, key: &str, default: &[u8]) -> Result<Vec<u8>, ArgsError> {
        match self.get(key) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|p| {
                    p.trim()
                        .parse::<u8>()
                        .map_err(|_| ArgsError(format!("invalid entry `{p}` in --{key}")))
                })
                .collect(),
        }
    }
}

/// Parses a human-readable duration: `500ms`, `10s`, `2m`, `1h`, or a bare
/// number of seconds. Fractions are accepted (`1.5s`). Returns `None` on
/// anything else (including negatives and non-finite values).
pub fn parse_duration(s: &str) -> Option<std::time::Duration> {
    let s = s.trim();
    let (number, scale_ms) = if let Some(n) = s.strip_suffix("ms") {
        (n, 1.0)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000.0)
    } else if let Some(n) = s.strip_suffix('m') {
        (n, 60_000.0)
    } else if let Some(n) = s.strip_suffix('h') {
        (n, 3_600_000.0)
    } else {
        (s, 1_000.0)
    };
    let value: f64 = number.trim().parse().ok()?;
    if !value.is_finite() || value < 0.0 {
        return None;
    }
    Some(std::time::Duration::from_secs_f64(
        value * scale_ms / 1_000.0,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn parse(parts: &[&str]) -> Result<Args, ArgsError> {
        Args::parse(parts.iter().map(|s| s.to_string()))
    }

    #[test]
    fn subcommand_and_options() {
        let a = parse(&["assign", "--model", "resnet34", "--avg-bits", "3.0"]).unwrap();
        assert_eq!(a.subcommand(), Some("assign"));
        assert_eq!(a.get("model"), Some("resnet34"));
        assert_eq!(a.get_or::<f64>("avg-bits", 0.0).unwrap(), 3.0);
    }

    #[test]
    fn switches_and_defaults() {
        let a = parse(&["sweep", "--verbose", "--step", "0.5"]).unwrap();
        assert!(a.switch("verbose"));
        assert!(!a.switch("quiet"));
        assert_eq!(a.get_or::<f64>("step", 0.25).unwrap(), 0.5);
        assert_eq!(a.get_or::<f64>("from", 2.5).unwrap(), 2.5);
    }

    #[test]
    fn bit_lists() {
        let a = parse(&["x", "--bits", "2,4,8"]).unwrap();
        assert_eq!(a.u8_list_or("bits", &[8]).unwrap(), vec![2, 4, 8]);
        assert_eq!(a.u8_list_or("other", &[8]).unwrap(), vec![8]);
        let bad = parse(&["x", "--bits", "2,nope"]).unwrap();
        assert!(bad.u8_list_or("bits", &[8]).is_err());
    }

    #[test]
    fn error_paths() {
        assert!(parse(&["x", "stray"]).is_err());
        assert!(parse(&["x", "--k", "1", "--k", "2"]).is_err());
        assert!(parse(&["x", "--"]).is_err());
        let a = parse(&["x"]).unwrap();
        assert!(a.require::<u64>("seed").is_err());
        let b = parse(&["x", "--seed", "abc"]).unwrap();
        assert!(b.require::<u64>("seed").is_err());
    }

    #[test]
    fn durations() {
        assert_eq!(parse_duration("500ms"), Some(Duration::from_millis(500)));
        assert_eq!(parse_duration("10s"), Some(Duration::from_secs(10)));
        assert_eq!(parse_duration("2m"), Some(Duration::from_secs(120)));
        assert_eq!(parse_duration("1h"), Some(Duration::from_secs(3600)));
        assert_eq!(parse_duration("3"), Some(Duration::from_secs(3)));
        assert_eq!(parse_duration("1.5s"), Some(Duration::from_millis(1500)));
        assert_eq!(parse_duration("-1s"), None);
        assert_eq!(parse_duration("fast"), None);
        let a = parse(&["x", "--solver-timeout", "10s"]).unwrap();
        assert_eq!(
            a.duration("solver-timeout").unwrap(),
            Some(Duration::from_secs(10))
        );
        assert_eq!(a.duration("other").unwrap(), None);
        let bad = parse(&["x", "--solver-timeout", "soon"]).unwrap();
        assert!(bad.duration("solver-timeout").is_err());
    }

    #[test]
    fn no_subcommand() {
        let a = parse(&["--help"]).unwrap();
        assert_eq!(a.subcommand(), None);
        assert!(a.switch("help"));
    }
}
