//! End-to-end tests of the `clado` binary via subprocess.

use clado_telemetry::{parse_json, Json};
use std::process::Command;

fn clado() -> Command {
    Command::new(env!("CARGO_BIN_EXE_clado"))
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = clado().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("sensitivity"));
}

#[test]
fn no_arguments_prints_usage() {
    let out = clado().output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("COMMANDS"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = clado().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn models_lists_the_zoo() {
    let out = clado().arg("models").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in [
        "resnet20",
        "resnet34",
        "resnet50",
        "mobilenetv3",
        "regnet",
        "vit",
    ] {
        assert!(stdout.contains(id), "missing {id} in:\n{stdout}");
    }
}

#[test]
fn missing_required_option_is_reported() {
    let out = clado().arg("train").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--model"));
}

#[test]
fn conflicting_progress_switches_are_rejected() {
    let out = clado()
        .args(["models", "--progress", "--no-progress"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));
}

#[test]
fn measure_alias_is_quiet_and_writes_a_valid_manifest() {
    let dir = std::env::temp_dir().join(format!("clado-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let clsm = dir.join("sens.clsm");
    let manifest = dir.join("manifest.json");
    let out = clado()
        .args([
            "measure",
            "--model",
            "resnet20",
            "--out",
            clsm.to_str().expect("utf8 path"),
            "--set-size",
            "8",
            "--bits",
            "4,8",
            "--metrics-out",
            manifest.to_str().expect("utf8 path"),
            "--quiet",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // --quiet leaves exactly the final result line on stdout.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.trim_end().lines().count(), 1, "stdout:\n{stdout}");
    assert!(stdout.contains("measured Ĝ"), "stdout:\n{stdout}");

    let doc = std::fs::read_to_string(&manifest).expect("manifest written");
    let j = parse_json(&doc).expect("manifest parses as JSON");
    assert_eq!(
        j.get("schema").and_then(Json::as_str),
        Some("clado-telemetry-manifest/v1")
    );
    assert_eq!(j.get("command").and_then(Json::as_str), Some("sensitivity"));
    assert!(
        j.get("config")
            .and_then(|c| c.get("threads"))
            .and_then(Json::as_num)
            .is_some_and(|t| t >= 1.0),
        "config.threads missing"
    );
    let counter = |name: &str| {
        j.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_num)
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    assert_eq!(
        counter("measure.evaluations"),
        counter("measure.full_evals") + counter("measure.prefix_cache_hits"),
        "every evaluation is either a full eval or a cache hit"
    );
    let spans = j.get("spans").and_then(Json::as_arr).expect("span forest");
    assert!(
        spans
            .iter()
            .any(|n| n.get("name").and_then(Json::as_str) == Some("measure")),
        "span tree has a `measure` root"
    );
    let coverage = j
        .get("span_coverage")
        .and_then(Json::as_num)
        .expect("span_coverage");
    assert!(coverage >= 0.95, "span coverage {coverage} below 95%");
}

/// The headline fault-injection scenario: a `sensitivity` sweep is
/// SIGKILL-style aborted mid-run (no unwinding, no flushing) via the
/// `journal.commit` fail point, then resumed with `--resume`. The resumed
/// run must produce a bitwise-identical `.clsm` file to an uninterrupted
/// reference run, and its manifest must report the recovery counters.
///
/// Fail points only exist in debug builds, so this test is compiled out
/// under `--release` (where the same run would simply never crash).
#[cfg(debug_assertions)]
#[test]
fn sensitivity_killed_mid_sweep_resumes_bitwise_identical() {
    use clado_core::load_sensitivities;

    let dir = std::env::temp_dir().join(format!("clado-cli-faultinj-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ckpt = dir.join("ckpt");
    let recovered = dir.join("recovered.clsm");
    let reference = dir.join("reference.clsm");
    let manifest = dir.join("recovered-manifest.json");
    let base_args = |out: &std::path::Path| {
        vec![
            "sensitivity".to_string(),
            "--model".into(),
            "resnet20".into(),
            "--out".into(),
            out.to_str().expect("utf8 path").into(),
            "--set-size".into(),
            "8".into(),
            "--bits".into(),
            "4,8".into(),
            "--quiet".into(),
        ]
    };

    // Uninterrupted reference run (no checkpointing, no fail points).
    let out = clado()
        .args(base_args(&reference))
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Kill the checkpointed sweep at its 15th journal commit — roughly
    // 50% through the 30 work items (1 base + 15 diagonal + 14 pairwise).
    let mut args = base_args(&recovered);
    args.push("--checkpoint-dir".into());
    args.push(ckpt.to_str().expect("utf8 path").into());
    let out = clado()
        .args(&args)
        .env("CLADO_FAULTPOINTS", "journal.commit=abort,skip=14")
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "the armed abort must kill the sweep");
    assert!(!recovered.exists(), "no .clsm may appear from a dead sweep");
    let shards = std::fs::read_dir(&ckpt)
        .expect("checkpoint dir exists")
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "clsj")
        })
        .count();
    assert_eq!(shards, 14, "commits before the abort are durable");

    // Resume: journaled probes restore, the rest re-measure.
    args.push("--resume".into());
    args.push("--metrics-out".into());
    args.push(manifest.to_str().expect("utf8 path").into());
    let out = clado().args(&args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Bitwise-identical matrix, base loss, and dimensions.
    let a = load_sensitivities(&reference).expect("reference .clsm loads");
    let b = load_sensitivities(&recovered).expect("recovered .clsm loads");
    assert_eq!(a.base_loss.to_bits(), b.base_loss.to_bits(), "base loss");
    let dim = a.matrix().dim();
    assert_eq!(dim, b.matrix().dim());
    for u in 0..dim {
        for v in u..dim {
            assert_eq!(
                a.matrix().get(u, v).to_bits(),
                b.matrix().get(u, v).to_bits(),
                "entry ({u},{v}) differs after resume"
            );
        }
    }
    assert!(b.stats.resumed > 0, "recovered run restored probes");
    assert_eq!(
        b.stats.resumed + b.stats.evaluations,
        a.stats.evaluations,
        "every probe was either resumed or re-measured exactly once"
    );

    // The manifest records the recovery.
    let doc = std::fs::read_to_string(&manifest).expect("manifest written");
    let j = parse_json(&doc).expect("manifest parses as JSON");
    let config_num = |name: &str| {
        j.get("config")
            .and_then(|c| c.get(name))
            .and_then(Json::as_num)
            .unwrap_or_else(|| panic!("config.{name} missing"))
    };
    assert!(
        config_num("resumed") > 0.0,
        "manifest reports resumed probes"
    );
    assert_eq!(config_num("resumed"), b.stats.resumed as f64);
    assert_eq!(config_num("retried"), b.stats.retried as f64);
    assert_eq!(config_num("quarantined"), b.stats.quarantined as f64);
    let _ = std::fs::remove_dir_all(&dir);
}

fn assert_clsm_bitwise_equal(reference: &std::path::Path, candidate: &std::path::Path) {
    use clado_core::load_sensitivities;
    let a = load_sensitivities(reference).expect("reference .clsm loads");
    let b = load_sensitivities(candidate).expect("candidate .clsm loads");
    assert_eq!(a.base_loss.to_bits(), b.base_loss.to_bits(), "base loss");
    let dim = a.matrix().dim();
    assert_eq!(dim, b.matrix().dim(), "matrix dimension");
    for u in 0..dim {
        for v in u..dim {
            assert_eq!(
                a.matrix().get(u, v).to_bits(),
                b.matrix().get(u, v).to_bits(),
                "entry ({u},{v}) differs"
            );
        }
    }
}

fn measure_args(out: &std::path::Path) -> Vec<String> {
    vec![
        "measure".to_string(),
        "--model".into(),
        "resnet20".into(),
        "--out".into(),
        out.to_str().expect("utf8 path").into(),
        "--set-size".into(),
        "8".into(),
        "--bits".into(),
        "4,8".into(),
        "--quiet".into(),
    ]
}

fn count_shards(ckpt: &std::path::Path) -> usize {
    std::fs::read_dir(ckpt).map_or(0, |it| {
        it.filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "clsj")
        })
        .count()
    })
}

/// The acceptance scenario for the distributed sweep: a coordinator with
/// three worker processes, one of which is SIGKILLed at roughly 50% of
/// the sweep. The coordinator must evict the dead worker's lease,
/// reassign it, and produce a `.clsm` bitwise-identical to a serial run.
#[test]
fn distributed_sweep_with_sigkilled_worker_is_bitwise_identical_to_serial() {
    use std::io::BufRead;

    let dir = std::env::temp_dir().join(format!("clado-cli-dist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let reference = dir.join("reference.clsm");
    let distributed = dir.join("distributed.clsm");
    let ckpt = dir.join("ckpt");

    // Serial reference run.
    let out = clado()
        .args(measure_args(&reference))
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Coordinator in listen mode with journaling (the journal doubles as
    // our progress probe for timing the SIGKILL).
    let mut coord_args = measure_args(&distributed);
    coord_args.extend([
        "--listen".into(),
        "127.0.0.1:0".into(),
        "--checkpoint-dir".into(),
        ckpt.to_str().expect("utf8 path").to_string(),
        "--idle-timeout-secs".into(),
        "120".into(),
    ]);
    let mut coordinator = clado()
        .args(&coord_args)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("coordinator spawns");
    let mut stdout = std::io::BufReader::new(coordinator.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("listening line");
    let addr = line
        .trim()
        .strip_prefix("coordinator listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_string();

    // Three worker processes.
    let mut workers: Vec<_> = (0..3)
        .map(|_| {
            clado()
                .args(["worker", "--connect", &addr, "--quiet"])
                .stdout(std::process::Stdio::null())
                .spawn()
                .expect("worker spawns")
        })
        .collect();

    // SIGKILL one worker once ~half the 30 shards are committed. Workers
    // spend nearly all their time mid-lease, so the kill lands mid-shard.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    while count_shards(&ckpt) < 15 {
        assert!(
            std::time::Instant::now() < deadline,
            "sweep never reached 50% ({} shards committed)",
            count_shards(&ckpt)
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let mut victim = workers.remove(0);
    victim.kill().expect("SIGKILL the worker");
    victim.wait().expect("reap the victim");

    let status = coordinator.wait().expect("coordinator exits");
    for mut w in workers {
        let _ = w.wait();
    }
    assert!(status.success(), "coordinator failed after worker SIGKILL");
    assert_clsm_bitwise_equal(&reference, &distributed);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Coordinator crash + resume: a distributed sweep with spawned workers
/// is aborted (SIGKILL-style, via the `journal.commit` fail point) at
/// its 15th shard commit, then resumed distributed. The resumed run must
/// restore the journaled shards and produce a bitwise-identical `.clsm`.
///
/// Fail points only exist in debug builds.
#[cfg(debug_assertions)]
#[test]
fn distributed_coordinator_abort_and_resume_is_bitwise_identical() {
    use clado_core::load_sensitivities;

    let dir = std::env::temp_dir().join(format!("clado-cli-dist-abort-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let reference = dir.join("reference.clsm");
    let recovered = dir.join("recovered.clsm");
    let ckpt = dir.join("ckpt");

    let out = clado()
        .args(measure_args(&reference))
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Coordinator (with 2 spawned workers) dies at its 15th journal
    // commit — no unwinding, no flushing, exactly like a SIGKILL.
    let mut args = measure_args(&recovered);
    args.extend([
        "--workers".into(),
        "2".into(),
        "--checkpoint-dir".into(),
        ckpt.to_str().expect("utf8 path").to_string(),
        "--idle-timeout-secs".into(),
        "120".into(),
    ]);
    let out = clado()
        .args(&args)
        .env("CLADO_FAULTPOINTS", "journal.commit=abort,skip=14")
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "the armed abort must kill the sweep");
    assert!(!recovered.exists(), "no .clsm may appear from a dead sweep");
    assert_eq!(
        count_shards(&ckpt),
        14,
        "commits before the abort are durable"
    );

    // Resume distributed: journaled shards restore, the rest re-measure.
    args.push("--resume".into());
    let out = clado().args(&args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_clsm_bitwise_equal(&reference, &recovered);
    let b = load_sensitivities(&recovered).expect("recovered .clsm loads");
    assert!(b.stats.resumed > 0, "resumed run restored journaled probes");
    let a = load_sensitivities(&reference).expect("reference .clsm loads");
    assert_eq!(
        b.stats.resumed + b.stats.evaluations,
        a.stats.evaluations,
        "every probe was either resumed or re-measured exactly once"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_requires_connect() {
    let out = clado().arg("worker").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--connect"));
}

#[test]
fn sensitivity_resume_requires_checkpoint_dir() {
    let out = clado()
        .args([
            "sensitivity",
            "--model",
            "resnet20",
            "--out",
            "unused.clsm",
            "--resume",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--checkpoint-dir"),
        "error names the missing flag"
    );
}

#[test]
fn invalid_model_is_reported() {
    let out = clado()
        .args(["train", "--model", "alexnet"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown model"));
}
