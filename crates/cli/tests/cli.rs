//! End-to-end tests of the `clado` binary via subprocess.

use std::process::Command;

fn clado() -> Command {
    Command::new(env!("CARGO_BIN_EXE_clado"))
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = clado().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("sensitivity"));
}

#[test]
fn no_arguments_prints_usage() {
    let out = clado().output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("COMMANDS"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = clado().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn models_lists_the_zoo() {
    let out = clado().arg("models").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in [
        "resnet20",
        "resnet34",
        "resnet50",
        "mobilenetv3",
        "regnet",
        "vit",
    ] {
        assert!(stdout.contains(id), "missing {id} in:\n{stdout}");
    }
}

#[test]
fn missing_required_option_is_reported() {
    let out = clado().arg("train").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--model"));
}

#[test]
fn invalid_model_is_reported() {
    let out = clado()
        .args(["train", "--model", "alexnet"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown model"));
}
