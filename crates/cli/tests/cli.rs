//! End-to-end tests of the `clado` binary via subprocess.

use clado_telemetry::{parse_json, Json};
use std::process::Command;

fn clado() -> Command {
    Command::new(env!("CARGO_BIN_EXE_clado"))
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = clado().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("sensitivity"));
}

#[test]
fn no_arguments_prints_usage() {
    let out = clado().output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("COMMANDS"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = clado().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn models_lists_the_zoo() {
    let out = clado().arg("models").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in [
        "resnet20",
        "resnet34",
        "resnet50",
        "mobilenetv3",
        "regnet",
        "vit",
    ] {
        assert!(stdout.contains(id), "missing {id} in:\n{stdout}");
    }
}

#[test]
fn missing_required_option_is_reported() {
    let out = clado().arg("train").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--model"));
}

#[test]
fn conflicting_progress_switches_are_rejected() {
    let out = clado()
        .args(["models", "--progress", "--no-progress"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));
}

#[test]
fn measure_alias_is_quiet_and_writes_a_valid_manifest() {
    let dir = std::env::temp_dir().join(format!("clado-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let clsm = dir.join("sens.clsm");
    let manifest = dir.join("manifest.json");
    let out = clado()
        .args([
            "measure",
            "--model",
            "resnet20",
            "--out",
            clsm.to_str().expect("utf8 path"),
            "--set-size",
            "8",
            "--bits",
            "4,8",
            "--metrics-out",
            manifest.to_str().expect("utf8 path"),
            "--quiet",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // --quiet leaves exactly the final result line on stdout.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.trim_end().lines().count(), 1, "stdout:\n{stdout}");
    assert!(stdout.contains("measured Ĝ"), "stdout:\n{stdout}");

    let doc = std::fs::read_to_string(&manifest).expect("manifest written");
    let j = parse_json(&doc).expect("manifest parses as JSON");
    assert_eq!(
        j.get("schema").and_then(Json::as_str),
        Some("clado-telemetry-manifest/v1")
    );
    assert_eq!(j.get("command").and_then(Json::as_str), Some("sensitivity"));
    assert!(
        j.get("config")
            .and_then(|c| c.get("threads"))
            .and_then(Json::as_num)
            .is_some_and(|t| t >= 1.0),
        "config.threads missing"
    );
    let counter = |name: &str| {
        j.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_num)
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    assert_eq!(
        counter("measure.evaluations"),
        counter("measure.full_evals") + counter("measure.prefix_cache_hits"),
        "every evaluation is either a full eval or a cache hit"
    );
    let spans = j.get("spans").and_then(Json::as_arr).expect("span forest");
    assert!(
        spans
            .iter()
            .any(|n| n.get("name").and_then(Json::as_str) == Some("measure")),
        "span tree has a `measure` root"
    );
    let coverage = j
        .get("span_coverage")
        .and_then(Json::as_num)
        .expect("span_coverage");
    assert!(coverage >= 0.95, "span coverage {coverage} below 95%");
}

#[test]
fn invalid_model_is_reported() {
    let out = clado()
        .args(["train", "--model", "alexnet"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown model"));
}
