//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses: the `proptest!` macro, `Strategy` (with `prop_map` /
//! `prop_flat_map`), `Just`, numeric-range and tuple strategies,
//! `prop::collection::vec`, `ProptestConfig::with_cases`, and the
//! `prop_assert!` / `prop_assert_eq!` assertions.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation instead (see the workspace
//! `Cargo.toml`). Semantics: each `#[test]` runs its body for
//! `ProptestConfig::cases` deterministic pseudo-random inputs (seeded from
//! the test's name, so runs are reproducible). There is no shrinking — a
//! failing case reports its case index and assertion message.

/// Deterministic generator driving all strategy sampling (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator; the `proptest!` macro derives the seed from
    /// the test function's name so each test gets a distinct stream.
    pub fn seed_from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn index(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling range");
        self.next_u64() % bound
    }
}

/// Strategies: deterministic samplers for test inputs.
pub mod strategy {
    use super::TestRng;

    /// A source of values of type `Value` for `proptest!` inputs.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms every sampled value with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from every sampled value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range");
            let v = self.start + (rng.unit_f64() as f32) * (self.end - self.start);
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.index(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.index(span) as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Lengths accepted by [`vec`]: an exact size or a size range.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.index((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.index((hi - lo) as u64 + 1) as usize
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A strategy producing `Vec`s whose elements come from `elem` and
    /// whose length is drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }
}

/// Runner configuration and failure reporting.
pub mod test_runner {
    /// How many cases each `proptest!` test runs, and (ignored here)
    /// where regressions would be persisted.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of pseudo-random cases to execute per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed `prop_assert!` (or an early `Err` return) inside a case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Wraps an assertion message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror so `prop::collection::vec` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when it is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {} == {}",
            stringify!($a),
            stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: {} != {}",
            stringify!($a),
            stringify!($b)
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::seed_from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $pat = $crate::strategy::Strategy::sample(
                                &$strat, &mut __rng,
                            );
                        )*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), __case + 1, __cfg.cases, __e
                    );
                }
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_sample_in_bounds(
            x in -2.0f32..2.0,
            (a, b) in (1usize..=4, 0u64..10),
        ) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..=4).contains(&a));
            prop_assert!(b < 10);
        }

        #[test]
        fn map_flat_map_and_vec_compose(
            v in (1usize..=3).prop_flat_map(|n| prop::collection::vec(0i32..5, n..=n)),
            w in prop::collection::vec(-1.0f64..1.0, 4),
            k in Just(7usize).prop_map(|k| k + 1),
        ) {
            prop_assert!(!v.is_empty() && v.len() <= 3);
            prop_assert!(v.iter().all(|&e| (0..5).contains(&e)));
            prop_assert_eq!(w.len(), 4);
            prop_assert_eq!(k, 8);
        }

        #[test]
        fn early_ok_return_is_allowed(n in 0u8..10) {
            if n > 200 { return Ok(()); }
            prop_assert!(n < 10);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_test_name() {
        let mut a = crate::TestRng::seed_from_name("alpha");
        let mut b = crate::TestRng::seed_from_name("alpha");
        let mut c = crate::TestRng::seed_from_name("beta");
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }
}
