//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses: `Criterion::bench_function`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation instead (see the workspace
//! `Cargo.toml`). It performs a simple warmup + timed-sample loop and
//! prints mean/min wall times per benchmark — no statistical analysis,
//! HTML reports, or command-line filtering.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted for API parity; the
/// stub always runs setup once per timed iteration, outside the timer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Benchmark driver: times closures handed to [`Criterion::bench_function`].
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bench = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget: self.sample_size,
        };
        f(&mut bench);
        let n = bench.samples.len().max(1);
        let total: Duration = bench.samples.iter().sum();
        let mean = total / n as u32;
        let min = bench.samples.iter().min().copied().unwrap_or_default();
        println!(
            "bench {name:<40} mean {:>12.3?}  min {:>12.3?}  ({n} samples)",
            mean, min
        );
        self
    }
}

/// Passed to benchmark closures; records timed samples of the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Times `routine` for the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        for _ in 0..self.budget {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.budget {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` invoking each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_add(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| 1u64 + 1));
    }

    fn bench_batched(c: &mut Criterion) {
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    criterion_group! {
        name = group;
        config = Criterion::default().sample_size(3);
        targets = bench_add, bench_batched
    }

    #[test]
    fn group_runs_all_targets() {
        group();
    }

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            budget: 4,
        };
        b.iter(|| 2 * 2);
        assert_eq!(b.samples.len(), 4);
    }
}
