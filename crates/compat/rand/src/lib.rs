//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: a seedable deterministic generator (`rngs::StdRng`), the `Rng`
//! extension trait (`gen_range`, `gen_bool`), `SeedableRng::seed_from_u64`,
//! and the `distributions::Distribution` trait.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation instead (see the workspace
//! `Cargo.toml`, which points the `rand` dependency here). The generator is
//! xoshiro256++ seeded through SplitMix64 — not stream-compatible with the
//! real `rand::rngs::StdRng`, but every consumer in this repository only
//! relies on *determinism for a fixed seed*, which this provides on every
//! platform.

/// Low-level source of randomness: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Scalar types with a uniform sampler over `[lo, hi)` / `[lo, hi]`.
///
/// `SampleRange` is a single blanket impl over this trait (mirroring real
/// `rand`) so that integer-literal ranges like `5..40` stay unified with
/// the surrounding expression's type during inference.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[lo, hi)` when `inclusive` is false, `[lo, hi]` otherwise.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// Maps 64 random bits to a `f64` in `[0, 1)` (53-bit mantissa).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 64 random bits to a `f32` in `[0, 1)` (24-bit mantissa).
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        let v = lo + unit_f64(rng.next_u64()) * (hi - lo);
        // Guard against rounding up to the (usually excluded) endpoint.
        if v < hi {
            v
        } else {
            lo
        }
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: f32, hi: f32, _inclusive: bool, rng: &mut R) -> f32 {
        let v = lo + unit_f32(rng.next_u64()) * (hi - lo);
        if v < hi {
            v
        } else {
            lo
        }
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t, hi: $t, inclusive: bool, rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Seeded via SplitMix64 so that every `u64` seed yields a
    /// well-mixed, platform-independent stream.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// The `Distribution` trait, for samplers layered over any [`Rng`].
pub mod distributions {
    use super::Rng;

    /// Types that can produce values of `T` given a source of randomness.
    pub trait Distribution<T> {
        /// Draws one value from the distribution.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let d = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&d));
            let i = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&i));
            let u = rng.gen_range(5u64..40);
            assert!((5..40).contains(&u));
            let n = rng.gen_range(0usize..7);
            assert!(n < 7);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(5);
        let draws: Vec<i32> = (0..200).map(|_| rng.gen_range(-1i32..=1)).collect();
        assert!(draws.contains(&-1));
        assert!(draws.contains(&1));
    }
}
