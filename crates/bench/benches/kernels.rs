//! Criterion micro-benchmarks for the computational kernels behind the
//! experiments: conv/GEMM forward, a full sensitivity probe evaluation,
//! Jacobi eigendecomposition + PSD projection, and the IQP solve (the
//! "solved within seconds" claim of §7).

use clado_core::eval_loss;
use clado_models::{pretrained, ModelKind};
use clado_quant::{BitWidthSet, LayerSizes};
use clado_solver::{IqpProblem, SolverConfig, SymMatrix};
use clado_tensor::{conv2d_forward, init, matmul, Conv2dSpec};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_gemm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = init::normal([64, 128], 0.0, 1.0, &mut rng);
    let b = init::normal([128, 64], 0.0, 1.0, &mut rng);
    c.bench_function("gemm_64x128x64", |bench| bench.iter(|| matmul(&a, &b)));
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let spec = Conv2dSpec::new(8, 12, 3, 1, 1);
    let x = init::normal([8, 8, 16, 16], 0.0, 1.0, &mut rng);
    let w = init::normal(spec.weight_shape(), 0.0, 0.5, &mut rng);
    c.bench_function("conv2d_8x8x16x16_to_12", |bench| {
        bench.iter(|| conv2d_forward(&x, &w, None, &spec))
    });
}

fn bench_sensitivity_probe(c: &mut Criterion) {
    let p = pretrained(ModelKind::ResNet20);
    let set = p.data.train.sample_subset(32, 0);
    let mut network = p.network;
    c.bench_function("sensitivity_probe_resnet20_32samples", |bench| {
        bench.iter(|| eval_loss(&mut network, &set, 32))
    });
}

fn bench_eigen_psd(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let n = 57; // |B|·I for the ResNet-34 analogue
    let mut g = SymMatrix::zeros(n);
    for i in 0..n {
        for j in i..n {
            g.set(i, j, rng.gen_range(-0.01..0.01));
        }
    }
    c.bench_function("psd_project_57x57", |bench| {
        bench.iter_batched(|| g.clone(), |m| m.psd_project(), BatchSize::SmallInput)
    });
}

fn bench_iqp_solve(c: &mut Criterion) {
    // A PSD instance shaped like a 19-layer, |B|=3 MPQ problem.
    let mut rng = StdRng::seed_from_u64(3);
    let layers = 19usize;
    let n = 3 * layers;
    let cols = 10;
    let m: Vec<f64> = (0..n * cols).map(|_| rng.gen_range(-0.05..0.05)).collect();
    let mut g = SymMatrix::zeros(n);
    for i in 0..n {
        for j in i..n {
            let dot: f64 = (0..cols).map(|k| m[i * cols + k] * m[j * cols + k]).sum();
            g.set(i, j, dot);
        }
    }
    let params: Vec<usize> = (0..layers).map(|i| 200 + 37 * i).collect();
    let sizes = LayerSizes::new(params);
    let bits = BitWidthSet::standard();
    let mut costs = Vec::new();
    for i in 0..layers {
        for b in bits.iter() {
            costs.push(sizes.params(i) as u64 * b.bits() as u64);
        }
    }
    let budget = sizes.budget_from_avg_bits(3.0);
    let problem = IqpProblem::new(g, &vec![3; layers], costs, budget).expect("valid");
    c.bench_function("iqp_solve_19layers_psd", |bench| {
        bench.iter(|| problem.solve(&SolverConfig::default()).expect("feasible"))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_gemm, bench_conv, bench_sensitivity_probe, bench_eigen_psd, bench_iqp_solve
}
criterion_main!(kernels);
