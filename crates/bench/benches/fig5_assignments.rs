//! Figure 5 — bit-width assignments on the ResNet-50 analogue at the
//! 4-bit-UPQ budget, with layer index → name mapping (Appendix A style).
//!
//! ```text
//! cargo bench -p clado-bench --bench fig5_assignments
//! ```

use clado_bench::context_for;
use clado_core::Algorithm;
use clado_models::ModelKind;

fn main() {
    let kind = ModelKind::ResNet50;
    println!(
        "=== Figure 5: bit-width assignments, {} @ 4-bit-UPQ budget ===\n",
        kind.display_name()
    );
    let (mut ctx, _) = context_for(kind, 0);
    let budget = ctx.sizes.budget_from_avg_bits(4.0);

    let mut maps = Vec::new();
    for alg in [Algorithm::Hawq, Algorithm::Mpqco, Algorithm::Clado] {
        let (assignment, acc) = ctx.run(alg, budget).expect("feasible budget");
        maps.push((alg, assignment.bits.clone(), acc));
    }

    let layers: Vec<(usize, String, usize)> = ctx
        .network
        .quantizable_layers()
        .iter()
        .map(|l| (l.index, l.name.clone(), l.numel))
        .collect();

    println!(
        "{:>4}  {:<24} {:>8} {:>7} {:>7} {:>7}",
        "idx", "layer", "params", "HAWQ", "MPQCO", "CLADO"
    );
    for (idx, name, numel) in &layers {
        print!("{idx:>4}  {name:<24} {numel:>8}");
        for (_, bits, _) in &maps {
            print!(" {:>6}b", bits[*idx].bits());
        }
        println!();
    }
    println!();
    for (alg, _, acc) in &maps {
        println!("{:<6} PTQ accuracy {:.2}%", alg.label(), acc * 100.0);
    }
    println!("\n(expected shape: more bits to shallow/sensitive layers, fewer to deep");
    println!(" heavy layers; CLADO diverges from the separable baselines on specific");
    println!(" layers — the Fig. 5 observation.)");
}
