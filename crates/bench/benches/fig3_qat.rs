//! Figure 3 — MPQ results with QAT fine-tuning: QAT on top of CLADO's
//! assignments outperforms QAT on top of the baselines' assignments, in the
//! aggressive-compression regime near 3-bit UPQ.
//!
//! ```text
//! cargo bench -p clado-bench --bench fig3_qat
//! ```

use clado_bench::context_for;
use clado_core::{qat_finetune, Algorithm, QatConfig};
use clado_models::{pretrained, ModelKind};

fn main() {
    println!("=== Figure 3: QAT fine-tuning on top of each algorithm's assignment ===");
    for kind in [ModelKind::ResNet34, ModelKind::ResNet50] {
        // Training split comes from a fresh pretrained handle (the context
        // keeps only sensitivity/val splits).
        let p = pretrained(kind);
        let train_split = p.data.train.clone();
        let val_split = p.data.val.clone();
        drop(p);
        let (mut ctx, fp32) = context_for(kind, 0);
        println!("\n{} (FP32 {:.2}%)", kind.display_name(), fp32 * 100.0);
        println!(
            "  {:>8}  {:>22} {:>22} {:>22}",
            "avg bits", "HAWQ  (PTQ → QAT)", "MPQCO (PTQ → QAT)", "CLADO (PTQ → QAT)"
        );
        for avg in [2.6f64, 2.8, 3.0] {
            let budget = ctx.sizes.budget_from_avg_bits(avg);
            print!("  {avg:>8.1} ");
            for alg in [Algorithm::Hawq, Algorithm::Mpqco, Algorithm::Clado] {
                let (assignment, ptq) = ctx.run(alg, budget).expect("feasible budget");
                let master = ctx.network.snapshot_all();
                let report = qat_finetune(
                    &mut ctx.network,
                    &assignment.bits,
                    ctx.scheme,
                    &train_split,
                    &val_split,
                    &QatConfig::default(),
                );
                ctx.network.restore_all(&master);
                print!(
                    "   {:>7.2}% → {:>7.2}%",
                    ptq * 100.0,
                    report.accuracy_after * 100.0
                );
            }
            println!();
        }
    }
}
