//! Table 2 — approximation accuracy of the fast forward-only vᵀHv estimate
//! against the exact Hessian(-vector-product) evaluation, on selected
//! shallow and deep layers of the ResNet-20 analogue.
//!
//! The mini models operate at larger relative quantization perturbations
//! than full-scale ResNet-20, so the higher-order Taylor content of the
//! fast secant estimate is bigger than the paper's ~5–15 % deviations; the
//! preserved *shape* is (a) same sign and magnitude ordering across layers
//! — what the MPQ decisions consume — and (b) the large speed advantage of
//! the forward-only method.
//!
//! ```text
//! cargo bench -p clado-bench --bench table2_vhv
//! ```

use clado_core::{exact_vhv, fast_vhv};
use clado_models::{pretrained, ModelKind};
use clado_quant::{BitWidth, QuantScheme};
use std::time::Instant;

fn main() {
    println!("=== Table 2: vHv — fast forward-only method vs exact Hessian ===\n");
    let mut p = pretrained(ModelKind::ResNet20);
    // A large sensitivity set keeps the residual-gradient term g·v small,
    // matching the paper's converged-model assumption.
    let set = p.data.train.sample_subset(512.min(p.data.train.len()), 0);
    let scheme = QuantScheme::PerTensorSymmetric;
    let names: Vec<String> = p
        .network
        .quantizable_layers()
        .iter()
        .map(|l| l.name.clone())
        .collect();

    // Shallow, middle, deep convs plus the classifier, at 2 and 4 bits —
    // the layer/bit mix of the paper's Table 2.
    let picks: Vec<(usize, u8)> = vec![
        (0, 2),
        (0, 4),
        (names.len() / 3, 2),
        (names.len() / 2, 2),
        (names.len() / 2, 4),
        (2 * names.len() / 3, 2),
        (names.len() - 1, 2),
        (names.len() - 1, 4),
    ];

    println!(
        "{:<22} {:>5} {:>14} {:>14} {:>10}",
        "layer", "bits", "vHv (exact)", "vHv (ours)", "ratio"
    );
    let mut exact_time = 0.0f64;
    let mut fast_time = 0.0f64;
    let mut exact_vals = Vec::new();
    let mut fast_vals = Vec::new();
    for (layer, bits) in picks {
        let t0 = Instant::now();
        let exact = exact_vhv(&mut p.network, &set, layer, BitWidth::of(bits), scheme, 64);
        exact_time += t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let fast = fast_vhv(&mut p.network, &set, layer, BitWidth::of(bits), scheme, 64);
        fast_time += t1.elapsed().as_secs_f64();
        println!(
            "{:<22} {:>4}b {:>14.5} {:>14.5} {:>10.2}",
            names[layer],
            bits,
            exact,
            fast,
            fast / exact.abs().max(1e-9)
        );
        exact_vals.push(exact);
        fast_vals.push(fast);
    }

    // Rank agreement between the two estimators (what bit-assignment
    // decisions actually consume).
    let rank = |v: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).expect("finite"));
        let mut r = vec![0usize; v.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos;
        }
        r
    };
    let ra = rank(&exact_vals);
    let rb = rank(&fast_vals);
    let n = ra.len() as f64;
    let d2: f64 = ra
        .iter()
        .zip(&rb)
        .map(|(&a, &b)| ((a as f64) - (b as f64)).powi(2))
        .sum();
    let spearman = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
    println!("\nSpearman rank correlation (exact vs ours): {spearman:.3}");
    println!(
        "exact (HVP) total {exact_time:.2}s vs fast (forward-only) total {fast_time:.2}s → {:.1}× speedup",
        exact_time / fast_time.max(1e-9)
    );
    println!("(paper: exact method ≈7× slower and needs more CUDA memory.)");
}
