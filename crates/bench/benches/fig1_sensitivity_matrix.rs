//! Figure 1 — sensitivity matrices of ResNet models and the pair-selection
//! suboptimality of ignoring off-diagonal (cross-layer) terms.
//!
//! Prints the 2-bit sensitivity matrix of the ResNet-34 analogue and the
//! 4-bit matrix of the ResNet-50 analogue over a handful of layers, then
//! compares the best layer *pair* chosen with vs without cross terms —
//! exactly the worked example of the paper's §3.
//!
//! ```text
//! cargo bench -p clado-bench --bench fig1_sensitivity_matrix
//! ```

use clado_bench::sens_size;
use clado_core::{measure_sensitivities, SensitivityOptions};
use clado_models::{pretrained, ModelKind};
use clado_quant::BitWidthSet;

fn run(kind: ModelKind, bit: u8) {
    let mut p = pretrained(kind);
    let sens_set = p.data.train.sample_subset(sens_size(), 0);
    let bits = BitWidthSet::new(&[bit]);
    let sm = measure_sensitivities(
        &mut p.network,
        &sens_set,
        &bits,
        &SensitivityOptions::default(),
    )
    .expect("sensitivity measurement");
    let names: Vec<String> = p
        .network
        .quantizable_layers()
        .iter()
        .map(|l| l.name.clone())
        .collect();
    let n = names.len();

    // Pick the 6 most sensitive layers for display (the paper shows a
    // hand-picked submatrix; we show the most informative one).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        sm.layer_sensitivity(b, 0)
            .partial_cmp(&sm.layer_sensitivity(a, 0))
            .expect("finite sensitivities")
    });
    let show: Vec<usize> = {
        let mut s = order[..6.min(n)].to_vec();
        s.sort_unstable();
        s
    };

    println!(
        "\n{} — {bit}-bit sensitivity submatrix (Ω × 1000):",
        kind.display_name()
    );
    print!("  {:>22}", "");
    for &j in &show {
        print!(" {:>7}", j);
    }
    println!();
    for &i in &show {
        print!("  {:>22}", names[i]);
        for &j in &show {
            let v = if i == j {
                sm.layer_sensitivity(i, 0)
            } else {
                sm.cross_sensitivity(i, 0, j, 0)
            };
            print!(" {:>7.2}", v * 1000.0);
        }
        println!();
    }

    // Pair-selection experiment over ALL layers.
    let mut best_diag = (0usize, 1usize, f64::INFINITY);
    let mut best_full = (0usize, 1usize, f64::INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = sm.layer_sensitivity(i, 0) + sm.layer_sensitivity(j, 0);
            let f = d + 2.0 * sm.cross_sensitivity(i, 0, j, 0);
            if d < best_diag.2 {
                best_diag = (i, j, d);
            }
            if f < best_full.2 {
                best_full = (i, j, f);
            }
        }
    }
    let diag_true = best_diag.2 + 2.0 * sm.cross_sensitivity(best_diag.0, 0, best_diag.1, 0);
    println!(
        "  diagonal-only pick: ({}, {})  predicted {:.4}, true {:.4}",
        names[best_diag.0], names[best_diag.1], best_diag.2, diag_true
    );
    println!(
        "  cross-aware pick  : ({}, {})  true {:.4}{}",
        names[best_full.0],
        names[best_full.1],
        best_full.2,
        if (best_full.0, best_full.1) != (best_diag.0, best_diag.1) {
            "   ← different pair: ignoring cross terms is suboptimal"
        } else {
            ""
        }
    );
}

fn main() {
    println!("=== Figure 1: cross-layer sensitivity matrices ===");
    run(ModelKind::ResNet34, 2);
    run(ModelKind::ResNet50, 4);
}
