//! Extension artifact — search-based vs sensitivity-based MPQ (§2's two
//! method classes): quality per model evaluation, and what happens when the
//! constraint changes.
//!
//! The paper argues sensitivity-based methods win on (a) measurement reuse
//! across constraints and (b) total cost; search-based methods pay a fresh
//! search per constraint. This bench quantifies both at mini scale.
//!
//! ```text
//! cargo bench -p clado-bench --bench search_vs_sensitivity
//! ```

use clado_bench::{sens_size, table1_config};
use clado_core::{
    annealing_search, quantized_accuracy, Algorithm, ExperimentContext, SearchOptions,
};
use clado_models::{pretrained, ModelKind};
use clado_quant::LayerSizes;
use std::time::Instant;

fn main() {
    let kind = ModelKind::ResNet34;
    println!(
        "=== Search-based vs sensitivity-based MPQ ({}) ===\n",
        kind.display_name()
    );
    let (bits, scheme) = table1_config(kind);
    let p = pretrained(kind);
    let val = p.data.val.clone();
    let sens = p.data.train.sample_subset(sens_size(), 0);
    let mut ctx =
        ExperimentContext::new(p.network, sens.clone(), val.clone(), bits.clone(), scheme);

    // CLADO: one measurement, then milliseconds per new constraint.
    let t0 = Instant::now();
    ctx.clado_matrix();
    let measure_secs = t0.elapsed().as_secs_f64();
    let clado_evals = ctx.clado_matrix().stats.evaluations;

    println!(
        "{:>8} {:>22} {:>34}",
        "avg bits", "CLADO (acc / solve s)", "annealing (acc / evals / seconds)"
    );
    for avg in [2.6f64, 3.0, 3.4] {
        let budget = ctx.sizes.budget_from_avg_bits(avg);
        let t1 = Instant::now();
        let (_, clado_acc) = ctx.run(Algorithm::Clado, budget).expect("feasible");
        let solve_secs = t1.elapsed().as_secs_f64();

        // Annealing: a fresh search per constraint, matched to CLADO's
        // evaluation budget.
        let t2 = Instant::now();
        let sizes = LayerSizes::new(ctx.network.layer_param_counts());
        let report = annealing_search(
            &mut ctx.network,
            &sens,
            &bits,
            &sizes,
            budget,
            &SearchOptions {
                evaluations: clado_evals,
                scheme,
                seed: 7,
                ..Default::default()
            },
        );
        let search_secs = t2.elapsed().as_secs_f64();
        let search_acc =
            quantized_accuracy(&mut ctx.network, &report.assignment.bits, scheme, &val);

        println!(
            "{avg:>8.1}     {:>6.2}% / {:>6.2}s          {:>6.2}% / {:>6} / {:>7.1}s",
            clado_acc * 100.0,
            solve_secs,
            search_acc * 100.0,
            report.evaluations,
            search_secs
        );
    }
    println!(
        "\nCLADO measurement: {clado_evals} evaluations, {measure_secs:.1}s — paid ONCE and \
         reused across all budgets above.\nAnnealing pays its full evaluation budget per \
         constraint (the paper's 'new search from scratch' point)."
    );
}
