//! Figure 4 — MPQ performance vs sensitivity-set sample size: median and
//! quartiles over `CLADO_SETS` randomly sampled sensitivity sets (the paper
//! uses 24 sets, sizes 256–4096; defaults here are 8 sets, sizes 8–128,
//! scaled to the mini models).
//!
//! ```text
//! CLADO_SETS=8 cargo bench -p clado-bench --bench fig4_sample_size
//! ```

use clado_bench::{num_sets, table1_config};
use clado_core::{quartiles, Algorithm, ExperimentContext};
use clado_models::{pretrained, ModelKind};

fn main() {
    let kind = ModelKind::ResNet20;
    let sets = num_sets().min(6);
    println!(
        "=== Figure 4: accuracy vs sensitivity-set size ({} random sets, {}) ===",
        sets,
        kind.display_name()
    );
    let p = pretrained(kind);
    println!("FP32 accuracy {:.2}%\n", p.val_accuracy * 100.0);
    let (bits, scheme) = table1_config(kind);
    let algorithms = [Algorithm::Hawq, Algorithm::Mpqco, Algorithm::Clado];

    println!(
        "{:>6} {:>28} {:>28} {:>28}",
        "size", "HAWQ (q25/med/q75)", "MPQCO (q25/med/q75)", "CLADO (q25/med/q75)"
    );
    for size in [8usize, 16, 32, 64, 128] {
        let mut accs: Vec<Vec<f64>> = vec![Vec::new(); algorithms.len()];
        for set_id in 0..sets {
            let pr = pretrained(kind);
            let sens = pr.data.train.sample_subset(size, set_id as u64 + 1);
            let mut ctx =
                ExperimentContext::new(pr.network, sens, pr.data.val.clone(), bits.clone(), scheme);
            let budget = ctx.sizes.budget_from_avg_bits(3.0);
            for (k, &alg) in algorithms.iter().enumerate() {
                let (_, acc) = ctx.run(alg, budget).expect("feasible budget");
                accs[k].push(acc * 100.0);
            }
        }
        print!("{size:>6}");
        for a in &accs {
            let q = quartiles(a);
            print!("      {:>6.2} / {:>6.2} / {:>6.2}", q.q25, q.median, q.q75);
        }
        println!();
    }
    println!("\n(expected shape: CLADO's lower quartile approaches or exceeds the");
    println!(" baselines' upper quartiles as the sample size grows — Fig. 4.)");
}
