//! Measurement-engine benchmark — serial/full-forward vs parallel/
//! prefix-cached sensitivity measurement on a ResNet-style model.
//!
//! Runs Algorithm 1 three times on the same (untrained) ResNet-20 analogue
//! and sensitivity set — (a) one thread with the prefix cache disabled
//! (the pre-engine baseline), (b) one thread with the cache, (c) all cores
//! with the cache — checks the three matrices are bitwise identical, and
//! records the timings to `BENCH_sensitivity.json` at the repo root.
//!
//! ```text
//! cargo bench -p clado-bench --bench sensitivity_engine
//! ```

use clado_core::{measure_sensitivities, SensitivityMatrix, SensitivityOptions};
use clado_models::{build_resnet, ResNetConfig, SynthVision, SynthVisionConfig};
use clado_quant::BitWidthSet;
use std::path::Path;

fn measure(label: &str, threads: usize, use_prefix_cache: bool) -> SensitivityMatrix {
    let mut network = build_resnet(&ResNetConfig::resnet20_mini(10, 41));
    let data = SynthVision::generate(SynthVisionConfig {
        train: 128,
        val: 32,
        ..Default::default()
    });
    let set = data.train.subset(&(0..96).collect::<Vec<_>>());
    let sm = measure_sensitivities(
        &mut network,
        &set,
        &BitWidthSet::new(&[2, 8]),
        &SensitivityOptions {
            threads,
            use_prefix_cache,
            ..Default::default()
        },
    );
    println!(
        "  {label:<22} {:>7.2}s   {} threads, {} full + {} suffix evals",
        sm.stats.seconds, sm.stats.threads_used, sm.stats.full_evals, sm.stats.prefix_cache_hits
    );
    sm
}

fn assert_bitwise_equal(a: &SensitivityMatrix, b: &SensitivityMatrix, label: &str) {
    assert_eq!(a.base_loss.to_bits(), b.base_loss.to_bits(), "{label}");
    let dim = a.matrix().dim();
    for u in 0..dim {
        for v in u..dim {
            assert_eq!(
                a.matrix().get(u, v).to_bits(),
                b.matrix().get(u, v).to_bits(),
                "{label}: entry ({u},{v})"
            );
        }
    }
}

fn main() {
    println!("=== Sensitivity-measurement engine: serial/full vs parallel/prefix ===");
    let naive = measure("serial, full forward", 1, false);
    let cached = measure("serial, prefix cache", 1, true);
    let parallel = measure("all cores, prefix cache", 0, true);
    assert_bitwise_equal(&naive, &cached, "prefix cache changed the matrix");
    assert_bitwise_equal(&naive, &parallel, "parallelism changed the matrix");

    let cache_speedup = naive.stats.seconds / cached.stats.seconds;
    let total_speedup = naive.stats.seconds / parallel.stats.seconds;
    println!("  prefix-cache speedup  {cache_speedup:>6.2}×");
    println!("  combined speedup      {total_speedup:>6.2}×   (matrices bitwise identical)");

    let json = format!(
        "{{\n  \"model\": \"resnet20-mini\",\n  \"evaluations\": {},\n  \
         \"serial_full_seconds\": {:.3},\n  \"serial_prefix_seconds\": {:.3},\n  \
         \"parallel_prefix_seconds\": {:.3},\n  \"threads_used\": {},\n  \
         \"prefix_cache_hits\": {},\n  \"full_evals\": {},\n  \
         \"prefix_cache_speedup\": {:.2},\n  \"combined_speedup\": {:.2},\n  \
         \"bitwise_identical\": true\n}}\n",
        naive.stats.evaluations,
        naive.stats.seconds,
        cached.stats.seconds,
        parallel.stats.seconds,
        parallel.stats.threads_used,
        parallel.stats.prefix_cache_hits,
        parallel.stats.full_evals,
        cache_speedup,
        total_speedup,
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sensitivity.json");
    std::fs::write(&out, json).expect("write BENCH_sensitivity.json");
    println!("  recorded → {}", out.display());
}
