//! Measurement-engine benchmark — serial/full-forward vs parallel/
//! prefix-cached sensitivity measurement on a ResNet-style model.
//!
//! Runs Algorithm 1 six times on the same (untrained) ResNet-20 analogue
//! and sensitivity set — (a) one thread with the prefix cache disabled
//! (the pre-engine baseline), (b) one thread with the cache, (c) all cores
//! with the cache, (d) configuration (b) again with telemetry enabled,
//! (e) configuration (b) with probe journaling to a checkpoint directory,
//! (f) a distributed sweep: a loopback-TCP coordinator sharding the probe
//! grid across three worker threads — checks all six matrices are bitwise
//! identical, and records the timings (including the telemetry overhead
//! ratio (d)/(b), the fault-free checkpointing overhead ratio (e)/(b),
//! and `distributed.speedup_ratio` (b)/(f)) to `BENCH_sensitivity.json`
//! at the repo root, as a `clado-telemetry-manifest/v1` document.
//!
//! The overhead ratios compare configurations whose true difference is a
//! few percent, far below single-shot wall-time noise on a busy machine,
//! so configurations (b), (d), and (e) each run `REPS` times and the
//! ratios use the minimum wall time of each.
//!
//! ```text
//! cargo bench -p clado-bench --bench sensitivity_engine
//! ```

use clado_core::{measure_sensitivities, SensitivityMatrix, SensitivityOptions, ShardContext};
use clado_dist::{
    run_worker, scheme_to_u8, Coordinator, CoordinatorOptions, JobSpec, WorkerOptions,
};
use clado_models::{build_resnet, DataSplit, ResNetConfig, SynthVision, SynthVisionConfig};
use clado_nn::Network;
use clado_quant::{BitWidthSet, QuantScheme};
use clado_telemetry::Telemetry;
use std::path::Path;

/// Repetitions for the noise-sensitive overhead configurations.
const REPS: usize = 3;

/// Runs a configuration `REPS` times; returns the first matrix (they are
/// all bitwise identical) and the minimum wall time across repetitions.
fn best_of(mut run: impl FnMut() -> SensitivityMatrix) -> (SensitivityMatrix, f64) {
    let mut first: Option<SensitivityMatrix> = None;
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let sm = run();
        best = best.min(sm.stats.seconds);
        first.get_or_insert(sm);
    }
    (first.expect("REPS >= 1"), best)
}

fn measure(
    label: &str,
    threads: usize,
    use_prefix_cache: bool,
    telemetry: Telemetry,
    checkpoint_dir: Option<std::path::PathBuf>,
) -> SensitivityMatrix {
    let mut network = build_resnet(&ResNetConfig::resnet20_mini(10, 41));
    let data = SynthVision::generate(SynthVisionConfig {
        train: 128,
        val: 32,
        ..Default::default()
    });
    let set = data.train.subset(&(0..96).collect::<Vec<_>>());
    let sm = measure_sensitivities(
        &mut network,
        &set,
        &BitWidthSet::new(&[2, 8]),
        &SensitivityOptions {
            threads,
            use_prefix_cache,
            telemetry,
            checkpoint_dir,
            ..Default::default()
        },
    )
    .expect("sensitivity measurement");
    println!(
        "  {label:<28} {:>7.2}s   {} threads, {} full + {} suffix evals",
        sm.stats.seconds, sm.stats.threads_used, sm.stats.full_evals, sm.stats.prefix_cache_hits
    );
    sm
}

/// The same model + sensitivity set the serial configurations use;
/// distributed workers rebuild it independently from the job spec.
fn bench_setup() -> (Network, DataSplit) {
    let network = build_resnet(&ResNetConfig::resnet20_mini(10, 41));
    let data = SynthVision::generate(SynthVisionConfig {
        train: 128,
        val: 32,
        ..Default::default()
    });
    let set = data.train.subset(&(0..96).collect::<Vec<_>>());
    (network, set)
}

/// Configuration (f): a loopback-TCP coordinator sharding the sweep
/// across `workers` in-process worker threads. Returns the assembled
/// matrix and its wall time.
fn measure_distributed(workers: usize) -> (SensitivityMatrix, f64) {
    let (network, set) = bench_setup();
    let bits = BitWidthSet::new(&[2, 8]);
    let scheme = QuantScheme::PerTensorSymmetric;
    let batch_size = SensitivityOptions::default().batch_size;
    let ctx = ShardContext::new(&network, set.len(), &bits, scheme, batch_size, true);
    let job = JobSpec {
        model: "resnet20-mini".into(),
        set_size: set.len() as u64,
        set_seed: 0,
        batch_size: batch_size as u64,
        bits: bits.iter().map(|b| b.bits()).collect(),
        scheme: scheme_to_u8(scheme),
        use_prefix_cache: true,
        fingerprint: ctx.fingerprint(),
    };
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        ctx,
        job,
        CoordinatorOptions {
            idle_timeout: Some(std::time::Duration::from_secs(120)),
            ..Default::default()
        },
    )
    .expect("bind coordinator");
    let addr = coordinator.local_addr().to_string();
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                run_worker(&addr, |_job| Ok(bench_setup()), &WorkerOptions::default())
            })
        })
        .collect();
    let start = std::time::Instant::now();
    let outcome = coordinator.run().expect("distributed sweep");
    let secs = start.elapsed().as_secs_f64();
    for h in handles {
        h.join().expect("worker thread").expect("worker run");
    }
    println!(
        "  {:<28} {secs:>7.2}s   {} workers, {} evictions, straggler {:.2}s",
        "distributed, 3 workers",
        outcome.workers.len(),
        outcome.evictions,
        outcome.straggler_seconds
    );
    (outcome.matrix, secs)
}

fn assert_bitwise_equal(a: &SensitivityMatrix, b: &SensitivityMatrix, label: &str) {
    assert_eq!(a.base_loss.to_bits(), b.base_loss.to_bits(), "{label}");
    let dim = a.matrix().dim();
    for u in 0..dim {
        for v in u..dim {
            assert_eq!(
                a.matrix().get(u, v).to_bits(),
                b.matrix().get(u, v).to_bits(),
                "{label}: entry ({u},{v})"
            );
        }
    }
}

fn main() {
    println!("=== Sensitivity-measurement engine: serial/full vs parallel/prefix ===");
    let naive = measure(
        "serial, full forward",
        1,
        false,
        Telemetry::disabled(),
        None,
    );
    let (cached, cached_secs) =
        best_of(|| measure("serial, prefix cache", 1, true, Telemetry::disabled(), None));
    let parallel = measure(
        "all cores, prefix cache",
        0,
        true,
        Telemetry::disabled(),
        None,
    );
    let registry = Telemetry::new();
    let (timed, timed_secs) = best_of(|| {
        measure(
            "serial, prefix + telemetry",
            1,
            true,
            registry.clone(),
            None,
        )
    });
    let ckpt_dir = std::env::temp_dir().join(format!("clado-bench-ckpt-{}", std::process::id()));
    let (journaled, journaled_secs) = best_of(|| {
        let _ = std::fs::remove_dir_all(&ckpt_dir);
        measure(
            "serial, prefix + journal",
            1,
            true,
            Telemetry::disabled(),
            Some(ckpt_dir.clone()),
        )
    });
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let (distributed, distributed_secs) = measure_distributed(3);
    assert_bitwise_equal(&naive, &cached, "prefix cache changed the matrix");
    assert_bitwise_equal(&naive, &parallel, "parallelism changed the matrix");
    assert_bitwise_equal(&naive, &timed, "telemetry changed the matrix");
    assert_bitwise_equal(&naive, &journaled, "journaling changed the matrix");
    assert_bitwise_equal(&naive, &distributed, "distribution changed the matrix");
    assert_eq!(
        journaled.stats.resumed + journaled.stats.retried + journaled.stats.quarantined,
        0,
        "a fault-free checkpointed run must not report recovery activity"
    );

    let cache_speedup = naive.stats.seconds / cached_secs;
    let total_speedup = naive.stats.seconds / parallel.stats.seconds;
    let overhead_ratio = timed_secs / cached_secs;
    let checkpoint_overhead = journaled_secs / cached_secs;
    let distributed_speedup = cached_secs / distributed_secs;
    println!("  prefix-cache speedup  {cache_speedup:>6.2}×");
    println!("  combined speedup      {total_speedup:>6.2}×   (matrices bitwise identical)");
    println!("  telemetry overhead    {overhead_ratio:>6.3}×   (enabled / disabled wall time)");
    println!("  checkpoint overhead   {checkpoint_overhead:>6.3}×   (journaled / plain wall time)");
    println!("  distributed speedup   {distributed_speedup:>6.2}×   (serial-prefix / 3-worker wall time)");

    // The bench record *is* a telemetry manifest: timings land in gauges,
    // the instrumented run's counters and span tree come along for free.
    registry.set_gauge("bench.serial_full_seconds", naive.stats.seconds);
    registry.set_gauge("bench.serial_prefix_seconds", cached_secs);
    registry.set_gauge("bench.parallel_prefix_seconds", parallel.stats.seconds);
    registry.set_gauge("bench.prefix_cache_speedup", cache_speedup);
    registry.set_gauge("bench.combined_speedup", total_speedup);
    registry.set_gauge("telemetry.overhead_ratio", overhead_ratio);
    registry.set_gauge("bench.serial_journal_seconds", journaled_secs);
    registry.set_gauge("bench.checkpoint_overhead_ratio", checkpoint_overhead);
    registry.set_gauge("bench.distributed_seconds", distributed_secs);
    registry.set_gauge("distributed.speedup_ratio", distributed_speedup);
    let json = registry.manifest(
        "bench.sensitivity_engine",
        &[
            ("model", "resnet20-mini".into()),
            ("threads", parallel.stats.threads_used.into()),
            ("evaluations", naive.stats.evaluations.into()),
            ("bitwise_identical", true.into()),
            ("resumed", journaled.stats.resumed.into()),
            ("retried", journaled.stats.retried.into()),
            ("quarantined", journaled.stats.quarantined.into()),
        ],
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sensitivity.json");
    std::fs::write(&out, json).expect("write BENCH_sensitivity.json");
    println!("  recorded → {}", out.display());
}
