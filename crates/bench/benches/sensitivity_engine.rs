//! Measurement-engine benchmark — serial/full-forward vs parallel/
//! prefix-cached sensitivity measurement on a ResNet-style model.
//!
//! Runs Algorithm 1 six times on the same (untrained) ResNet-20 analogue
//! and sensitivity set — (a) one thread with the prefix cache disabled
//! (the pre-engine baseline), (b) one thread with the cache, (c) all cores
//! with the cache, (d) configuration (b) again with telemetry enabled,
//! (e) configuration (b) with probe journaling to a checkpoint directory,
//! (f) a distributed sweep: a loopback-TCP coordinator sharding the probe
//! grid across three worker threads — checks all six matrices are bitwise
//! identical, and records the timings (including the telemetry overhead
//! ratio (d)/(b), the fault-free checkpointing overhead ratio (e)/(b),
//! and `distributed.speedup_ratio` (b)/(f) with its
//! `distributed.startup_seconds`/`distributed.steady_seconds` split —
//! how much of (f) is handshake + model rebuild rather than shard
//! service) to `BENCH_sensitivity.json`
//! at the repo root, as a `clado-telemetry-manifest/v1` document. A
//! solver phase times a dense cross-term IQP with and without an armed
//! deadline and records `solver.anytime_overhead_ratio` — the cost of the
//! cooperative cancellation checks when nothing fires.
//!
//! Three kernel phases follow: sustained single-threaded GEMM throughput
//! of the dispatched kernel (`bench.gemm_gflops`), the measured
//! quantized-execution ratio curve — float forward time over integer
//! forward time at uniform 8/4/2-bit assignments, against both the
//! dispatched SIMD float baseline and a pinned scalar float baseline
//! (`bench.int_speedup.b{8,4,2}.vs_simd_float` / `.vs_scalar_float`,
//! with the 8-bit SIMD-relative point doubling as
//! `bench.int8_speedup_ratio`; any ratio below 1 is called out as a
//! slowdown in the summary) — and an eq. (11) IQP solve on the measured
//! matrix whose bit choices land in the manifest (`bench.assignment_hash`
//! and the `bit_assignment` config entry), so scalar and SIMD runs can be
//! checked for identical assignments. The manifest `config` also records
//! the dispatched kernel backend and detected CPU features. Every phase
//! runs under a root telemetry span so the manifest's `span_coverage`
//! reflects the whole benchmark wall time.
//!
//! The overhead ratios compare configurations whose true difference is a
//! few percent, far below single-shot wall-time noise on a busy machine,
//! so configurations (b), (d), and (e) each run `REPS` times and the
//! ratios use the minimum wall time of each.
//!
//! ```text
//! cargo bench -p clado-bench --bench sensitivity_engine
//! ```

use clado_core::{
    assign_bits, eval_loss, measure_sensitivities, AssignOptions, SensitivityMatrix,
    SensitivityOptions, ShardContext,
};
use clado_dist::{
    run_worker, scheme_to_u8, Coordinator, CoordinatorOptions, JobSpec, WorkerOptions,
};
use clado_estim::{
    assignment_regret, error_vs_exact, estimator_for, EstimatorKind, EstimatorOptions,
};
use clado_models::{build_resnet, DataSplit, ResNetConfig, SynthVision, SynthVisionConfig};
use clado_nn::Network;
use clado_quant::{BitWidth, BitWidthSet, LayerSizes, QuantScheme};
use clado_telemetry::Telemetry;
use std::path::Path;

/// Repetitions for the noise-sensitive overhead configurations.
const REPS: usize = 3;

/// Runs a configuration `REPS` times; returns the first matrix (they are
/// all bitwise identical) and the minimum wall time across repetitions.
fn best_of(mut run: impl FnMut() -> SensitivityMatrix) -> (SensitivityMatrix, f64) {
    let mut first: Option<SensitivityMatrix> = None;
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let sm = run();
        best = best.min(sm.stats.seconds);
        first.get_or_insert(sm);
    }
    (first.expect("REPS >= 1"), best)
}

fn measure(
    label: &str,
    threads: usize,
    use_prefix_cache: bool,
    telemetry: Telemetry,
    checkpoint_dir: Option<std::path::PathBuf>,
) -> SensitivityMatrix {
    let mut network = build_resnet(&ResNetConfig::resnet20_mini(10, 41));
    // Per-stage `forward.<stage>` spans attribute the kernel hot path in
    // the manifest (the handle is disabled for every configuration but
    // the telemetry one, so the other timings stay span-free).
    network.set_telemetry(telemetry.clone());
    let data = SynthVision::generate(SynthVisionConfig {
        train: 128,
        val: 32,
        ..Default::default()
    });
    let set = data.train.subset(&(0..96).collect::<Vec<_>>());
    let sm = measure_sensitivities(
        &mut network,
        &set,
        &BitWidthSet::new(&[2, 8]),
        &SensitivityOptions {
            threads,
            use_prefix_cache,
            telemetry,
            checkpoint_dir,
            ..Default::default()
        },
    )
    .expect("sensitivity measurement");
    println!(
        "  {label:<28} {:>7.2}s   {} threads, {} full + {} suffix evals",
        sm.stats.seconds, sm.stats.threads_used, sm.stats.full_evals, sm.stats.prefix_cache_hits
    );
    sm
}

/// The same model + sensitivity set the serial configurations use;
/// distributed workers rebuild it independently from the job spec.
fn bench_setup() -> (Network, DataSplit) {
    let network = build_resnet(&ResNetConfig::resnet20_mini(10, 41));
    let data = SynthVision::generate(SynthVisionConfig {
        train: 128,
        val: 32,
        ..Default::default()
    });
    let set = data.train.subset(&(0..96).collect::<Vec<_>>());
    (network, set)
}

/// Configuration (f): a loopback-TCP coordinator sharding the sweep
/// across `workers` in-process worker threads. Returns the assembled
/// matrix, its wall time, and the coordinator's startup/steady-state
/// split (time to first lease grant vs shard-service time after it) —
/// the split explains how much of `distributed.speedup_ratio` is fixed
/// setup cost rather than per-shard overhead.
fn measure_distributed(workers: usize) -> (SensitivityMatrix, f64, f64, f64) {
    let (network, set) = bench_setup();
    let bits = BitWidthSet::new(&[2, 8]);
    let scheme = QuantScheme::PerTensorSymmetric;
    let batch_size = SensitivityOptions::default().batch_size;
    let ctx = ShardContext::new(&network, set.len(), &bits, scheme, batch_size, true);
    let job = JobSpec {
        model: "resnet20-mini".into(),
        set_size: set.len() as u64,
        set_seed: 0,
        batch_size: batch_size as u64,
        bits: bits.iter().map(|b| b.bits()).collect(),
        scheme: scheme_to_u8(scheme),
        use_prefix_cache: true,
        fingerprint: ctx.fingerprint(),
        trace_id: 0,
        estimator: 0,
        probe_budget: 0,
        estimator_seed: 0,
    };
    let dist_registry = Telemetry::new();
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        ctx,
        job,
        CoordinatorOptions {
            idle_timeout: Some(std::time::Duration::from_secs(120)),
            telemetry: dist_registry.clone(),
            ..Default::default()
        },
    )
    .expect("bind coordinator");
    let addr = coordinator.local_addr().to_string();
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                run_worker(&addr, |_job| Ok(bench_setup()), &WorkerOptions::default())
            })
        })
        .collect();
    let start = std::time::Instant::now();
    let outcome = coordinator.run().expect("distributed sweep");
    let secs = start.elapsed().as_secs_f64();
    for h in handles {
        h.join().expect("worker thread").expect("worker run");
    }
    let startup = dist_registry
        .gauge_value("dist.startup_seconds")
        .unwrap_or(0.0);
    let steady = dist_registry
        .gauge_value("dist.steady_seconds")
        .unwrap_or(0.0);
    println!(
        "  {:<28} {secs:>7.2}s   {} workers, {} evictions, straggler {:.2}s, \
         startup {startup:.2}s + steady {steady:.2}s",
        "distributed, 3 workers",
        outcome.workers.len(),
        outcome.evictions,
        outcome.straggler_seconds
    );
    (outcome.matrix, secs, startup, steady)
}

/// Anytime-solver overhead: the cooperative deadline/cancel checks ride on
/// every branch-and-bound node, DP cell, and exhaustive enumeration step.
/// This phase solves the same planted dense cross-term IQP with the default
/// config and with an armed-but-unreachable deadline, in interleaved
/// rounds, and returns min(armed)/min(plain) — the price of anytime
/// solving when nothing fires (expected under 1.02×).
fn solver_anytime_overhead() -> f64 {
    use clado_solver::{IqpProblem, SolverConfig, SymMatrix};
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use std::time::{Duration, Instant};

    let layers = 12;
    let choices = 3;
    let n = layers * choices;
    let mut rng = StdRng::seed_from_u64(41);
    let mut g = SymMatrix::zeros(n);
    for i in 0..n {
        for j in i..n {
            let v = rng.gen_range(-1.0f64..1.0);
            g.set(i, j, if i == j { v.abs() } else { 0.2 * v });
        }
    }
    let params: Vec<u64> = (0..layers).map(|_| 64 * rng.gen_range(1u64..=64)).collect();
    let costs: Vec<u64> = params
        .iter()
        .flat_map(|&p| [2, 4, 8].iter().map(move |&b| p * b))
        .collect();
    let budget = params.iter().sum::<u64>() * 4;
    let problem =
        IqpProblem::new(g, &vec![choices; layers], costs, budget).expect("valid instance");

    // One solve is under a millisecond, so each timing sample loops the
    // solve, and plain/armed samples interleave round-robin so slow drift
    // on the host (frequency scaling, background load) hits both sides
    // equally instead of biasing whichever phase ran second.
    let solves_per_sample = 40;
    let rounds = 7;
    let plain = SolverConfig::default();
    let armed = SolverConfig {
        deadline: Some(Instant::now() + Duration::from_secs(3600)),
        ..Default::default()
    };
    let sample = |config: &SolverConfig| {
        let mut choices = None;
        let start = Instant::now();
        for _ in 0..solves_per_sample {
            let solution = problem.solve(config).expect("solves");
            choices.get_or_insert(solution.choices);
        }
        (
            choices.expect("solves_per_sample >= 1"),
            start.elapsed().as_secs_f64(),
        )
    };
    sample(&plain); // warm caches before the measured rounds
    let (mut plain_secs, mut armed_secs) = (f64::INFINITY, f64::INFINITY);
    let (mut plain_choices, mut armed_choices) = (None, None);
    for _ in 0..rounds {
        let (c, s) = sample(&plain);
        plain_secs = plain_secs.min(s);
        plain_choices.get_or_insert(c);
        let (c, s) = sample(&armed);
        armed_secs = armed_secs.min(s);
        armed_choices.get_or_insert(c);
    }
    assert_eq!(
        plain_choices, armed_choices,
        "an unreachable deadline changed the solution"
    );
    let ratio = armed_secs / plain_secs;
    println!(
        "  {:<28} {plain_secs:>7.3}s   armed deadline {armed_secs:.3}s → {ratio:.3}× overhead \
         ({solves_per_sample} solves/sample)",
        "anytime solver, 12 layers"
    );
    ratio
}

/// Sustained single-threaded GEMM throughput of the dispatched kernel:
/// square 256³ multiplies, best rate over a few samples.
fn gemm_gflops() -> f64 {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let n = 256usize;
    let mut rng = StdRng::seed_from_u64(7);
    let a = clado_tensor::Tensor::from_vec(
        [n, n],
        (0..n * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
    )
    .expect("shape matches");
    let b = clado_tensor::Tensor::from_vec(
        [n, n],
        (0..n * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
    )
    .expect("shape matches");
    let flops_per = 2.0 * (n as f64).powi(3);
    let mut best = 0.0f64;
    let mut sink = 0.0f32;
    for _ in 0..4 {
        let start = std::time::Instant::now();
        let mut iters = 0u32;
        while start.elapsed().as_secs_f64() < 0.25 {
            let c = clado_tensor::matmul(&a, &b);
            sink += c.data()[0];
            iters += 1;
        }
        best = best.max(flops_per * f64::from(iters) / start.elapsed().as_secs_f64() / 1e9);
    }
    assert!(sink.is_finite());
    println!(
        "  {:<28} {best:>7.2} GFLOP/s ({} kernel)",
        "sgemm 256x256x256",
        clado_tensor::kernel_name()
    );
    best
}

/// Times one evaluation-mode loss pass over the sensitivity set; returns
/// the minimum wall time of `REPS` passes (the forward work of a probe).
fn eval_pass_seconds(network: &mut Network, set: &DataSplit) -> f64 {
    let mut best = f64::INFINITY;
    let mut sink = 0.0f64;
    for _ in 0..REPS {
        let start = std::time::Instant::now();
        sink += eval_loss(network, set, 64);
        best = best.min(start.elapsed().as_secs_f64());
    }
    assert!(sink.is_finite());
    best
}

/// Measured quantized-execution ratio curve for uniform 8/4/2-bit
/// assignments, against *two* float baselines: the dispatched (usually
/// SIMD) float forward, and the scalar float forward with the kernel
/// backend pinned to the reference path. The integer kernels are scalar,
/// so the SIMD-relative ratio is expected to be well below 1 on AVX2
/// hosts — the scalar-relative ratio is the like-for-like comparison.
/// Returns `(bits, vs_simd_float, vs_scalar_float)` triples, 8-bit first.
fn integer_speedup_curve() -> Vec<(u8, f64, f64)> {
    let (mut network, set) = bench_setup();
    let layers = network.quantizable_layers().len();
    let simd_float_secs = eval_pass_seconds(&mut network, &set);
    clado_tensor::force_backend(Some(clado_tensor::Backend::Scalar));
    let scalar_float_secs = eval_pass_seconds(&mut network, &set);
    clado_tensor::force_backend(None);
    println!(
        "  {:<28} {simd_float_secs:>7.2}s   scalar float {scalar_float_secs:.2}s \
         ({} kernel)",
        "float forward, eval set",
        clado_tensor::kernel_name()
    );
    let mut curve = Vec::new();
    for bits in [8u8, 4, 2] {
        let installed = network.set_integer_assignment(
            &vec![BitWidth::of(bits); layers],
            QuantScheme::PerTensorSymmetric,
        );
        assert_eq!(installed, layers, "uniform {bits}-bit assignment installs");
        let int_secs = eval_pass_seconds(&mut network, &set);
        let vs_simd = simd_float_secs / int_secs;
        let vs_scalar = scalar_float_secs / int_secs;
        println!(
            "  {:<28} {int_secs:>7.2}s   {vs_simd:.2}× vs SIMD float, \
             {vs_scalar:.2}× vs scalar float",
            format!("int{bits} forward, eval set")
        );
        curve.push((bits, vs_simd, vs_scalar));
    }
    network.clear_integer_assignment();
    curve
}

/// Solves the eq. (11) IQP on the measured matrix at a 4-bit average
/// budget and returns the assignment (for the manifest's backend-identity
/// check: scalar and SIMD runs must pick the same bits).
fn solve_assignment(sens: &SensitivityMatrix) -> clado_core::BitAssignment {
    let (network, _) = bench_setup();
    let sizes = LayerSizes::new(network.layer_param_counts());
    let budget = sizes.total_params() as u64 * 4;
    let assignment =
        assign_bits(sens, &sizes, budget, &AssignOptions::default()).expect("IQP solves");
    println!(
        "  {:<28} {}   avg {:.2} bits",
        "IQP assignment, 4-bit budget",
        assignment.bitmap(),
        assignment.avg_bits(&sizes)
    );
    assignment
}

/// FNV-1a over the per-layer bit choices — a compact manifest gauge that
/// changes iff the assignment changes.
fn assignment_hash(assignment: &clado_core::BitAssignment) -> u32 {
    let mut h = 0x811c_9dc5u32;
    for b in &assignment.bits {
        h ^= u32::from(b.bits());
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Accuracy/cost frontier of the sub-quadratic Ω estimators: entry-wise
/// error (relative Frobenius vs. the exact matrix) and IQP assignment
/// regret (relative Δtask-loss at a 4-bit budget) at 10/25/50% probe
/// budgets, recorded as
/// `bench.estimator.{frontier,probe_fraction,regret}.<name>.f<pct>`
/// gauges — the tracked figure for the estimation subsystem.
fn estimator_frontier(exact: &SensitivityMatrix, registry: &Telemetry) {
    let (mut network, set) = bench_setup();
    let bits = BitWidthSet::new(&[2, 8]);
    let scheme = QuantScheme::PerTensorSymmetric;
    let batch_size = SensitivityOptions::default().batch_size;
    let ctx = ShardContext::new(&network, set.len(), &bits, scheme, batch_size, true);
    let full_sweep = ctx.total_probes();
    let sizes = LayerSizes::new(network.layer_param_counts());
    let budget_bits = sizes.total_params() as u64 * 4;
    println!(
        "  {:<12} {:>6} {:>11} {:>9} {:>9}",
        "estimator", "budget", "probes", "error", "regret"
    );
    for kind in EstimatorKind::ALL {
        for pct in [10usize, 25, 50] {
            let est = estimator_for(kind)
                .estimate(
                    &mut network,
                    &set,
                    &bits,
                    &EstimatorOptions {
                        probe_budget: full_sweep * pct / 100,
                        ..EstimatorOptions::new(kind)
                    },
                )
                .expect("estimation");
            let error = error_vs_exact(est.matrix.matrix(), exact.matrix(), &est.observed);
            let regret = assignment_regret(
                &mut network,
                &set,
                exact,
                &est.matrix,
                &sizes,
                budget_bits,
                &AssignOptions::default(),
                scheme,
                batch_size,
            )
            .expect("regret IQP solves");
            println!(
                "  {:<12} {pct:>5}% {:>5}/{:<5} {:>9.3} {:>+9.4}",
                kind.to_string(),
                est.probes_spent,
                est.full_sweep_probes,
                error.full_rel_frobenius,
                regret.relative
            );
            registry.set_gauge(
                &format!("bench.estimator.frontier.{kind}.f{pct}"),
                error.full_rel_frobenius,
            );
            registry.set_gauge(
                &format!("bench.estimator.probe_fraction.{kind}.f{pct}"),
                est.probe_fraction(),
            );
            registry.set_gauge(
                &format!("bench.estimator.regret.{kind}.f{pct}"),
                regret.relative,
            );
        }
    }
}

fn assert_bitwise_equal(a: &SensitivityMatrix, b: &SensitivityMatrix, label: &str) {
    assert_eq!(a.base_loss.to_bits(), b.base_loss.to_bits(), "{label}");
    let dim = a.matrix().dim();
    for u in 0..dim {
        for v in u..dim {
            assert_eq!(
                a.matrix().get(u, v).to_bits(),
                b.matrix().get(u, v).to_bits(),
                "{label}: entry ({u},{v})"
            );
        }
    }
}

fn main() {
    println!("=== Sensitivity-measurement engine: serial/full vs parallel/prefix ===");
    let registry = Telemetry::new();
    let phase = |name: &str| registry.span(name);

    let naive = {
        let _s = phase("serial_full");
        measure(
            "serial, full forward",
            1,
            false,
            Telemetry::disabled(),
            None,
        )
    };
    let (cached, cached_secs) = {
        let _s = phase("serial_prefix");
        best_of(|| measure("serial, prefix cache", 1, true, Telemetry::disabled(), None))
    };
    let parallel = {
        let _s = phase("parallel_prefix");
        measure(
            "all cores, prefix cache",
            0,
            true,
            Telemetry::disabled(),
            None,
        )
    };
    // No phase span here: this configuration records its own `measure`
    // (and `forward`) root spans on the registry.
    let (timed, timed_secs) = best_of(|| {
        measure(
            "serial, prefix + telemetry",
            1,
            true,
            registry.clone(),
            None,
        )
    });
    let ckpt_dir = std::env::temp_dir().join(format!("clado-bench-ckpt-{}", std::process::id()));
    let (journaled, journaled_secs) = {
        let _s = phase("serial_journal");
        best_of(|| {
            let _ = std::fs::remove_dir_all(&ckpt_dir);
            measure(
                "serial, prefix + journal",
                1,
                true,
                Telemetry::disabled(),
                Some(ckpt_dir.clone()),
            )
        })
    };
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let (distributed, distributed_secs, dist_startup_secs, dist_steady_secs) = {
        let _s = phase("distributed");
        measure_distributed(3)
    };
    let anytime_overhead = {
        let _s = phase("solver_anytime");
        solver_anytime_overhead()
    };
    let gflops = {
        let _s = phase("gemm_throughput");
        gemm_gflops()
    };
    let int_curve = {
        let _s = phase("integer_forward");
        integer_speedup_curve()
    };
    let assignment = {
        let _s = phase("assignment");
        solve_assignment(&cached)
    };
    println!("=== Sub-quadratic Ω estimation: accuracy/cost frontier ===");
    {
        let _s = phase("estimators");
        estimator_frontier(&cached, &registry);
    }
    assert_bitwise_equal(&naive, &cached, "prefix cache changed the matrix");
    assert_bitwise_equal(&naive, &parallel, "parallelism changed the matrix");
    assert_bitwise_equal(&naive, &timed, "telemetry changed the matrix");
    assert_bitwise_equal(&naive, &journaled, "journaling changed the matrix");
    assert_bitwise_equal(&naive, &distributed, "distribution changed the matrix");
    assert_eq!(
        journaled.stats.resumed + journaled.stats.retried + journaled.stats.quarantined,
        0,
        "a fault-free checkpointed run must not report recovery activity"
    );

    let cache_speedup = naive.stats.seconds / cached_secs;
    let total_speedup = naive.stats.seconds / parallel.stats.seconds;
    let overhead_ratio = timed_secs / cached_secs;
    let checkpoint_overhead = journaled_secs / cached_secs;
    let distributed_speedup = cached_secs / distributed_secs;
    println!("  prefix-cache speedup  {cache_speedup:>6.2}×");
    println!("  combined speedup      {total_speedup:>6.2}×   (matrices bitwise identical)");
    println!("  telemetry overhead    {overhead_ratio:>6.3}×   (enabled / disabled wall time)");
    println!("  checkpoint overhead   {checkpoint_overhead:>6.3}×   (journaled / plain wall time)");
    println!("  distributed speedup   {distributed_speedup:>6.2}×   (serial-prefix / 3-worker wall time)");
    println!(
        "  distributed split     {dist_startup_secs:>6.2}s   startup (bind → first lease) \
         + {dist_steady_secs:.2}s steady-state"
    );
    if distributed_speedup < 1.0 {
        let (secs, phase) = if dist_startup_secs >= dist_steady_secs {
            (
                dist_startup_secs,
                "startup (handshake + per-worker model rebuild)",
            )
        } else {
            (
                dist_steady_secs,
                "steady-state shard service (per-shard work too small to amortize \
                 frame round-trips and duplicated prefix builds)",
            )
        };
        println!(
            "  NOTE: distributed ratio < 1 — {secs:.2}s of the {distributed_secs:.2}s \
             wall time is {phase}"
        );
    }
    println!(
        "  anytime overhead      {anytime_overhead:>6.3}×   (armed deadline / plain solve wall time)"
    );

    // The bench record *is* a telemetry manifest: timings land in gauges,
    // the instrumented run's counters and span tree come along for free.
    registry.set_gauge("bench.serial_full_seconds", naive.stats.seconds);
    registry.set_gauge("bench.serial_prefix_seconds", cached_secs);
    registry.set_gauge("bench.parallel_prefix_seconds", parallel.stats.seconds);
    registry.set_gauge("bench.prefix_cache_speedup", cache_speedup);
    registry.set_gauge("bench.combined_speedup", total_speedup);
    registry.set_gauge("telemetry.overhead_ratio", overhead_ratio);
    registry.set_gauge("bench.serial_journal_seconds", journaled_secs);
    registry.set_gauge("bench.checkpoint_overhead_ratio", checkpoint_overhead);
    registry.set_gauge("bench.distributed_seconds", distributed_secs);
    registry.set_gauge("distributed.speedup_ratio", distributed_speedup);
    registry.set_gauge("distributed.startup_seconds", dist_startup_secs);
    registry.set_gauge("distributed.steady_seconds", dist_steady_secs);
    registry.set_gauge("solver.anytime_overhead_ratio", anytime_overhead);
    registry.set_gauge("bench.gemm_gflops", gflops);
    for &(bits, vs_simd, vs_scalar) in &int_curve {
        registry.set_gauge(&format!("bench.int_speedup.b{bits}.vs_simd_float"), vs_simd);
        registry.set_gauge(
            &format!("bench.int_speedup.b{bits}.vs_scalar_float"),
            vs_scalar,
        );
        // A "speedup" below 1 is a slowdown — say so instead of letting
        // the gauge name imply the integer path won.
        for (ratio, baseline) in [(vs_simd, "SIMD"), (vs_scalar, "scalar")] {
            if ratio < 1.0 {
                println!(
                    "  NOTE: int{bits} forward is {:.1}× SLOWER than the {baseline} \
                     float forward ({ratio:.3}× ratio)",
                    1.0 / ratio
                );
            }
        }
    }
    let int8_speedup = int_curve
        .iter()
        .find(|&&(bits, _, _)| bits == 8)
        .map(|&(_, vs_simd, _)| vs_simd)
        .expect("curve includes 8 bits");
    registry.set_gauge("bench.int8_speedup_ratio", int8_speedup);
    registry.set_gauge(
        "bench.assignment_hash",
        f64::from(assignment_hash(&assignment)),
    );
    let json = registry.manifest(
        "bench.sensitivity_engine",
        &[
            ("model", "resnet20-mini".into()),
            ("threads", parallel.stats.threads_used.into()),
            ("evaluations", naive.stats.evaluations.into()),
            ("bitwise_identical", true.into()),
            ("resumed", journaled.stats.resumed.into()),
            ("retried", journaled.stats.retried.into()),
            ("quarantined", journaled.stats.quarantined.into()),
            ("kernel", clado_tensor::kernel_name().into()),
            ("cpu_features", clado_tensor::cpu_features().into()),
            ("bit_assignment", assignment.bitmap().into()),
        ],
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sensitivity.json");
    std::fs::write(&out, json).expect("write BENCH_sensitivity.json");
    println!("  recorded → {}", out.display());
}
