//! Table 1 — MPQ results (PTQ): averaged top-1 accuracy of HAWQ / MPQCO /
//! CLADO\* / CLADO at three size budgets for all five model families.
//!
//! ```text
//! cargo bench -p clado-bench --bench table1_ptq
//! ```

use clado_bench::{context_for, table1_budgets};
use clado_core::Algorithm;
use clado_models::ModelKind;
use clado_quant::bits_to_mb;
use std::time::Instant;

fn main() {
    println!("=== Table 1: MPQ results (PTQ), top-1 accuracy (%) ===\n");
    for kind in ModelKind::table1_models() {
        let start = Instant::now();
        let (mut ctx, fp32) = context_for(kind, 0);
        println!(
            "{}  (FP32 acc {:.2}%, 𝔹 = {}, {})",
            kind.display_name(),
            fp32 * 100.0,
            ctx.bits,
            ctx.scheme
        );
        println!(
            "  {:<12} {:>9} {:>9} {:>9} {:>9}",
            "size (MB)", "HAWQ", "MPQCO", "CLADO*", "CLADO"
        );
        for avg in table1_budgets(kind) {
            let budget = ctx.sizes.budget_from_avg_bits(avg);
            print!("  {:<12.4}", bits_to_mb(budget));
            for alg in Algorithm::table1() {
                match ctx.run(alg, budget) {
                    Ok((_, acc)) => print!(" {:>8.2}%", acc * 100.0),
                    Err(e) => print!(" {e:>9}"),
                }
            }
            println!();
        }
        let sens = ctx.clado_matrix();
        println!(
            "  [sensitivities: {} evals in {:.1}s; total model time {:.1}s]\n",
            sens.stats.evaluations,
            sens.stats.seconds,
            start.elapsed().as_secs_f64()
        );
    }
}
