//! Figure 6 — leaving out inter-block dependencies worsens MPQ: full CLADO
//! (all-layer interactions) vs the BRECQ-style variant that keeps only
//! intra-block interactions, median over random sensitivity sets.
//!
//! ```text
//! cargo bench -p clado-bench --bench fig6_block_ablation
//! ```

use clado_bench::{num_sets, sens_size, table1_config};
use clado_core::{quartiles, Algorithm, ExperimentContext};
use clado_models::{pretrained, ModelKind};

fn main() {
    let sets = num_sets().min(4);
    let budgets = [2.6f64, 3.0, 3.4];
    println!("=== Figure 6: intra-block-only vs all-layer interactions ({sets} sets) ===");
    for kind in [ModelKind::ResNet34, ModelKind::ResNet50] {
        let (bits, scheme) = table1_config(kind);
        // accs[budget][algorithm] over sets; sensitivities are measured once
        // per set and reused across budgets, the sensitivity-based methods'
        // signature property.
        let mut block_accs = vec![Vec::new(); budgets.len()];
        let mut full_accs = vec![Vec::new(); budgets.len()];
        for set_id in 0..sets {
            let p = pretrained(kind);
            let sens = p
                .data
                .train
                .sample_subset(sens_size() / 2, set_id as u64 + 10);
            let mut ctx =
                ExperimentContext::new(p.network, sens, p.data.val.clone(), bits.clone(), scheme);
            for (bi, &avg) in budgets.iter().enumerate() {
                let budget = ctx.sizes.budget_from_avg_bits(avg);
                let (_, b) = ctx.run(Algorithm::BlockClado, budget).expect("feasible");
                let (_, f) = ctx.run(Algorithm::Clado, budget).expect("feasible");
                block_accs[bi].push(b * 100.0);
                full_accs[bi].push(f * 100.0);
            }
        }
        println!("\n{}", kind.display_name());
        println!(
            "  {:>8} {:>30} {:>30}",
            "avg bits", "block-only (q25/med/q75)", "full CLADO (q25/med/q75)"
        );
        for (bi, &avg) in budgets.iter().enumerate() {
            let qb = quartiles(&block_accs[bi]);
            let qf = quartiles(&full_accs[bi]);
            println!(
                "  {avg:>8.1}       {:>6.2} / {:>6.2} / {:>6.2}        {:>6.2} / {:>6.2} / {:>6.2}",
                qb.q25, qb.median, qb.q75, qf.q25, qf.median, qf.q75
            );
        }
    }
    println!("\n(expected shape: full CLADO's median ≥ block-only's — ignoring");
    println!(" inter-block dependencies is suboptimal for MPQ, Fig. 6.)");
}
