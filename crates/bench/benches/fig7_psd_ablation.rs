//! Figure 7 — ablation on the PSD approximation of Ĝ: solution quality and
//! consistency with vs without the projection, plus branch-and-bound node
//! counts (the paper reports CVXPY+GUROBI fails to converge in >3 h without
//! PSD; a combinatorial B&B is less convexity-dependent, see the footer).
//!
//! ```text
//! cargo bench -p clado-bench --bench fig7_psd_ablation
//! ```

use clado_bench::{num_sets, sens_size, table1_config};
use clado_core::{quartiles, Algorithm, ExperimentContext};
use clado_models::{pretrained, ModelKind};

fn main() {
    let kind = ModelKind::ResNet34;
    let sets = num_sets().min(4);
    let budgets = [2.6f64, 3.0, 3.4];
    println!(
        "=== Figure 7: PSD approximation ablation ({}, {sets} sets) ===\n",
        kind.display_name()
    );
    let (bits, scheme) = table1_config(kind);

    let mut no_psd = vec![Vec::new(); budgets.len()];
    let mut psd = vec![Vec::new(); budgets.len()];
    let mut nodes_no_psd = vec![0u64; budgets.len()];
    let mut nodes_psd = vec![0u64; budgets.len()];
    let mut unproved = vec![0usize; budgets.len()];
    for set_id in 0..sets {
        let p = pretrained(kind);
        let sens = p
            .data
            .train
            .sample_subset(sens_size() / 2, set_id as u64 + 100);
        let mut ctx =
            ExperimentContext::new(p.network, sens, p.data.val.clone(), bits.clone(), scheme);
        for (bi, &avg) in budgets.iter().enumerate() {
            let budget = ctx.sizes.budget_from_avg_bits(avg);
            let (a_raw, acc_raw) = ctx.run(Algorithm::CladoNoPsd, budget).expect("feasible");
            let (a_psd, acc_psd) = ctx.run(Algorithm::Clado, budget).expect("feasible");
            no_psd[bi].push(acc_raw * 100.0);
            psd[bi].push(acc_psd * 100.0);
            nodes_no_psd[bi] += a_raw.solution.nodes_explored;
            nodes_psd[bi] += a_psd.solution.nodes_explored;
            if !a_raw.solution.proved_optimal {
                unproved[bi] += 1;
            }
        }
    }

    println!(
        "{:>8} {:>30} {:>30}  {:>22}",
        "avg bits", "no-PSD (q25/med/q75)", "PSD (q25/med/q75)", "B&B nodes (noPSD/PSD)"
    );
    for (bi, &avg) in budgets.iter().enumerate() {
        let qn = quartiles(&no_psd[bi]);
        let qp = quartiles(&psd[bi]);
        println!(
            "{avg:>8.1}       {:>6.2} / {:>6.2} / {:>6.2}        {:>6.2} / {:>6.2} / {:>6.2}   {:>10} / {:>8}{}",
            qn.q25,
            qn.median,
            qn.q75,
            qp.q25,
            qp.median,
            qp.q75,
            nodes_no_psd[bi] / sets as u64,
            nodes_psd[bi] / sets as u64,
            if unproved[bi] > 0 {
                format!("   ({} no-PSD runs hit the node cap)", unproved[bi])
            } else {
                String::new()
            }
        );
    }
    println!("\n(expected shape: PSD improves solution quality/consistency at mid and");
    println!(" loose budgets. The paper's solver-side blow-up — CVXPY+GUROBI failing to");
    println!(" converge on the indefinite objective — is specific to convex-MIQP");
    println!(" machinery; this repo's combinatorial branch-and-bound does not require");
    println!(" convexity, so both variants solve in comparable node counts at mini");
    println!(" scale. See EXPERIMENTS.md for the discussion.)");
}
