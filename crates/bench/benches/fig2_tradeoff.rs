//! Figure 2 — accuracy-vs-size tradeoff curves (denser budget sweep than
//! Table 1), one series per algorithm per model.
//!
//! ```text
//! cargo bench -p clado-bench --bench fig2_tradeoff
//! ```

use clado_bench::context_for;
use clado_core::Algorithm;
use clado_models::ModelKind;
use clado_quant::bits_to_mb;

fn main() {
    println!("=== Figure 2: accuracy vs model size (PTQ) ===");
    for kind in [ModelKind::ResNet34, ModelKind::ResNet50, ModelKind::ViT] {
        let (mut ctx, fp32) = context_for(kind, 0);
        println!("\n{} (FP32 {:.2}%)", kind.display_name(), fp32 * 100.0);
        println!(
            "  {:>8} {:>10} {:>8} {:>8} {:>8} {:>8}",
            "avg bits", "size (MB)", "HAWQ", "MPQCO", "CLADO*", "CLADO"
        );
        for step in 0..8 {
            let avg = 2.25 + 0.25 * step as f64;
            let budget = ctx.sizes.budget_from_avg_bits(avg);
            print!("  {avg:>8.2} {:>10.4}", bits_to_mb(budget));
            for alg in Algorithm::table1() {
                match ctx.run(alg, budget) {
                    Ok((_, acc)) => print!(" {:>7.2}%", acc * 100.0),
                    Err(_) => print!(" {:>8}", "infeas"),
                }
            }
            println!();
        }
    }
}
