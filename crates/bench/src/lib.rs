//! # clado-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation. Each bench target (`cargo bench -p clado-bench --bench
//! <name>`) prints the same rows/series the paper reports, scaled to the
//! mini models (see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results).
//!
//! Scale knobs (environment variables):
//!
//! * `CLADO_SENS_SIZE` — sensitivity-set size (default 128)
//! * `CLADO_SETS` — number of random sensitivity sets for the
//!   variance studies (default 8; the paper uses 24)

use clado_core::ExperimentContext;
use clado_models::{pretrained, ModelKind, Pretrained};
use clado_quant::{BitWidthSet, QuantScheme};

/// Sensitivity-set size used by the experiment benches.
pub fn sens_size() -> usize {
    std::env::var("CLADO_SENS_SIZE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

/// Number of random sensitivity sets for variance studies.
pub fn num_sets() -> usize {
    std::env::var("CLADO_SETS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// The per-model quantization configuration of Table 1: candidate set 𝔹
/// and scheme (`+` columns use per-channel affine; MobileNet uses the
/// conservative 𝔹 = {4,6,8}).
pub fn table1_config(kind: ModelKind) -> (BitWidthSet, QuantScheme) {
    match kind {
        // The paper uses the conservative 𝔹 = {4,6,8} for MobileNetV3
        // because full-scale MobileNet degrades sharply below 4 bits. The
        // mini analogue's robustness knee sits lower (4-bit per-channel
        // affine is already lossless), so the candidate set shifts down to
        // keep the experiment in the regime the paper studies.
        ModelKind::MobileNet => (BitWidthSet::standard(), QuantScheme::PerChannelAffine),
        ModelKind::ViT => (BitWidthSet::standard(), QuantScheme::PerChannelAffine),
        _ => (BitWidthSet::standard(), QuantScheme::PerTensorSymmetric),
    }
}

/// Budgets (average bits per weight) per model for Table 1. MobileNet's
/// candidate floor is 4 bits, so its budgets sit between 4 and 8.
pub fn table1_budgets(_kind: ModelKind) -> [f64; 3] {
    [2.5, 3.0, 3.5]
}

/// Builds an [`ExperimentContext`] for a pretrained model with a seeded
/// sensitivity set.
pub fn context_for(kind: ModelKind, sens_seed: u64) -> (ExperimentContext, f64) {
    let p: Pretrained = pretrained(kind);
    let (bits, scheme) = table1_config(kind);
    let sens = p.data.train.sample_subset(sens_size(), sens_seed);
    let fp32 = p.val_accuracy;
    (
        ExperimentContext::new(p.network, sens, p.data.val.clone(), bits, scheme),
        fp32,
    )
}
