//! Appendix A (Fig. 8) — layer index ↔ name tables for every zoo model.
//!
//! ```text
//! cargo run --release -p clado-bench --bin layer_tables
//! ```

use clado_models::ModelKind;

fn main() {
    for kind in [
        ModelKind::ResNet20,
        ModelKind::ResNet34,
        ModelKind::ResNet50,
        ModelKind::MobileNet,
        ModelKind::RegNet,
        ModelKind::ViT,
    ] {
        let net = kind.build(10, 0);
        println!(
            "\n{} — {} quantizable layers",
            kind.display_name(),
            net.quantizable_layers().len()
        );
        println!(
            "{:>5}  {:<40} {:>8} {:>6}",
            "index", "layer", "params", "block"
        );
        for l in net.quantizable_layers() {
            println!(
                "{:>5}  {:<40} {:>8} {:>6}",
                l.index, l.name, l.numel, l.block
            );
        }
    }
}
