//! Diagnostic: HVP epsilon stability and secant-vs-tangent decomposition.
use clado_core::{eval_loss, exact_vhv_direction, quantizable_gradients};
use clado_models::{pretrained, ModelKind};
use clado_quant::{quant_error, BitWidth, QuantScheme};

fn main() {
    let mut p = pretrained(ModelKind::ResNet20);
    let set = p.data.train.sample_subset(128, 0);
    for (layer, bits) in [(0usize, 2u8), (6, 2), (14, 2)] {
        let w = p.network.weight(layer);
        let v = quant_error(&w, BitWidth::of(bits), QuantScheme::PerTensorSymmetric);
        println!(
            "layer {layer} {bits}b  ||v||={:.4} ||w||={:.4}",
            v.norm(),
            w.norm()
        );
        // exact vhv (our fd)
        let e = exact_vhv_direction(&mut p.network, &set, layer, &v, 64);
        println!("  exact_vhv (fd hvp)        = {e:.5}");
        // secant parts
        let base = eval_loss(&mut p.network, &set, 64);
        let g = quantizable_gradients(&mut p.network, &set, 64);
        let gv = g[layer].dot(&v);
        p.network.perturb_weight(layer, &v);
        let lp = eval_loss(&mut p.network, &set, 64);
        p.network.set_weight(layer, &w);
        let mut neg = v.clone();
        neg.scale(-1.0);
        p.network.perturb_weight(layer, &neg);
        let lm = eval_loss(&mut p.network, &set, 64);
        p.network.set_weight(layer, &w);
        println!(
            "  g·v = {gv:.5}   L+ - L = {:.5}   L- - L = {:.5}",
            lp - base,
            lm - base
        );
        println!("  fast = 2(L+ - L) = {:.5}", 2.0 * (lp - base));
        println!(
            "  symmetric secant vhv = (L+ + L- - 2L) = {:.5}",
            lp + lm - 2.0 * base
        );
        // fd-hvp at scaled directions to check quadratic scaling region
        for scale in [0.25f32, 0.5, 1.0] {
            let mut vs = v.clone();
            vs.scale(scale);
            p.network.perturb_weight(layer, &vs);
            let l1 = eval_loss(&mut p.network, &set, 64);
            p.network.set_weight(layer, &w);
            let mut vneg = vs.clone();
            vneg.scale(-1.0);
            p.network.perturb_weight(layer, &vneg);
            let l2 = eval_loss(&mut p.network, &set, 64);
            p.network.set_weight(layer, &w);
            let sec = (l1 + l2 - 2.0 * base) / (scale as f64 * scale as f64);
            println!("  secant@{scale} (rescaled) = {sec:.5}");
        }
    }
}
