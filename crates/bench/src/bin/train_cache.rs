//! Pretrains and caches every model in the zoo, printing FP32 accuracies.
//!
//! Run once per machine: `cargo run --release -p clado-bench --bin train_cache`

use clado_models::{pretrained, ModelKind};

fn main() {
    for kind in [
        ModelKind::ResNet20,
        ModelKind::ResNet34,
        ModelKind::ResNet50,
        ModelKind::MobileNet,
        ModelKind::RegNet,
        ModelKind::ViT,
    ] {
        let start = std::time::Instant::now();
        let p = pretrained(kind);
        println!(
            "{:<28} FP32 val acc {:>6.2}%  ({} quantizable layers, {:.1}s)",
            kind.display_name(),
            p.val_accuracy * 100.0,
            p.network.quantizable_layers().len(),
            start.elapsed().as_secs_f64()
        );
    }
}
