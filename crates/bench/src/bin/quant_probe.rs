//! Quick diagnostic: uniform-precision accuracy at each bit-width.

// Index-based loops are kept where they mirror the math directly.
#![allow(clippy::needless_range_loop)]
use clado_models::{evaluate, pretrained, ModelKind};
use clado_quant::{quantize_weights, BitWidth, QuantScheme};

fn main() {
    for kind in [ModelKind::ResNet34, ModelKind::ViT, ModelKind::MobileNet] {
        let mut p = pretrained(kind);
        print!(
            "{:<28} fp32 {:>6.2}% |",
            kind.display_name(),
            p.val_accuracy * 100.0
        );
        for bits in [8u8, 4, 3, 2] {
            let snap = p.network.snapshot_weights();
            for i in 0..snap.len() {
                let q = quantize_weights(
                    &snap[i],
                    BitWidth::of(bits),
                    QuantScheme::PerTensorSymmetric,
                );
                p.network.set_weight(i, &q);
            }
            let acc = evaluate(&mut p.network, &p.data.val);
            p.network.restore_weights(&snap);
            print!(" {}b {:>6.2}%", bits, acc * 100.0);
        }
        println!();
    }
}
