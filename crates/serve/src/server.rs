//! The `clado serve` daemon: bounded admission, typed load shedding,
//! executor threads, the Ω result cache, and graceful drain.
//!
//! ## Request lifecycle
//!
//! 1. A client connects and sends `Submit`. The admission thread
//!    validates the request and decides under the queue lock: draining →
//!    `Rejected(Draining)`; queue at depth → `Rejected(Overloaded)`;
//!    deadline shorter than the estimated start (an EWMA of observed
//!    service times scaled by queue position) →
//!    `Rejected(DeadlineInfeasible)`. Otherwise `Accepted` and enqueued.
//! 2. The admission thread then watches the socket: a client that hangs
//!    up cancels its own request (the cancel flag threads into both the
//!    measurement pool and [`clado_solver::SolverConfig::cancel`]).
//! 3. An executor pops the request: an Ω-cache hit answers with zero
//!    probe evaluations and a byte-identical CLSM image; a miss builds
//!    the model, runs the shard grid on the worker pool (falling back to
//!    in-process evaluation when no worker is live), assembles Ω, and
//!    populates the cache. Budget solves inherit the request deadline,
//!    so the anytime ladder degrades instead of blowing through it.
//! 4. Failures are *typed* per request ([`crate::protocol::FailKind`])
//!    and never tear down the daemon.
//!
//! ## Drain
//!
//! Raising the drain flag (SIGTERM/Ctrl-C in the CLI) stops admission —
//! late submitters get `Rejected(Draining)` — finishes everything
//! already admitted, shuts the worker pool down, and returns the final
//! [`ServeReport`].

use crate::cache::{CachedOmega, OmegaCache};
use crate::diskcache::DiskCache;
use crate::error::ServeError;
use crate::pool::{JobFailure, PoolOptions, WorkerPool};
use crate::protocol::{
    self, AssignRow, FailKind, MeasureSpec, Op, RejectReason, ServeMessage, SubmitRequest,
};
use clado_core::{
    assign_bits, sensitivities_to_bytes, AssignOptions, OmegaProvenance, SensitivityMatrix,
    SensitivityStats, ShardContext,
};
use clado_dist::{scheme_from_u8, JobSpec};
use clado_estim::{
    complete_partial, estimation_fingerprint, resolved_probe_budget, EstimatorKind, ProbePlanner,
    DEFAULT_ALS_ITERS, DEFAULT_ALS_RANK,
};
use clado_models::DataSplit;
use clado_nn::Network;
use clado_quant::{BitWidthSet, LayerSizes};
use clado_solver::SolverConfig;
use clado_telemetry::Telemetry;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Builds (model, sensitivity set) for a measurement spec. The CLI
/// passes the pretrained-model loader; tests pass synthetic builders.
pub type ModelProvider =
    Arc<dyn Fn(&MeasureSpec) -> Result<(Network, DataSplit), String> + Send + Sync>;

/// Options controlling the daemon.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Admission queue depth; submissions past it are shed with the
    /// typed `Overloaded` rejection.
    pub queue_depth: usize,
    /// Concurrent request executors.
    pub executors: usize,
    /// Ω cache capacity (distinct measurement configs; 0 disables).
    pub cache_capacity: usize,
    /// In-memory Ω cache byte budget (0 = bounded by capacity only).
    pub cache_bytes: u64,
    /// Directory for the persistent Ω spill store; `None` keeps the
    /// cache memory-only. With a directory, every measured Ω is
    /// committed to disk and a restarted daemon warm-loads the store —
    /// repeat configs survive even a SIGKILL with zero re-evaluations.
    pub cache_dir: Option<PathBuf>,
    /// On-disk byte budget for the spill store (0 = unbounded).
    pub cache_disk_bytes: u64,
    /// Worker-pool heartbeat timeout (dead-worker detection).
    pub heartbeat_timeout: Duration,
    /// Per-shard eviction cap before a request fails with
    /// `WorkerRetriesExhausted`.
    pub shard_retries: u32,
    /// Telemetry sink for queue/shed/cache gauges and request latencies.
    pub telemetry: Telemetry,
    /// Print coarse progress to stderr.
    pub verbose: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            queue_depth: 16,
            executors: 2,
            cache_capacity: 8,
            cache_bytes: 0,
            cache_dir: None,
            cache_disk_bytes: 0,
            heartbeat_timeout: Duration::from_secs(3),
            shard_retries: 5,
            telemetry: Telemetry::disabled(),
            verbose: false,
        }
    }
}

/// What the daemon did over its lifetime, returned by [`Server::run`]
/// after a clean drain.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeReport {
    /// Submissions received (admitted or shed).
    pub requests: u64,
    /// Requests answered with a success response.
    pub completed: u64,
    /// Admitted requests that failed (typed; the daemon survived).
    pub failed: u64,
    /// Submissions shed with `Overloaded`.
    pub shed_overload: u64,
    /// Submissions shed with `DeadlineInfeasible`.
    pub shed_deadline: u64,
    /// Submissions shed with `Draining`.
    pub shed_draining: u64,
    /// Submissions shed with `Malformed`.
    pub shed_malformed: u64,
    /// Requests served from the Ω cache (zero probe evaluations).
    pub cache_hits: u64,
    /// Requests that had to measure.
    pub cache_misses: u64,
}

/// One admitted request waiting for (or being served by) an executor.
struct Queued {
    id: u64,
    req: SubmitRequest,
    /// Write side of the client connection (the admission thread holds a
    /// clone of the read side as its disconnect watcher).
    stream: TcpStream,
    accepted_at: Instant,
    deadline: Option<Instant>,
    cancel: Arc<AtomicBool>,
    finished: Arc<AtomicBool>,
    /// Raised by the admission thread once the `Accepted` frame is on
    /// the wire. The executor must not write the response before then:
    /// a cache hit can finish faster than the admission reply, and two
    /// threads racing writes on the same socket would reorder frames.
    accepted_sent: Arc<AtomicBool>,
}

struct Inner {
    queue: Mutex<VecDeque<Queued>>,
    cv: Condvar,
    drain: Arc<AtomicBool>,
    busy: AtomicUsize,
    next_request: AtomicU64,
    /// EWMA of observed request service times, µs (admission estimator).
    ewma_us: Mutex<Option<f64>>,
    cache: OmegaCache,
    disk: Option<DiskCache>,
    pool: WorkerPool,
    provider: ModelProvider,
    telemetry: Telemetry,
    opts: ServeOptions,
    requests: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed_overload: AtomicU64,
    shed_deadline: AtomicU64,
    shed_draining: AtomicU64,
    shed_malformed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

/// A bound, not-yet-running daemon. [`Server::run`] drives it until the
/// drain flag is raised and every admitted request has been answered.
pub struct Server {
    listener: TcpListener,
    client_addr: SocketAddr,
    inner: Arc<Inner>,
}

impl Server {
    /// Binds the client- and worker-facing sockets. Use `127.0.0.1:0`
    /// for either to let the OS pick a free port.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when either address cannot be bound.
    pub fn bind(
        client_addr: &str,
        worker_addr: &str,
        provider: ModelProvider,
        opts: ServeOptions,
    ) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(client_addr)?;
        let client_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let pool = WorkerPool::bind(
            worker_addr,
            PoolOptions {
                heartbeat_timeout: opts.heartbeat_timeout,
                shard_retries: opts.shard_retries,
                telemetry: opts.telemetry.clone(),
                verbose: opts.verbose,
            },
        )?;
        let cache = OmegaCache::new(opts.cache_capacity, opts.cache_bytes);
        let disk = match &opts.cache_dir {
            Some(dir) => Some(DiskCache::open(
                dir,
                opts.cache_disk_bytes,
                opts.telemetry.clone(),
            )?),
            None => None,
        };
        if let Some(disk) = &disk {
            // Warm the in-memory LRU from the spill store: the most
            // recent `cache_capacity` entries, inserted oldest-first so
            // memory recency agrees with disk recency. `peek` (not
            // `load`) keeps the startup walk from inverting the on-disk
            // LRU order or masquerading as client cache hits.
            let mut keys = disk.keys_most_recent_first();
            keys.truncate(opts.cache_capacity);
            keys.reverse();
            for key in keys {
                if let Some(entry) = disk.peek(key) {
                    cache.insert(key, Arc::new(entry));
                }
            }
            if opts.verbose && !cache.is_empty() {
                eprintln!(
                    "serve: warm-loaded {} cached measurement(s) from {}",
                    cache.len(),
                    disk.dir().display()
                );
            }
        }
        opts.telemetry
            .set_gauge("serve.cache.bytes", cache.bytes() as f64);
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            drain: Arc::new(AtomicBool::new(false)),
            busy: AtomicUsize::new(0),
            next_request: AtomicU64::new(1),
            ewma_us: Mutex::new(None),
            cache,
            disk,
            pool,
            provider,
            telemetry: opts.telemetry.clone(),
            opts,
            requests: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            shed_draining: AtomicU64::new(0),
            shed_malformed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        });
        Ok(Self {
            listener,
            client_addr,
            inner,
        })
    }

    /// The address clients should submit to.
    pub fn client_addr(&self) -> SocketAddr {
        self.client_addr
    }

    /// The address pooled workers should connect to.
    pub fn worker_addr(&self) -> SocketAddr {
        self.inner.pool.worker_addr()
    }

    /// Number of currently connected pooled workers.
    pub fn live_workers(&self) -> usize {
        self.inner.pool.live_workers()
    }

    /// The drain flag: raising it (e.g. from a SIGTERM handler) stops
    /// admission, finishes in-flight work, and makes [`Server::run`]
    /// return.
    pub fn drain_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.inner.drain)
    }

    /// Runs the daemon until drained. Accepts clients, sheds overload
    /// with typed rejections, and answers every admitted request —
    /// request failures are per-request, never fatal.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] only for listener-level failures; everything
    /// request-scoped is reported to the requesting client instead.
    pub fn run(self) -> Result<ServeReport, ServeError> {
        let inner = &self.inner;
        let _root = inner.telemetry.span("serve.run");
        let executors: Vec<_> = (0..inner.opts.executors.max(1))
            .map(|_| {
                let inner = Arc::clone(inner);
                std::thread::spawn(move || executor_loop(&inner))
            })
            .collect();

        loop {
            let draining = inner.drain.load(Ordering::SeqCst);
            if draining {
                // Keep answering late submitters with the typed Draining
                // rejection while admitted work finishes.
                let queue_len = inner.queue.lock().unwrap_or_else(|p| p.into_inner()).len();
                if queue_len == 0 && inner.busy.load(Ordering::SeqCst) == 0 {
                    break;
                }
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let inner = Arc::clone(inner);
                    std::thread::spawn(move || admit_client(stream, &inner));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(ServeError::Io(e)),
            }
        }

        inner.cv.notify_all();
        for h in executors {
            let _ = h.join();
        }
        inner.pool.shutdown();
        let report = ServeReport {
            requests: inner.requests.load(Ordering::SeqCst),
            completed: inner.completed.load(Ordering::SeqCst),
            failed: inner.failed.load(Ordering::SeqCst),
            shed_overload: inner.shed_overload.load(Ordering::SeqCst),
            shed_deadline: inner.shed_deadline.load(Ordering::SeqCst),
            shed_draining: inner.shed_draining.load(Ordering::SeqCst),
            shed_malformed: inner.shed_malformed.load(Ordering::SeqCst),
            cache_hits: inner.cache_hits.load(Ordering::SeqCst),
            cache_misses: inner.cache_misses.load(Ordering::SeqCst),
        };
        let t = &inner.telemetry;
        t.set_gauge("serve.requests", report.requests as f64);
        t.set_gauge("serve.completed", report.completed as f64);
        t.set_gauge("serve.failed", report.failed as f64);
        t.set_gauge(
            "serve.shed_total",
            (report.shed_overload
                + report.shed_deadline
                + report.shed_draining
                + report.shed_malformed) as f64,
        );
        Ok(report)
    }
}

/// Upper bound on sweep rows a single request may ask for.
const MAX_SWEEP_ROWS: usize = 256;

/// Static request validation (admission-time `Malformed` shedding).
fn validate(req: &SubmitRequest) -> Option<String> {
    let spec = &req.spec;
    if spec.model.is_empty() {
        return Some("empty model name".into());
    }
    if spec.bits.is_empty() {
        return Some("empty bit-width set".into());
    }
    if let Some(&bad) = spec.bits.iter().find(|&&b| !(1..=16).contains(&b)) {
        return Some(format!("bit-width {bad} out of range 1..=16"));
    }
    if scheme_from_u8(spec.scheme).is_err() {
        return Some(format!("unknown quantization scheme {}", spec.scheme));
    }
    if spec.set_size == 0 {
        return Some("sensitivity-set size must be positive".into());
    }
    if spec.batch_size == 0 {
        return Some("batch size must be positive".into());
    }
    match spec.estimator {
        0 => {
            // Exact specs must keep the estimation fields zeroed so
            // equal exact requests hash to equal cache keys.
            if spec.probe_budget != 0 {
                return Some("probe budget requires an estimator".into());
            }
            if spec.estimator_seed != 0 {
                return Some("estimator seed requires an estimator".into());
            }
        }
        tag => match EstimatorKind::from_tag(tag) {
            Some(EstimatorKind::Hutchinson) => {
                return Some(
                    "hutchinson estimation is diagonal-only and not grid-shardable; \
                     run it single-process"
                        .into(),
                )
            }
            Some(_) => {}
            None => return Some(format!("unknown estimator tag {tag}")),
        },
    }
    match req.op {
        Op::Measure => None,
        Op::Assign { avg_bits } => (!avg_bits.is_finite() || avg_bits <= 0.0)
            .then(|| format!("average-bits budget {avg_bits} must be positive")),
        Op::Sweep { from, to, step } => {
            if !(from.is_finite() && to.is_finite() && step.is_finite()) {
                return Some("sweep bounds must be finite".into());
            }
            if from <= 0.0 || to < from || step <= 0.0 {
                return Some(format!("invalid sweep range {from}..={to} step {step}"));
            }
            let rows = ((to - from) / step) as usize + 1;
            (rows > MAX_SWEEP_ROWS)
                .then(|| format!("sweep asks for {rows} rows (cap {MAX_SWEEP_ROWS})"))
        }
    }
}

/// Handles one client connection: admission decision, `Accepted` reply,
/// then disconnect watching until the request finishes.
fn admit_client(stream: TcpStream, inner: &Arc<Inner>) {
    let t = &inner.telemetry;
    let _ = stream.set_nodelay(true);
    // Bounded in both directions: a connected-but-silent client cannot
    // pin this thread past the handshake timeout, and the expiry is the
    // typed HandshakeTimeout, not a mystery hang.
    let _ = stream.set_read_timeout(Some(inner.opts.heartbeat_timeout));
    let _ = stream.set_write_timeout(Some(inner.opts.heartbeat_timeout));
    let mut s = &stream;
    let req = match protocol::recv(&mut s) {
        Ok(ServeMessage::Submit(req)) => req,
        Ok(_) => {
            t.counter("serve.protocol_errors").incr();
            return;
        }
        Err(e) => {
            let e = e.or_handshake_timeout();
            if matches!(e, clado_dist::FrameError::HandshakeTimeout) {
                t.counter("serve.handshake_timeouts").incr();
            } else if !e.is_disconnect() {
                t.counter("serve.protocol_errors").incr();
            }
            return;
        }
    };
    inner.requests.fetch_add(1, Ordering::SeqCst);
    t.counter("serve.submissions").incr();

    if let Some(detail) = validate(&req) {
        inner.shed_malformed.fetch_add(1, Ordering::SeqCst);
        t.counter("serve.shed.malformed").incr();
        let _ = protocol::send(
            &mut s,
            &ServeMessage::Rejected {
                reason: RejectReason::Malformed,
                detail,
            },
        );
        return;
    }

    // Admission decision under the queue lock, so depth checks and
    // enqueueing are atomic with respect to other admissions.
    let admitted = {
        let mut q = inner.queue.lock().unwrap_or_else(|p| p.into_inner());
        if inner.drain.load(Ordering::SeqCst) {
            Err((RejectReason::Draining, "daemon is draining".to_string()))
        } else if q.len() >= inner.opts.queue_depth {
            Err((
                RejectReason::Overloaded,
                format!("admission queue full (depth {})", inner.opts.queue_depth),
            ))
        } else if let Some(detail) = deadline_infeasible(inner, q.len(), req.deadline_ms) {
            Err((RejectReason::DeadlineInfeasible, detail))
        } else {
            let id = inner.next_request.fetch_add(1, Ordering::SeqCst);
            let accepted_at = Instant::now();
            let item = Queued {
                id,
                req: req.clone(),
                stream: match stream.try_clone() {
                    Ok(write_side) => write_side,
                    Err(_) => return,
                },
                accepted_at,
                deadline: (req.deadline_ms > 0)
                    .then(|| accepted_at + Duration::from_millis(req.deadline_ms)),
                cancel: Arc::new(AtomicBool::new(false)),
                finished: Arc::new(AtomicBool::new(false)),
                accepted_sent: Arc::new(AtomicBool::new(false)),
            };
            let cancel = Arc::clone(&item.cancel);
            let finished = Arc::clone(&item.finished);
            let accepted_sent = Arc::clone(&item.accepted_sent);
            q.push_back(item);
            let depth = q.len();
            t.set_gauge("serve.queue_depth", depth as f64);
            Ok((id, depth as u32, cancel, finished, accepted_sent))
        }
    };

    match admitted {
        Err((reason, detail)) => {
            match reason {
                RejectReason::Overloaded => {
                    inner.shed_overload.fetch_add(1, Ordering::SeqCst);
                }
                RejectReason::DeadlineInfeasible => {
                    inner.shed_deadline.fetch_add(1, Ordering::SeqCst);
                }
                RejectReason::Draining => {
                    inner.shed_draining.fetch_add(1, Ordering::SeqCst);
                }
                RejectReason::Malformed => unreachable!("validated above"),
            }
            t.counter(&format!("serve.shed.{}", reason.label())).incr();
            let _ = protocol::send(&mut s, &ServeMessage::Rejected { reason, detail });
        }
        Ok((request_id, queue_depth, cancel, finished, accepted_sent)) => {
            inner.cv.notify_all();
            // Response frames (the CLSM image) can be large; lift the
            // handshake-scoped write bound for the executor's reply.
            let _ = stream.set_write_timeout(None);
            if protocol::send(
                &mut s,
                &ServeMessage::Accepted {
                    request_id,
                    queue_depth,
                },
            )
            .is_err()
            {
                cancel.store(true, Ordering::SeqCst);
                // Unblock an executor that may already be waiting to
                // write the response.
                accepted_sent.store(true, Ordering::SeqCst);
                return;
            }
            accepted_sent.store(true, Ordering::SeqCst);
            watch_disconnect(&stream, &cancel, &finished);
        }
    }
}

/// Admission-time deadline feasibility: with an observed service-time
/// EWMA, a request whose deadline is shorter than its estimated start +
/// one service time is shed immediately instead of admitted to die.
fn deadline_infeasible(inner: &Inner, queued: usize, deadline_ms: u64) -> Option<String> {
    if deadline_ms == 0 {
        return None;
    }
    let ewma = (*inner.ewma_us.lock().unwrap_or_else(|p| p.into_inner()))?;
    let waiting = queued + inner.busy.load(Ordering::SeqCst);
    let executors = inner.opts.executors.max(1) as f64;
    let est_finish_us = (waiting as f64 / executors + 1.0) * ewma;
    let deadline_us = deadline_ms as f64 * 1_000.0;
    (est_finish_us > deadline_us).then(|| {
        format!(
            "estimated completion {:.0} ms exceeds deadline {deadline_ms} ms \
             ({waiting} request(s) ahead, mean service {:.0} ms)",
            est_finish_us / 1_000.0,
            ewma / 1_000.0
        )
    })
}

/// Blocks until the client hangs up (→ cancel the request) or the
/// request finishes. The read side of the connection is dedicated to
/// this; the executor writes the response on its own clone.
fn watch_disconnect(stream: &TcpStream, cancel: &AtomicBool, finished: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut r = stream;
    let mut scratch = [0u8; 64];
    loop {
        if finished.load(Ordering::SeqCst) {
            return;
        }
        match r.read(&mut scratch) {
            Ok(0) => {
                cancel.store(true, Ordering::SeqCst);
                return;
            }
            Ok(_) => {} // stray bytes; the protocol sends nothing here
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(_) => {
                cancel.store(true, Ordering::SeqCst);
                return;
            }
        }
    }
}

/// One executor: pop → process → respond, until drained.
fn executor_loop(inner: &Arc<Inner>) {
    loop {
        let item = {
            let mut q = inner.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(item) = q.pop_front() {
                    inner.busy.fetch_add(1, Ordering::SeqCst);
                    inner
                        .telemetry
                        .set_gauge("serve.queue_depth", q.len() as f64);
                    break Some(item);
                }
                if inner.drain.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _t) = inner
                    .cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        };
        let Some(item) = item else { return };
        inner
            .telemetry
            .histogram("serve.queue_wait")
            .record_us(item.accepted_at.elapsed().as_micros() as u64);
        let started = Instant::now();
        let response = process(inner, &item);
        let ok = !matches!(response, ServeMessage::Failed { .. });
        // A fast request (a cache hit) can finish before the admission
        // thread has written `Accepted`; wait for that frame so the
        // response never overtakes it on the shared socket.
        while !item.accepted_sent.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut w = &item.stream;
        let _ = protocol::send(&mut w, &response);
        item.finished.store(true, Ordering::SeqCst);
        if ok {
            inner.completed.fetch_add(1, Ordering::SeqCst);
        } else {
            inner.failed.fetch_add(1, Ordering::SeqCst);
        }
        let service_us = started.elapsed().as_micros() as u64;
        inner
            .telemetry
            .histogram("serve.request")
            .record_us(service_us);
        {
            let mut e = inner.ewma_us.lock().unwrap_or_else(|p| p.into_inner());
            let sample = service_us as f64;
            *e = Some(match *e {
                None => sample,
                Some(prev) => 0.3 * sample + 0.7 * prev,
            });
        }
        inner.busy.fetch_sub(1, Ordering::SeqCst);
        inner.cv.notify_all();
    }
}

fn failed(id: u64, kind: FailKind, detail: impl Into<String>) -> ServeMessage {
    ServeMessage::Failed {
        request_id: id,
        kind,
        detail: detail.into(),
    }
}

/// Serves one admitted request end to end.
fn process(inner: &Arc<Inner>, item: &Queued) -> ServeMessage {
    let id = item.id;
    let _span = inner.telemetry.span("serve.process");
    if item.cancel.load(Ordering::SeqCst) {
        return failed(id, FailKind::Canceled, "client disconnected while queued");
    }
    if item.deadline.is_some_and(|d| Instant::now() >= d) {
        return failed(
            id,
            FailKind::DeadlineExceeded,
            "deadline expired while queued",
        );
    }

    let fingerprint = item.req.spec.fingerprint();
    // Memory first, then the persistent spill store (a disk hit is
    // promoted into memory and is every bit a cache hit: zero probe
    // evaluations, byte-identical CLSM), then a real measurement.
    let cached = inner.cache.get(fingerprint).or_else(|| {
        inner.disk.as_ref().and_then(|d| {
            d.load(fingerprint).map(|entry| {
                let entry = Arc::new(entry);
                inner.cache.insert(fingerprint, Arc::clone(&entry));
                entry
            })
        })
    });
    let (omega, cache_hit, evaluations) = match cached {
        Some(entry) => {
            inner.cache_hits.fetch_add(1, Ordering::SeqCst);
            inner.telemetry.counter("serve.cache_hits").incr();
            (entry, true, 0u64)
        }
        None => {
            inner.cache_misses.fetch_add(1, Ordering::SeqCst);
            inner.telemetry.counter("serve.cache_misses").incr();
            match measure(inner, item, fingerprint) {
                Ok((entry, evals)) => (entry, false, evals),
                Err(resp) => return resp,
            }
        }
    };
    inner
        .telemetry
        .set_gauge("serve.cache_entries", inner.cache.len() as f64);
    inner
        .telemetry
        .set_gauge("serve.cache.bytes", inner.cache.bytes() as f64);

    match item.req.op {
        Op::Measure => ServeMessage::MeasureDone {
            request_id: id,
            cache_hit,
            evaluations,
            clsm: omega.clsm.clone(),
        },
        Op::Assign { avg_bits } => match solve_row(inner, item, &omega, avg_bits) {
            Ok(row) => ServeMessage::AssignDone {
                request_id: id,
                cache_hit,
                evaluations,
                row,
            },
            Err(resp) => resp,
        },
        Op::Sweep { from, to, step } => {
            let mut rows = Vec::new();
            let mut budget = from;
            // The f64 walk tolerates accumulation error at the upper
            // bound (4.0 after eight 0.25 steps must still be included).
            while budget <= to + 1e-9 {
                match solve_row(inner, item, &omega, budget) {
                    Ok(row) => rows.push(row),
                    Err(resp) => return resp,
                }
                budget += step;
            }
            ServeMessage::SweepDone {
                request_id: id,
                cache_hit,
                evaluations,
                rows,
            }
        }
    }
}

/// Measures Ω for a cache miss: model build, shard grid on the pool,
/// assembly, cache population. Returns the cached entry plus the probe
/// evaluations spent.
// The Err is a ready-to-send `Failed` frame; this is a cold path, so
// boxing it would only add noise at every `?` site.
#[allow(clippy::result_large_err)]
fn measure(
    inner: &Arc<Inner>,
    item: &Queued,
    fingerprint: u64,
) -> Result<(Arc<CachedOmega>, u64), ServeMessage> {
    let id = item.id;
    let spec = &item.req.spec;
    let _span = inner.telemetry.span("serve.measure");
    let (mut network, set) = (inner.provider)(spec)
        .map_err(|e| failed(id, FailKind::Internal, format!("model provider: {e}")))?;
    let bits = BitWidthSet::new(&spec.bits); // widths validated at admission
    let scheme = scheme_from_u8(spec.scheme).expect("scheme validated at admission");
    let ctx = ShardContext::new(
        &network,
        set.len(),
        &bits,
        scheme,
        spec.batch_size as usize,
        spec.use_prefix_cache,
    );
    let started = Instant::now();
    let telemetry = inner.telemetry.clone();
    // Estimation requests (admission validated the tag: 1–3, never
    // hutchinson) rebuild the same deterministic probe plan pooled
    // workers derive from the job's estimator fields; the job
    // fingerprint becomes the estimation fingerprint so only workers
    // with the identical plan pass the Ready check.
    let estimator = EstimatorKind::from_tag(spec.estimator);
    let (planner, plan_stats) = match estimator {
        Some(kind) => {
            let budget = resolved_probe_budget(&ctx, spec.probe_budget as usize);
            let (planner, _fresh, stats) = ProbePlanner::build(
                &ctx,
                &mut network,
                &set,
                &telemetry,
                kind,
                budget,
                spec.estimator_seed,
                &HashMap::new(),
            )
            .map_err(|e| failed(id, FailKind::Internal, format!("probe planning: {e}")))?;
            (Some(planner), stats)
        }
        None => (None, Default::default()),
    };
    let job_fingerprint = match estimator {
        Some(kind) => {
            estimation_fingerprint(&ctx, kind, spec.probe_budget as usize, spec.estimator_seed)
        }
        None => ctx.fingerprint(),
    };
    let job = JobSpec {
        model: spec.model.clone(),
        set_size: spec.set_size,
        set_seed: spec.set_seed,
        batch_size: spec.batch_size,
        bits: spec.bits.clone(),
        scheme: spec.scheme,
        use_prefix_cache: spec.use_prefix_cache,
        fingerprint: job_fingerprint,
        // Pooled jobs do not ship worker trace events; request latency
        // is captured by the serve.request histogram instead.
        trace_id: 0,
        estimator: spec.estimator,
        probe_budget: spec.probe_budget,
        estimator_seed: spec.estimator_seed,
    };
    // Interim progress: `planned_probes` already counts the memoized
    // base+diagonal records an estimation plan replays, so both totals
    // match what the pool integrates record by record.
    let probes_total = match planner.as_ref() {
        Some(p) => p.planned_probes() as u64,
        None => ctx.total_probes() as u64,
    };
    let mut progress_writer = &item.stream;
    let accepted_sent = Arc::clone(&item.accepted_sent);
    let outcome = inner
        .pool
        .run_job(
            job,
            ctx.shards(),
            &item.cancel,
            item.deadline,
            |shard| match planner.as_ref() {
                Some(p) => p.run_shard(&ctx, &mut network, &set, shard, &telemetry),
                None => ctx.run_shard(&mut network, &set, shard, &telemetry),
            },
            |probes_done| {
                // Never write before the admission thread's `Accepted`
                // frame is on the wire — and never fail the request over
                // a progress frame (a vanished client raises the cancel
                // flag through the disconnect watcher anyway).
                if accepted_sent.load(Ordering::SeqCst) {
                    let _ = protocol::send(
                        &mut progress_writer,
                        &ServeMessage::Progress {
                            request_id: id,
                            probes_done: probes_done.min(probes_total),
                            probes_total,
                        },
                    );
                }
            },
        )
        .map_err(|f| match f {
            JobFailure::DeadlineExceeded => failed(
                id,
                FailKind::DeadlineExceeded,
                "deadline expired mid-measure",
            ),
            JobFailure::Canceled => failed(id, FailKind::Canceled, "request canceled mid-measure"),
            JobFailure::WorkerRetriesExhausted(detail) => {
                failed(id, FailKind::WorkerRetriesExhausted, detail)
            }
        })?;
    let (matrix, base_loss, quarantined) = match estimator {
        Some(kind) => {
            let assembly = ctx
                .assemble_partial(&outcome.records)
                .map_err(|e| failed(id, FailKind::Internal, format!("assembly: {e}")))?;
            let completed = complete_partial(
                kind,
                &assembly.g,
                &assembly.observed,
                DEFAULT_ALS_RANK,
                DEFAULT_ALS_ITERS,
                spec.estimator_seed,
            );
            (completed, assembly.base_loss, assembly.quarantined)
        }
        None => ctx
            .assemble(&outcome.records)
            .map_err(|e| failed(id, FailKind::Internal, format!("assembly: {e}")))?,
    };
    // The planner's local base+diagonal pass for an estimation request
    // runs outside the pool, so its evaluations are added here.
    let evaluations =
        outcome.full_evals + outcome.cache_hits + plan_stats.full_evals + plan_stats.cache_hits;
    let stats = SensitivityStats {
        evaluations: evaluations as usize,
        seconds: started.elapsed().as_secs_f64(),
        threads_used: outcome.workers_used.max(1),
        prefix_cache_builds: (outcome.cache_builds + plan_stats.cache_builds) as usize,
        prefix_cache_hits: (outcome.cache_hits + plan_stats.cache_hits) as usize,
        full_evals: (outcome.full_evals + plan_stats.full_evals) as usize,
        resumed: 0,
        retried: (outcome.retried + plan_stats.retried) as usize,
        quarantined,
        provenance: match estimator {
            Some(kind) => OmegaProvenance::estimated(
                kind.tag(),
                resolved_probe_budget(&ctx, spec.probe_budget as usize) as u64,
                spec.estimator_seed,
            ),
            None => OmegaProvenance::exact(),
        },
    };
    let matrix = SensitivityMatrix::from_parts(
        matrix,
        ctx.num_layers(),
        ctx.bits().clone(),
        base_loss,
        stats,
    );
    let entry = Arc::new(CachedOmega {
        clsm: sensitivities_to_bytes(&matrix),
        param_counts: network.layer_param_counts(),
        matrix,
    });
    inner.cache.insert(fingerprint, Arc::clone(&entry));
    if let Some(disk) = &inner.disk {
        // Spill-store commits are best-effort: a full or read-only disk
        // costs persistence, never the request.
        if let Err(e) = disk.store(fingerprint, &entry) {
            inner
                .telemetry
                .counter("serve.disk_cache.store_errors")
                .incr();
            if inner.opts.verbose {
                eprintln!("serve: disk-cache store failed for {fingerprint:#018x}: {e}");
            }
        }
    }
    Ok((entry, evaluations))
}

/// Solves one budget row, threading the request deadline and cancel
/// flag into the solver so the anytime ladder degrades instead of
/// overrunning.
#[allow(clippy::result_large_err)]
fn solve_row(
    inner: &Arc<Inner>,
    item: &Queued,
    omega: &CachedOmega,
    avg_bits: f64,
) -> Result<AssignRow, ServeMessage> {
    let _span = inner.telemetry.span("serve.solve");
    let sizes = LayerSizes::new(omega.param_counts.clone());
    let budget = sizes.budget_from_avg_bits(avg_bits);
    let options = AssignOptions {
        solver: SolverConfig {
            deadline: item.deadline,
            cancel: Arc::clone(&item.cancel),
            telemetry: inner.telemetry.clone(),
            ..SolverConfig::default()
        },
        telemetry: inner.telemetry.clone(),
        ..AssignOptions::default()
    };
    let assignment = assign_bits(&omega.matrix, &sizes, budget, &options)
        .map_err(|e| failed(item.id, FailKind::Internal, format!("solve: {e}")))?;
    if item.cancel.load(Ordering::SeqCst) {
        return Err(failed(
            item.id,
            FailKind::Canceled,
            "request canceled mid-solve",
        ));
    }
    Ok(AssignRow {
        avg_bits: assignment.avg_bits(&sizes),
        bits: assignment.bits.iter().map(|b| b.bits()).collect(),
        predicted_delta_loss: assignment.predicted_delta_loss,
        cost_bits: assignment.cost_bits,
        gap: assignment.solution.gap,
        method: assignment.solution.method_used.label().to_string(),
        termination: assignment.solution.termination.label().to_string(),
    })
}
