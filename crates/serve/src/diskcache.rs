//! The persistent Ω cache: spills [`CachedOmega`] entries to disk so a
//! restarted (or SIGKILLed) daemon answers repeat configs with zero
//! probe evaluations, bitwise identical to the pre-crash reply.
//!
//! One entry per file, named `omega-<fingerprint:016x>.clso`, where the
//! fingerprint is the [`crate::protocol::MeasureSpec::fingerprint`] FNV
//! fold — which already covers the estimator tag, probe budget, and
//! estimator seed, so exact and estimated Ω entries can never collide
//! on disk any more than they can in memory. The value is the
//! *already-serialized* CLSM image plus the layer-size vector a solve
//! needs, wrapped in a checksummed envelope:
//!
//! ```text
//! magic "CLSO" (4) | version u32 LE | fingerprint u64 LE
//! | param_count u32 LE | param_counts (u64 LE each)
//! | clsm_len u32 LE | clsm bytes | FNV-1a checksum u64 LE
//! ```
//!
//! Commits follow the CLSJ journal's atomic discipline — write
//! `.clso.tmp`, fsync, rename over the final name, fsync the directory
//! — so a crash mid-write leaves at worst a stray `.tmp` that the next
//! open cleans up, never a half-written committed entry. A committed
//! entry that is nevertheless corrupt (bit rot, truncation by the
//! filesystem) is *quarantined* on load: deleted and treated as a miss,
//! so the request re-measures instead of the daemon crashing or serving
//! garbage. Eviction is LRU by on-disk byte budget.

use crate::cache::CachedOmega;
use clado_core::sensitivities_from_bytes;
use clado_telemetry::{faultpoint, Telemetry};
use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const MAGIC: [u8; 4] = *b"CLSO";
const VERSION: u32 = 1;

/// FNV-1a over raw bytes (same function as the wire checksum and the
/// journal fingerprint).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The on-disk Ω spill store. All methods serialize on an internal
/// mutex: entries are small (a CLSM image) and stores are rare (one per
/// cache miss), so contention is not a concern.
pub struct DiskCache {
    dir: PathBuf,
    /// On-disk byte budget across committed entries (0 = unbounded).
    budget: u64,
    telemetry: Telemetry,
    inner: Mutex<Inner>,
}

struct Inner {
    /// Committed entry sizes by fingerprint.
    sizes: HashMap<u64, u64>,
    /// Recency order, most recent last (seeded from mtime at open).
    order: Vec<u64>,
    /// Total committed bytes.
    total: u64,
}

impl DiskCache {
    /// Opens (creating if needed) the store under `dir`, cleaning stray
    /// `.tmp` files from interrupted commits and indexing every
    /// committed entry by its filename fingerprint. Entry *contents*
    /// are validated lazily on [`Self::load`], so a corrupt file costs
    /// nothing until the config it claims to hold is requested.
    pub fn open(dir: &Path, budget: u64, telemetry: Telemetry) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let mut found: Vec<(std::time::SystemTime, u64, u64)> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                let _ = fs::remove_file(&path);
                continue;
            }
            let Some(key) = fingerprint_of(&path) else {
                continue;
            };
            let meta = entry.metadata()?;
            let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            found.push((mtime, key, meta.len()));
        }
        // Oldest first, fingerprint as a deterministic tiebreak.
        found.sort_by_key(|&(mtime, key, _)| (mtime, key));
        let mut inner = Inner {
            sizes: HashMap::new(),
            order: Vec::new(),
            total: 0,
        };
        for (_, key, len) in found {
            inner.sizes.insert(key, len);
            inner.order.push(key);
            inner.total += len;
        }
        telemetry.set_gauge("serve.disk_cache.bytes", inner.total as f64);
        Ok(Self {
            dir: dir.to_path_buf(),
            budget,
            telemetry,
            inner: Mutex::new(inner),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of committed entries.
    pub fn len(&self) -> usize {
        self.lock().sizes.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total committed bytes on disk.
    pub fn bytes(&self) -> u64 {
        self.lock().total
    }

    /// Committed fingerprints, most recently used first — the warm-load
    /// order, so a bounded in-memory cache fills with the entries most
    /// likely to be asked for again.
    pub fn keys_most_recent_first(&self) -> Vec<u64> {
        let g = self.lock();
        g.order.iter().rev().copied().collect()
    }

    /// Loads and validates one entry, refreshing its recency. Any
    /// defect — bad magic, version, fingerprint mismatch, checksum
    /// failure, undecodable CLSM image — quarantines the file (delete,
    /// count, return a miss) rather than failing the request or the
    /// daemon.
    pub fn load(&self, key: u64) -> Option<CachedOmega> {
        let mut g = self.lock();
        if !g.sizes.contains_key(&key) {
            return None;
        }
        let path = self.path_of(key);
        match fs::read(&path).ok().and_then(|data| decode(key, &data)) {
            Some(entry) => {
                g.order.retain(|&k| k != key);
                g.order.push(key);
                self.telemetry.counter("serve.disk_cache.hits").incr();
                Some(entry)
            }
            None => {
                self.quarantine(&mut g, key, &path);
                None
            }
        }
    }

    /// Like [`Self::load`] but *without* refreshing recency or counting
    /// a hit — the warm-load path at daemon startup, which walks entries
    /// oldest-to-newest and must not invert the on-disk LRU order (or
    /// report startup reads as client cache hits). Corrupt entries are
    /// still quarantined.
    pub fn peek(&self, key: u64) -> Option<CachedOmega> {
        let mut g = self.lock();
        if !g.sizes.contains_key(&key) {
            return None;
        }
        let path = self.path_of(key);
        match fs::read(&path).ok().and_then(|data| decode(key, &data)) {
            Some(entry) => Some(entry),
            None => {
                self.quarantine(&mut g, key, &path);
                None
            }
        }
    }

    /// Deletes a defective entry and debits its accounting.
    fn quarantine(&self, g: &mut Inner, key: u64, path: &Path) {
        let _ = fs::remove_file(path);
        if let Some(len) = g.sizes.remove(&key) {
            g.total -= len;
        }
        g.order.retain(|&k| k != key);
        self.telemetry
            .counter("serve.disk_cache.quarantined")
            .incr();
        self.telemetry
            .set_gauge("serve.disk_cache.bytes", g.total as f64);
    }

    /// Commits one entry atomically (tmp → fsync → rename → fsync dir),
    /// then evicts least-recently-used entries while the byte budget is
    /// exceeded. The entry just written is never its own victim.
    pub fn store(&self, key: u64, entry: &CachedOmega) -> io::Result<()> {
        let data = encode(key, entry);
        let mut g = self.lock();
        let path = self.path_of(key);
        let tmp = path.with_extension("clso.tmp");
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&data)?;
            file.sync_all()?;
        }
        // An `abort` armed here leaves only the fsynced tmp file behind
        // — the partial-write crash the open path must shrug off.
        faultpoint!("serve.diskcache.commit");
        fs::rename(&tmp, &path)?;
        if let Ok(d) = fs::File::open(&self.dir) {
            d.sync_all().ok();
        }
        if let Some(old) = g.sizes.remove(&key) {
            g.total -= old;
        }
        g.order.retain(|&k| k != key);
        g.sizes.insert(key, data.len() as u64);
        g.order.push(key);
        g.total += data.len() as u64;
        while self.budget > 0 && g.total > self.budget && g.order.len() > 1 {
            let victim = g.order.remove(0);
            if let Some(len) = g.sizes.remove(&victim) {
                g.total -= len;
            }
            let _ = fs::remove_file(self.path_of(victim));
            self.telemetry.counter("serve.disk_cache.evictions").incr();
        }
        self.telemetry
            .set_gauge("serve.disk_cache.bytes", g.total as f64);
        Ok(())
    }

    fn path_of(&self, key: u64) -> PathBuf {
        self.dir.join(format!("omega-{key:016x}.clso"))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Parses the fingerprint out of an `omega-<16 hex>.clso` filename;
/// foreign files in the cache directory are left alone.
fn fingerprint_of(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let hex = name.strip_prefix("omega-")?.strip_suffix(".clso")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn encode(key: u64, entry: &CachedOmega) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + entry.param_counts.len() * 8 + entry.clsm.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(entry.param_counts.len() as u32).to_le_bytes());
    for &n in &entry.param_counts {
        out.extend_from_slice(&(n as u64).to_le_bytes());
    }
    out.extend_from_slice(&(entry.clsm.len() as u32).to_le_bytes());
    out.extend_from_slice(&entry.clsm);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decodes and fully validates one entry image; `None` on any defect.
fn decode(key: u64, data: &[u8]) -> Option<CachedOmega> {
    if data.len() < 4 + 4 + 8 + 4 + 4 + 8 {
        return None;
    }
    let (body, sum_bytes) = data.split_at(data.len() - 8);
    let declared = u64::from_le_bytes(sum_bytes.try_into().ok()?);
    if fnv1a(body) != declared {
        return None;
    }
    if body[..4] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(body[4..8].try_into().ok()?);
    if version != VERSION {
        return None;
    }
    let fp = u64::from_le_bytes(body[8..16].try_into().ok()?);
    if fp != key {
        return None;
    }
    let count = u32::from_le_bytes(body[16..20].try_into().ok()?) as usize;
    let mut at = 20;
    if body.len() < at + count * 8 + 4 {
        return None;
    }
    let mut param_counts = Vec::with_capacity(count);
    for _ in 0..count {
        let n = u64::from_le_bytes(body[at..at + 8].try_into().ok()?);
        param_counts.push(usize::try_from(n).ok()?);
        at += 8;
    }
    let clsm_len = u32::from_le_bytes(body[at..at + 4].try_into().ok()?) as usize;
    at += 4;
    if body.len() != at + clsm_len {
        return None;
    }
    let clsm = body[at..].to_vec();
    let matrix = sensitivities_from_bytes(&clsm).ok()?;
    Some(CachedOmega {
        matrix,
        clsm,
        param_counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_core::{sensitivities_to_bytes, SensitivityMatrix, SensitivityStats};
    use clado_quant::BitWidthSet;
    use clado_solver::SymMatrix;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "clado-diskcache-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn entry(dim: usize) -> CachedOmega {
        let mut m = SymMatrix::zeros(dim);
        for u in 0..dim {
            for v in u..dim {
                m.set(u, v, (u * dim + v) as f64 * 0.25 + 1.0);
            }
        }
        let matrix = SensitivityMatrix::from_parts(
            m,
            dim / 2,
            BitWidthSet::new(&[4, 8]),
            0.5,
            SensitivityStats::default(),
        );
        CachedOmega {
            clsm: sensitivities_to_bytes(&matrix),
            matrix,
            param_counts: vec![10; dim / 2],
        }
    }

    #[test]
    fn round_trips_bitwise_across_a_reopen() {
        let dir = temp_dir("roundtrip");
        let cache = DiskCache::open(&dir, 0, Telemetry::disabled()).unwrap();
        let original = entry(4);
        cache.store(0xDEAD_BEEF, &original).unwrap();
        drop(cache);

        // A "restarted daemon": fresh store over the same directory.
        let reopened = DiskCache::open(&dir, 0, Telemetry::disabled()).unwrap();
        assert_eq!(reopened.len(), 1);
        let loaded = reopened.load(0xDEAD_BEEF).expect("entry survives reopen");
        assert_eq!(loaded.clsm, original.clsm, "CLSM image is bitwise intact");
        assert_eq!(loaded.param_counts, original.param_counts);
        assert_eq!(
            loaded.matrix.base_loss.to_bits(),
            original.matrix.base_loss.to_bits()
        );
        assert!(reopened.load(0x1234).is_none(), "unknown keys miss");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_quarantined_not_fatal() {
        let dir = temp_dir("corrupt");
        let telemetry = Telemetry::new();
        let cache = DiskCache::open(&dir, 0, telemetry.clone()).unwrap();
        cache.store(7, &entry(4)).unwrap();
        let path = dir.join(format!("omega-{:016x}.clso", 7));
        let mut data = fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x40;
        fs::write(&path, &data).unwrap();

        assert!(cache.load(7).is_none(), "corrupt entry reads as a miss");
        assert!(!path.exists(), "the corrupt file is deleted");
        assert_eq!(telemetry.counter_value("serve.disk_cache.quarantined"), 1);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.bytes(), 0);
        // The key is re-storable after quarantine.
        cache.store(7, &entry(4)).unwrap();
        assert!(cache.load(7).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stray_tmp_files_are_cleaned_and_never_indexed() {
        let dir = temp_dir("tmp");
        fs::create_dir_all(&dir).unwrap();
        // A crash between fsync and rename leaves exactly this.
        fs::write(dir.join("omega-00000000000000aa.clso.tmp"), b"partial").unwrap();
        let cache = DiskCache::open(&dir, 0, Telemetry::disabled()).unwrap();
        assert!(cache.is_empty());
        assert!(!dir.join("omega-00000000000000aa.clso.tmp").exists());
        assert!(cache.load(0xAA).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_budget_evicts_oldest_entries_first() {
        let dir = temp_dir("budget");
        let telemetry = Telemetry::new();
        let one = encode(1, &entry(4)).len() as u64;
        let cache = DiskCache::open(&dir, one * 2 + 1, telemetry.clone()).unwrap();
        cache.store(1, &entry(4)).unwrap();
        cache.store(2, &entry(4)).unwrap();
        // Touch 1 so 2 becomes the eviction victim.
        assert!(cache.load(1).is_some());
        cache.store(3, &entry(4)).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.bytes() <= one * 2 + 1);
        assert!(cache.load(2).is_none(), "oldest entry evicted");
        assert!(cache.load(1).is_some());
        assert!(cache.load(3).is_some());
        assert_eq!(telemetry.counter_value("serve.disk_cache.evictions"), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_load_order_is_most_recent_first() {
        let dir = temp_dir("order");
        let cache = DiskCache::open(&dir, 0, Telemetry::disabled()).unwrap();
        cache.store(1, &entry(4)).unwrap();
        cache.store(2, &entry(4)).unwrap();
        assert!(cache.load(1).is_some(), "refresh 1");
        assert_eq!(cache.keys_most_recent_first(), vec![1, 2]);
        // Peeking (the warm-load read) must not perturb recency.
        assert!(cache.peek(2).is_some());
        assert_eq!(cache.keys_most_recent_first(), vec![1, 2]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_files_in_the_cache_dir_are_left_alone() {
        let dir = temp_dir("foreign");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("notes.txt"), b"user data").unwrap();
        fs::write(dir.join("omega-short.clso"), b"not 16 hex chars").unwrap();
        let cache = DiskCache::open(&dir, 0, Telemetry::disabled()).unwrap();
        assert!(cache.is_empty());
        assert!(dir.join("notes.txt").exists());
        assert!(dir.join("omega-short.clso").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
