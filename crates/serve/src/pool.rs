//! The daemon's warm worker pool: a multi-job shard coordinator.
//!
//! The one-shot [`clado_dist::Coordinator`] binds a socket per sweep and
//! shuts its workers down when the sweep ends. A daemon inverts that
//! lifecycle: worker connections are *pooled* — they outlive any single
//! request — and jobs come and go. This module keeps the lease /
//! heartbeat / eviction state machine of the one-shot coordinator (any
//! frame resets the deadline; every exit path requeues what the worker
//! held) and adds what a long-running pool needs:
//!
//! * **Per-shard retry accounting with backoff.** A shard requeued by an
//!   eviction carries an attempt count and a not-before instant (100 ms
//!   doubling to 1.6 s); past [`PoolOptions::shard_retries`] attempts the
//!   *job* fails with a retries-exhausted error — never the daemon.
//! * **`JobDone` instead of `Shutdown`.** When a job's last shard lands,
//!   workers leasing from it are told the job is over and return to the
//!   idle pool, warm. `Shutdown` is reserved for daemon drain.
//! * **Local takeover.** A job registered while zero workers are live is
//!   evaluated in-process by the caller's closure, so a daemon with no
//!   fleet still serves requests (slowly) instead of hanging.

use crate::error::ServeError;
use clado_core::{ProbeId, ProbeRecord, ShardRunStats, ShardSpec};
use clado_dist::{protocol, JobSpec, Message, PROTOCOL_VERSION};
use clado_telemetry::Telemetry;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Milliseconds a worker is told to wait when its job has nothing
/// leasable right now (all shards leased, or requeued under backoff).
const IDLE_RETRY_MS: u32 = 50;

/// Read timeout while a worker idles between jobs: short, so the
/// connection thread notices new jobs and drain promptly.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Options controlling the worker pool.
#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// A worker that sends no frame for this long loses its leases.
    pub heartbeat_timeout: Duration,
    /// A shard evicted (worker death, hang, or protocol violation) more
    /// than this many times fails its job with
    /// [`JobFailure::WorkerRetriesExhausted`].
    pub shard_retries: u32,
    /// Telemetry sink for pool counters and gauges.
    pub telemetry: Telemetry,
    /// Print coarse progress to stderr.
    pub verbose: bool,
}

impl Default for PoolOptions {
    fn default() -> Self {
        Self {
            heartbeat_timeout: Duration::from_secs(3),
            shard_retries: 5,
            telemetry: Telemetry::disabled(),
            verbose: false,
        }
    }
}

/// What one completed job produced.
pub struct JobOutcome {
    /// Every probe record of the job's grid, keyed by probe id.
    pub records: HashMap<ProbeId, ProbeRecord>,
    /// Evaluations that ran the full forward pass.
    pub full_evals: u64,
    /// Evaluations served from prefix-activation caches.
    pub cache_hits: u64,
    /// Prefix caches built.
    pub cache_builds: u64,
    /// Non-finite losses re-evaluated once.
    pub retried: u64,
    /// Summed shard-evaluation wall time across workers.
    pub seconds: f64,
    /// Distinct pooled workers that completed at least one shard.
    pub workers_used: usize,
    /// Shards evaluated in-process because no worker was live.
    pub local_shards: u64,
}

/// Why a job (never the daemon) failed.
#[derive(Debug)]
pub enum JobFailure {
    /// The caller's deadline expired before the grid completed.
    DeadlineExceeded,
    /// The caller's cancel flag was raised (client disconnect, drain).
    Canceled,
    /// Some shard was evicted past the retry cap.
    WorkerRetriesExhausted(String),
}

#[derive(Default)]
struct AggStats {
    full_evals: u64,
    cache_hits: u64,
    cache_builds: u64,
    retried: u64,
}

struct JobState {
    spec: JobSpec,
    pending: VecDeque<ShardSpec>,
    /// Earliest re-lease instant for shards requeued by an eviction.
    not_before: HashMap<ShardSpec, Instant>,
    /// Evictions suffered per shard.
    attempts: HashMap<ShardSpec, u32>,
    /// lease id → (shard, worker id).
    leases: HashMap<u64, (ShardSpec, u64)>,
    done: HashSet<ShardSpec>,
    total: usize,
    records: HashMap<ProbeId, ProbeRecord>,
    agg: AggStats,
    workers_used: HashSet<u64>,
    seconds: f64,
    /// Retries-exhausted detail; set once, checked by the waiter.
    failed: Option<String>,
}

struct PoolState {
    jobs: BTreeMap<u64, JobState>,
    next_job: u64,
    next_lease: u64,
    /// worker id → pid of currently connected, handshaken workers.
    live_workers: HashMap<u64, u32>,
}

struct Shared {
    state: Mutex<PoolState>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Live connection threads (accept-side guard for drain).
    conns: AtomicUsize,
    telemetry: Telemetry,
    heartbeat_timeout: Duration,
    shard_retries: u32,
    verbose: bool,
}

/// Backoff before re-leasing a shard after its `attempt`-th eviction
/// (1-based): 100 ms doubling to a 1.6 s cap. Deliberately jitter-free —
/// re-leases are serialized through the scheduler lock, so there is no
/// thundering herd to break up.
fn retry_backoff(attempt: u32) -> Duration {
    const BASE_MS: u64 = 100;
    const CAP_MS: u64 = 1_600;
    Duration::from_millis((BASE_MS << attempt.saturating_sub(1).min(10)).min(CAP_MS))
}

/// A pool of warm worker connections serving a stream of measurement
/// jobs. Bind once ([`WorkerPool::bind`]), run any number of jobs
/// ([`WorkerPool::run_job`]) from any number of threads, then
/// [`WorkerPool::shutdown`].
pub struct WorkerPool {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl WorkerPool {
    /// Binds the worker-facing socket and starts accepting pooled
    /// workers. Use address `127.0.0.1:0` to let the OS pick a port.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the address cannot be bound.
    pub fn bind(addr: &str, opts: PoolOptions) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                jobs: BTreeMap::new(),
                next_job: 1,
                next_lease: 1,
                live_workers: HashMap::new(),
            }),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            telemetry: opts.telemetry.clone(),
            heartbeat_timeout: opts.heartbeat_timeout,
            shard_retries: opts.shard_retries,
            verbose: opts.verbose,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || {
            let mut next_worker = 1u64;
            while !accept_shared.shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let id = next_worker;
                        next_worker += 1;
                        let shared = Arc::clone(&accept_shared);
                        shared.conns.fetch_add(1, Ordering::SeqCst);
                        std::thread::spawn(move || {
                            serve_pool_conn(stream, id, &shared);
                            shared.conns.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(Self {
            shared,
            addr,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The address pooled workers should connect to.
    pub fn worker_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently connected, handshaken workers.
    pub fn live_workers(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .live_workers
            .len()
    }

    /// Runs one measurement job to completion: registers the shard grid,
    /// lets pooled workers lease from it, and blocks until every shard
    /// is done (or the job fails). `local` evaluates one shard
    /// in-process and is only consulted while zero workers are live.
    /// `progress` is called (outside the pool lock) with the cumulative
    /// probe-record count each time it grows — the feed for the interim
    /// `Progress` frames streamed to a waiting client.
    ///
    /// # Errors
    ///
    /// [`JobFailure::DeadlineExceeded`] / [`JobFailure::Canceled`] when
    /// the caller's deadline or cancel flag fires first, and
    /// [`JobFailure::WorkerRetriesExhausted`] when a shard was evicted
    /// past the retry cap. Failures never tear down the pool.
    pub fn run_job(
        &self,
        spec: JobSpec,
        shards: Vec<ShardSpec>,
        cancel: &AtomicBool,
        deadline: Option<Instant>,
        mut local: impl FnMut(ShardSpec) -> (Vec<ProbeRecord>, ShardRunStats),
        mut progress: impl FnMut(u64),
    ) -> Result<JobOutcome, JobFailure> {
        let total = shards.len();
        let job_id = {
            let mut g = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
            let id = g.next_job;
            g.next_job += 1;
            g.jobs.insert(
                id,
                JobState {
                    spec,
                    pending: shards.into(),
                    not_before: HashMap::new(),
                    attempts: HashMap::new(),
                    leases: HashMap::new(),
                    done: HashSet::new(),
                    total,
                    records: HashMap::new(),
                    agg: AggStats::default(),
                    workers_used: HashSet::new(),
                    seconds: 0.0,
                    failed: None,
                },
            );
            id
        };
        self.shared.cv.notify_all();
        self.shared.telemetry.counter("serve.pool.jobs").incr();

        let mut local_shards = 0u64;
        let mut reported = 0u64;
        let mut g = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            let Some(job) = g.jobs.get_mut(&job_id) else {
                unreachable!("job {job_id} only removed by this waiter");
            };
            // Report record growth outside the lock: the callback writes
            // to a client socket, which must never stall the scheduler.
            let integrated = job.records.len() as u64;
            if integrated > reported && job.done.len() < job.total {
                reported = integrated;
                drop(g);
                progress(reported);
                g = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
                continue;
            }
            let Some(job) = g.jobs.get_mut(&job_id) else {
                unreachable!("job {job_id} only removed by this waiter");
            };
            if let Some(detail) = job.failed.take() {
                g.jobs.remove(&job_id);
                self.shared.cv.notify_all();
                return Err(JobFailure::WorkerRetriesExhausted(detail));
            }
            if job.done.len() == job.total {
                let job = g.jobs.remove(&job_id).expect("job present");
                self.shared.cv.notify_all();
                return Ok(JobOutcome {
                    records: job.records,
                    full_evals: job.agg.full_evals,
                    cache_hits: job.agg.cache_hits,
                    cache_builds: job.agg.cache_builds,
                    retried: job.agg.retried,
                    seconds: job.seconds,
                    workers_used: job.workers_used.len(),
                    local_shards,
                });
            }
            if cancel.load(Ordering::Relaxed) {
                g.jobs.remove(&job_id);
                self.shared.cv.notify_all();
                return Err(JobFailure::Canceled);
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                g.jobs.remove(&job_id);
                self.shared.cv.notify_all();
                return Err(JobFailure::DeadlineExceeded);
            }
            // Local takeover: with no live workers, the waiter itself
            // evaluates pending shards (backoff ignored — there is no
            // other worker to wait for).
            if g.live_workers.is_empty() {
                if let Some(shard) = g
                    .jobs
                    .get_mut(&job_id)
                    .and_then(|job| job.pending.pop_front())
                {
                    drop(g);
                    let (records, stats) = local(shard);
                    local_shards += 1;
                    self.shared
                        .telemetry
                        .counter("serve.pool.local_shards")
                        .incr();
                    g = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
                    if let Some(job) = g.jobs.get_mut(&job_id) {
                        integrate_done(job, None, None, shard, &records, &stats);
                    }
                    continue;
                }
            }
            let (guard, _timeout) = self
                .shared
                .cv
                .wait_timeout(g, Duration::from_millis(50))
                .unwrap_or_else(|p| p.into_inner());
            g = guard;
        }
    }

    /// Drains the pool: stops accepting, tells every idle worker to shut
    /// down, and waits (bounded) for connection threads to finish.
    /// Workers mid-lease finish naturally once their jobs are removed.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        if let Some(handle) = self.accept.lock().unwrap_or_else(|p| p.into_inner()).take() {
            let _ = handle.join();
        }
        // Connection threads notice the flag within one idle poll and
        // send Shutdown; bound the wait so a wedged socket cannot hold
        // the daemon's exit hostage.
        let deadline = Instant::now() + self.shared.heartbeat_timeout + Duration::from_secs(1);
        while self.shared.conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Integrates one completed shard (idempotently — duplicate completions
/// after an eviction/re-lease race are ignored record-by-record).
fn integrate_done(
    job: &mut JobState,
    worker: Option<u64>,
    lease: Option<u64>,
    shard: ShardSpec,
    records: &[ProbeRecord],
    stats: &ShardRunStats,
) {
    if let Some(lease) = lease {
        job.leases.remove(&lease);
    }
    if job.done.contains(&shard) {
        return;
    }
    for rec in records {
        job.records.entry(rec.id).or_insert(*rec);
    }
    job.done.insert(shard);
    job.agg.full_evals += stats.full_evals;
    job.agg.cache_hits += stats.cache_hits;
    job.agg.cache_builds += stats.cache_builds;
    job.agg.retried += stats.retried;
    job.seconds += stats.seconds;
    if let Some(w) = worker {
        job.workers_used.insert(w);
    }
}

/// Requeues every lease `worker` held, bumping per-shard attempt counts
/// and backoff. A shard past the retry cap fails its job. Returns how
/// many leases were evicted.
fn evict_worker(g: &mut PoolState, worker: u64, shard_retries: u32) -> u64 {
    let now = Instant::now();
    let mut evicted = 0u64;
    for job in g.jobs.values_mut() {
        let held: Vec<u64> = job
            .leases
            .iter()
            .filter(|(_, (_, w))| *w == worker)
            .map(|(&l, _)| l)
            .collect();
        for lease in held {
            let Some((shard, _)) = job.leases.remove(&lease) else {
                continue;
            };
            evicted += 1;
            if job.done.contains(&shard) {
                continue;
            }
            let attempts = job.attempts.entry(shard).or_insert(0);
            *attempts += 1;
            if *attempts > shard_retries {
                job.failed.get_or_insert_with(|| {
                    format!(
                        "shard {shard} evicted {attempts} times across workers \
                         (retry cap {shard_retries})"
                    )
                });
                continue;
            }
            let attempts = *attempts;
            job.not_before.insert(shard, now + retry_backoff(attempts));
            job.pending.push_front(shard);
        }
    }
    g.live_workers.remove(&worker);
    evicted
}

/// Pops the first shard whose backoff (if any) has expired.
fn pop_leasable(job: &mut JobState, now: Instant) -> Option<ShardSpec> {
    let idx = job
        .pending
        .iter()
        .position(|s| job.not_before.get(s).is_none_or(|&t| t <= now))?;
    job.pending.remove(idx)
}

/// First job a newly idle worker should serve: prefer one with a shard
/// leasable right now, else one with any outstanding work (so the worker
/// is on station when a backoff expires or a re-lease is needed).
fn pick_job(g: &mut PoolState) -> Option<(u64, JobSpec)> {
    let now = Instant::now();
    let leasable = g.jobs.iter().find_map(|(&id, job)| {
        let open = job.failed.is_none() && job.done.len() < job.total;
        (open
            && job
                .pending
                .iter()
                .any(|s| job.not_before.get(s).is_none_or(|&t| t <= now)))
        .then(|| (id, job.spec.clone()))
    });
    leasable.or_else(|| {
        g.jobs.iter().find_map(|(&id, job)| {
            let open = job.failed.is_none() && job.done.len() < job.total;
            (open && (!job.pending.is_empty() || !job.leases.is_empty()))
                .then(|| (id, job.spec.clone()))
        })
    })
}

/// Why the per-connection state machine ended.
enum ConnEnd {
    /// Clean: drain shutdown sent, or worker disconnected while idle.
    Clean,
    /// The worker died, hung, or violated the protocol.
    Lost,
}

/// Serves one pooled worker connection: handshake once, then cycle
/// idle → job → lease loop → `JobDone` → idle until drain or death.
/// Never panics on worker input; every exit path evicts whatever the
/// worker still held.
fn serve_pool_conn(stream: TcpStream, id: u64, shared: &Shared) {
    let telemetry = &shared.telemetry;
    let _ = stream.set_nodelay(true);
    // Handshake is bounded in both directions so a silent peer cannot
    // pin this thread (same policy as the one-shot coordinator).
    let _ = stream.set_read_timeout(Some(shared.heartbeat_timeout));
    let _ = stream.set_write_timeout(Some(shared.heartbeat_timeout));
    let mut s = &stream;
    let pid = match protocol::recv(&mut s) {
        Ok(Message::Hello { protocol, pid }) => {
            if protocol != PROTOCOL_VERSION {
                let _ = crate::pool::send_reject(
                    &mut s,
                    format!("protocol version {protocol} unsupported (want {PROTOCOL_VERSION})"),
                );
                telemetry.counter("serve.pool.rejected_workers").incr();
                return;
            }
            pid
        }
        Ok(_) => {
            telemetry.counter("serve.pool.protocol_errors").incr();
            return;
        }
        Err(e) => {
            let e = e.or_handshake_timeout();
            if matches!(e, clado_dist::FrameError::HandshakeTimeout) {
                telemetry.counter("serve.handshake_timeouts").incr();
            } else if !e.is_disconnect() {
                telemetry.counter("serve.pool.protocol_errors").incr();
            }
            return;
        }
    };
    let _ = stream.set_write_timeout(None);
    {
        let mut g = shared.state.lock().unwrap_or_else(|p| p.into_inner());
        g.live_workers.insert(id, pid);
    }
    shared.cv.notify_all();
    telemetry.counter("serve.pool.workers_connected").incr();
    if shared.verbose {
        eprintln!("serve: worker {id} (pid {pid}) joined the pool");
    }

    let end = drive_worker(&stream, id, shared);
    let mut g = shared.state.lock().unwrap_or_else(|p| p.into_inner());
    let evicted = evict_worker(&mut g, id, shared.shard_retries);
    drop(g);
    shared.cv.notify_all();
    if evicted > 0 {
        telemetry.counter("serve.pool.evictions").add(evicted);
        if shared.verbose {
            eprintln!("serve: worker {id} lost; requeued {evicted} leased shard(s)");
        }
    } else if matches!(end, ConnEnd::Lost) && shared.verbose {
        eprintln!("serve: worker {id} left the pool");
    }
}

fn send_reject(s: &mut &TcpStream, reason: String) -> Result<(), clado_dist::FrameError> {
    protocol::send(s, &Message::Reject { reason })
}

/// The idle/job cycle for one handshaken pooled worker.
fn drive_worker(stream: &TcpStream, id: u64, shared: &Shared) -> ConnEnd {
    let mut s = stream;
    let hb = shared.heartbeat_timeout;
    loop {
        // Idle phase: short poll so drain and new jobs are noticed fast.
        // Only tiny heartbeat frames flow here, so the short timeout
        // cannot bisect a large frame mid-read.
        let _ = stream.set_read_timeout(Some(IDLE_POLL));
        let mut last_frame = Instant::now();
        let picked = loop {
            if shared.shutdown.load(Ordering::Relaxed) {
                let _ = protocol::send(&mut s, &Message::Shutdown);
                return ConnEnd::Clean;
            }
            match protocol::recv(&mut s) {
                Ok(Message::Heartbeat { .. }) => last_frame = Instant::now(),
                Ok(_) => return ConnEnd::Lost,
                Err(e) if e.is_timeout() => {
                    if last_frame.elapsed() > hb {
                        return ConnEnd::Lost;
                    }
                }
                Err(_) => return ConnEnd::Clean,
            }
            // Look for work after *every* wakeup — heartbeat or poll
            // timeout. A worker heartbeating faster than the idle poll
            // would otherwise keep the read from ever timing out and
            // starve job pickup entirely.
            let mut g = shared.state.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(picked) = pick_job(&mut g) {
                break picked;
            }
        };
        let (job_id, spec) = picked;
        let expect_fp = spec.fingerprint;
        if protocol::send(&mut s, &Message::Job(spec)).is_err() {
            return ConnEnd::Lost;
        }

        // Await Ready (heartbeats flow while the worker builds a model
        // it hasn't cached). Ready frames are small, so the short
        // timeout stays safe here too.
        let ready_fp = loop {
            match protocol::recv(&mut s) {
                Ok(Message::Heartbeat { .. }) => last_frame = Instant::now(),
                Ok(Message::Ready { fingerprint, .. }) => break fingerprint,
                Ok(_) => return ConnEnd::Lost,
                Err(e) if e.is_timeout() => {
                    if last_frame.elapsed() > hb {
                        return ConnEnd::Lost;
                    }
                }
                Err(_) => return ConnEnd::Lost,
            }
        };
        if ready_fp != expect_fp {
            // A worker that reconstructs a different configuration would
            // poison the grid; the job fails (deterministic mismatch —
            // another worker of the same build would mismatch too) and
            // the worker is dropped.
            let mut g = shared.state.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(job) = g.jobs.get_mut(&job_id) {
                job.failed.get_or_insert_with(|| {
                    format!(
                        "worker {id} config fingerprint {ready_fp:#018x} \
                         differs from job {expect_fp:#018x}"
                    )
                });
            }
            drop(g);
            shared.cv.notify_all();
            let _ = send_reject(&mut s, "config fingerprint mismatch".into());
            return ConnEnd::Lost;
        }

        // Lease loop: the long heartbeat timeout is the read timeout
        // here, exactly like the one-shot coordinator — ShardDone frames
        // can be large and must not be bisected by a short poll.
        let _ = stream.set_read_timeout(Some(hb));
        loop {
            match protocol::recv(&mut s) {
                Ok(Message::LeaseRequest) => {
                    let reply = {
                        let mut g = shared.state.lock().unwrap_or_else(|p| p.into_inner());
                        match g.jobs.get_mut(&job_id) {
                            // Job gone (completed, failed, canceled):
                            // back to the idle pool, warm.
                            None => Message::JobDone,
                            Some(job) if job.failed.is_some() || job.done.len() == job.total => {
                                Message::JobDone
                            }
                            Some(_) => {
                                let now = Instant::now();
                                let lease_id = g.next_lease;
                                let job = g.jobs.get_mut(&job_id).expect("job matched above");
                                match pop_leasable(job, now) {
                                    Some(shard) => {
                                        g.next_lease += 1;
                                        let job =
                                            g.jobs.get_mut(&job_id).expect("job matched above");
                                        job.leases.insert(lease_id, (shard, id));
                                        Message::Lease {
                                            lease: lease_id,
                                            span_id: 0,
                                            shard,
                                        }
                                    }
                                    None => Message::Idle {
                                        retry_ms: IDLE_RETRY_MS,
                                    },
                                }
                            }
                        }
                    };
                    let job_over = matches!(reply, Message::JobDone);
                    if protocol::send(&mut s, &reply).is_err() {
                        return ConnEnd::Lost;
                    }
                    if job_over {
                        break; // back to the idle phase
                    }
                }
                Ok(Message::Heartbeat { .. }) => {}
                Ok(Message::ShardDone {
                    lease,
                    shard,
                    records,
                    stats,
                    ..
                }) => {
                    let mut g = shared.state.lock().unwrap_or_else(|p| p.into_inner());
                    if let Some(job) = g.jobs.get_mut(&job_id) {
                        integrate_done(job, Some(id), Some(lease), shard, &records, &stats);
                    }
                    drop(g);
                    shared.cv.notify_all();
                    shared
                        .telemetry
                        .counter("serve.pool.shards_completed")
                        .incr();
                    shared
                        .telemetry
                        .histogram("serve.pool.shard_service")
                        .record_us((stats.seconds * 1e6) as u64);
                }
                Ok(_) => {
                    shared
                        .telemetry
                        .counter("serve.pool.protocol_errors")
                        .incr();
                    return ConnEnd::Lost;
                }
                Err(_) => return ConnEnd::Lost,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_backoff_doubles_to_a_cap() {
        assert_eq!(retry_backoff(1), Duration::from_millis(100));
        assert_eq!(retry_backoff(2), Duration::from_millis(200));
        assert_eq!(retry_backoff(5), Duration::from_millis(1_600));
        assert_eq!(retry_backoff(40), Duration::from_millis(1_600));
    }

    #[test]
    fn eviction_requeues_with_backoff_and_fails_past_the_cap() {
        let spec = JobSpec {
            model: "m".into(),
            set_size: 1,
            set_seed: 0,
            batch_size: 1,
            bits: vec![8],
            scheme: 0,
            use_prefix_cache: false,
            fingerprint: 1,
            trace_id: 0,
            estimator: 0,
            probe_budget: 0,
            estimator_seed: 0,
        };
        let mut g = PoolState {
            jobs: BTreeMap::new(),
            next_job: 2,
            next_lease: 2,
            live_workers: HashMap::from([(7, 100)]),
        };
        let shard = ShardSpec::Base;
        g.jobs.insert(
            1,
            JobState {
                spec,
                pending: VecDeque::new(),
                not_before: HashMap::new(),
                attempts: HashMap::new(),
                leases: HashMap::from([(1, (shard, 7))]),
                done: HashSet::new(),
                total: 1,
                records: HashMap::new(),
                agg: AggStats::default(),
                workers_used: HashSet::new(),
                seconds: 0.0,
                failed: None,
            },
        );
        assert_eq!(evict_worker(&mut g, 7, 1), 1);
        let job = g.jobs.get_mut(&1).expect("job");
        assert!(!g.live_workers.contains_key(&7));
        assert_eq!(job.pending.len(), 1);
        assert_eq!(job.attempts[&shard], 1);
        assert!(job.failed.is_none());
        // The backoff keeps the shard unleasable right now…
        assert!(pop_leasable(job, Instant::now()).is_none());
        // …but not after the backoff expires.
        let later = Instant::now() + Duration::from_secs(2);
        assert_eq!(pop_leasable(job, later), Some(shard));

        // A second eviction crosses the cap (retries = 1) → job fails.
        job.leases.insert(5, (shard, 9));
        g.live_workers.insert(9, 101);
        assert_eq!(evict_worker(&mut g, 9, 1), 1);
        let job = &g.jobs[&1];
        assert!(job
            .failed
            .as_deref()
            .is_some_and(|d| d.contains("retry cap")));
    }
}
