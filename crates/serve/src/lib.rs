//! # clado-serve
//!
//! A fault-tolerant quantization-planning daemon for CLADO. The
//! measure-once / solve-many workflow is naturally service-shaped:
//! measuring Ω is expensive, solving budgets against it is cheap, and
//! both are deterministic — so a long-running daemon with a
//! content-addressed result cache turns repeat planning requests into
//! zero-probe lookups.
//!
//! * **Admission control & shedding** ([`Server`]): a bounded queue;
//!   past its depth — or when a request's deadline cannot plausibly be
//!   met — submissions are refused with *typed* rejections
//!   ([`RejectReason`]), never timeouts or crashes.
//! * **Deadlines** ([`SubmitRequest::deadline_ms`]): threaded into the
//!   measurement pool and [`clado_solver::SolverConfig`], so solves
//!   degrade through the anytime ladder instead of overrunning.
//! * **Ω cache** ([`OmegaCache`]): keyed by a fingerprint over every
//!   field of the [`MeasureSpec`]; a hit re-serves the first response's
//!   CLSM image byte for byte, with zero probe evaluations.
//! * **Pooled crash-resilient workers** ([`WorkerPool`]): warm
//!   connections reused across requests, dead workers evicted by
//!   heartbeat, failed shards retried on surviving workers with capped
//!   backoff — a SIGKILLed worker mid-request costs a retry, not the
//!   request, and never the daemon.
//! * **Graceful drain** ([`Server::drain_flag`]): stop admitting,
//!   finish in-flight work, shut the pool down, return the final
//!   [`ServeReport`].
//!
//! ## Example (in-process loopback)
//!
//! ```no_run
//! use clado_serve::{submit, MeasureSpec, Op, Server, ServeOptions, SubmitRequest};
//! use std::sync::Arc;
//!
//! # fn provider(_: &clado_serve::MeasureSpec) -> Result<(clado_nn::Network, clado_models::DataSplit), String> { unimplemented!() }
//! let server = Server::bind("127.0.0.1:0", "127.0.0.1:0", Arc::new(provider), ServeOptions::default())?;
//! let addr = server.client_addr().to_string();
//! let drain = server.drain_flag();
//! std::thread::spawn(move || server.run());
//! let outcome = submit(&addr, &SubmitRequest {
//!     spec: MeasureSpec {
//!         model: "resnet20".into(), set_size: 64, set_seed: 0, batch_size: 64,
//!         bits: vec![2, 4, 8], scheme: 0, use_prefix_cache: true,
//!         estimator: 0, probe_budget: 0, estimator_seed: 0,
//!     },
//!     op: Op::Assign { avg_bits: 4.0 },
//!     deadline_ms: 0,
//! }, None)?;
//! println!("request {} answered", outcome.request_id);
//! drain.store(true, std::sync::atomic::Ordering::SeqCst);
//! # Ok::<(), clado_serve::ServeError>(())
//! ```

#![warn(missing_docs)]

mod cache;
mod client;
mod diskcache;
mod error;
mod pool;
pub mod protocol;
mod server;

pub use cache::{CachedOmega, OmegaCache};
pub use client::{submit, submit_with_retries, SubmitOutcome};
pub use diskcache::DiskCache;
pub use error::ServeError;
pub use pool::{JobFailure, JobOutcome, PoolOptions, WorkerPool};
pub use protocol::{
    AssignRow, FailKind, MeasureSpec, Op, RejectReason, ServeMessage, SubmitRequest,
};
pub use server::{ModelProvider, ServeOptions, ServeReport, Server};
