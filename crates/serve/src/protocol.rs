//! Request/response frames of the serve protocol.
//!
//! Client conversations ride the same checksummed envelope as the
//! coordinator/worker protocol ([`clado_dist::frame`]) and use disjoint
//! frame kinds (64+ for requests, 80+ for responses) so a worker that
//! accidentally dials the client port is rejected as an unknown kind
//! rather than misparsed. One connection carries one request:
//!
//! ```text
//! client → Submit { spec, op, deadline_ms }
//! server → Accepted { request_id, queue_depth } | Rejected { reason }
//! server → Progress { probes_done, probes_total }   (zero or more)
//! server → MeasureDone | AssignDone | SweepDone | Failed
//! ```
//!
//! After `Accepted`, the client holding the connection open is part of
//! the contract: the server watches the socket and cancels the request
//! if the client disconnects mid-stream.

use clado_dist::frame::{read_frame, write_frame, FrameError};
use clado_dist::wire::{put_bool, put_bytes, put_f64, put_u32, put_u64, Reader};
use std::fmt;
use std::io::{Read, Write};

const KIND_SUBMIT: u16 = 64;
const KIND_ACCEPTED: u16 = 80;
const KIND_REJECTED: u16 = 81;
const KIND_MEASURE_DONE: u16 = 82;
const KIND_ASSIGN_DONE: u16 = 83;
const KIND_SWEEP_DONE: u16 = 84;
const KIND_FAILED: u16 = 85;
const KIND_PROGRESS: u16 = 86;

/// Everything that identifies one sensitivity measurement — the Ω cache
/// key is a fingerprint over every field.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MeasureSpec {
    /// Model identifier (a `clado` model kind, e.g. `resnet20`).
    pub model: String,
    /// Sensitivity-set size (clamped to the train split by the provider).
    pub set_size: u64,
    /// Sensitivity-set sampling seed.
    pub set_seed: u64,
    /// Probe batch size.
    pub batch_size: u64,
    /// Bit-width candidates, low to high.
    pub bits: Vec<u8>,
    /// Quantization scheme byte ([`clado_dist::scheme_to_u8`]).
    pub scheme: u8,
    /// Whether prefix-activation caching is used during probes.
    pub use_prefix_cache: bool,
    /// Estimator tag (`0` = exact measurement; 1–4 per
    /// `clado_core::OmegaProvenance`). Part of the cache key: an
    /// estimated Ω must never be served where an exact one was asked
    /// for, or vice versa.
    pub estimator: u8,
    /// Requested probe budget for an estimation request (`0` with a
    /// nonzero estimator means the default 25% of the full sweep; must
    /// be `0` for exact requests).
    pub probe_budget: u64,
    /// Probe-selection seed for an estimation request (must be `0` for
    /// exact requests, so equal exact specs keep equal fingerprints).
    pub estimator_seed: u64,
}

impl MeasureSpec {
    /// Canonical byte encoding — both the wire form and the cache-key
    /// preimage, so "same fingerprint" and "same request" coincide.
    fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_bytes(&mut out, self.model.as_bytes());
        put_u64(&mut out, self.set_size);
        put_u64(&mut out, self.set_seed);
        put_u64(&mut out, self.batch_size);
        put_bytes(&mut out, &self.bits);
        out.push(self.scheme);
        put_bool(&mut out, self.use_prefix_cache);
        out.push(self.estimator);
        put_u64(&mut out, self.probe_budget);
        put_u64(&mut out, self.estimator_seed);
        out
    }

    /// Content-addressed cache key: FNV-1a (the PR-3 journal fingerprint
    /// function) over the canonical encoding. This extends the shard
    /// fingerprint of [`clado_core::config_fingerprint`] with the
    /// identity fields it deliberately omits (model name, set seed), so
    /// two models with equal layer counts can never collide in the Ω
    /// cache.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in &self.canonical_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// What to do with the measured Ω.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Measure (or fetch from cache) and return the CLSM image.
    Measure,
    /// Measure, then solve one IQP at this weight budget.
    Assign {
        /// Average bits per weight defining the budget.
        avg_bits: f64,
    },
    /// Measure, then solve a budget sweep.
    Sweep {
        /// First budget (average bits per weight).
        from: f64,
        /// Last budget, inclusive.
        to: f64,
        /// Budget increment (must be positive).
        step: f64,
    },
}

const OP_MEASURE: u8 = 0;
const OP_ASSIGN: u8 = 1;
const OP_SWEEP: u8 = 2;

/// One planning request.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// The measurement configuration (and cache key).
    pub spec: MeasureSpec,
    /// What to compute from Ω.
    pub op: Op,
    /// Deadline in milliseconds from submission; 0 means none. The
    /// solver degrades through the anytime ladder as this approaches;
    /// measurement past the deadline fails with `DeadlineExceeded`.
    pub deadline_ms: u64,
}

/// Why a request was refused at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The admission queue is at its configured depth.
    Overloaded,
    /// The requested deadline cannot plausibly be met given the current
    /// queue and observed service times.
    DeadlineInfeasible,
    /// The daemon is draining (SIGTERM/Ctrl-C) and admits nothing new.
    Draining,
    /// The request itself is invalid (empty bit set, bad sweep range…).
    Malformed,
}

impl RejectReason {
    fn to_u8(self) -> u8 {
        match self {
            Self::Overloaded => 0,
            Self::DeadlineInfeasible => 1,
            Self::Draining => 2,
            Self::Malformed => 3,
        }
    }
    fn from_u8(b: u8) -> Result<Self, FrameError> {
        match b {
            0 => Ok(Self::Overloaded),
            1 => Ok(Self::DeadlineInfeasible),
            2 => Ok(Self::Draining),
            3 => Ok(Self::Malformed),
            other => Err(FrameError::Malformed(format!(
                "reject reason {other} out of range"
            ))),
        }
    }
    /// Stable lowercase label (CLI output, telemetry counter suffixes).
    pub fn label(self) -> &'static str {
        match self {
            Self::Overloaded => "overloaded",
            Self::DeadlineInfeasible => "deadline-infeasible",
            Self::Draining => "draining",
            Self::Malformed => "malformed",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why an admitted request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailKind {
    /// The per-request deadline expired mid-flight.
    DeadlineExceeded,
    /// A shard kept failing across workers past the retry cap.
    WorkerRetriesExhausted,
    /// The client disconnected (or the drain cancelled the request).
    Canceled,
    /// Anything else (provider failure, assembly failure…).
    Internal,
}

impl FailKind {
    fn to_u8(self) -> u8 {
        match self {
            Self::DeadlineExceeded => 0,
            Self::WorkerRetriesExhausted => 1,
            Self::Canceled => 2,
            Self::Internal => 3,
        }
    }
    fn from_u8(b: u8) -> Result<Self, FrameError> {
        match b {
            0 => Ok(Self::DeadlineExceeded),
            1 => Ok(Self::WorkerRetriesExhausted),
            2 => Ok(Self::Canceled),
            3 => Ok(Self::Internal),
            other => Err(FrameError::Malformed(format!(
                "fail kind {other} out of range"
            ))),
        }
    }
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Self::DeadlineExceeded => "deadline-exceeded",
            Self::WorkerRetriesExhausted => "worker-retries-exhausted",
            Self::Canceled => "canceled",
            Self::Internal => "internal",
        }
    }
}

impl fmt::Display for FailKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One solved budget row (`AssignDone` carries one, `SweepDone` many).
#[derive(Debug, Clone, PartialEq)]
pub struct AssignRow {
    /// Realized average bits per weight.
    pub avg_bits: f64,
    /// Chosen bit-width per layer, in layer order.
    pub bits: Vec<u8>,
    /// Predicted loss increase `αᵀĜα`.
    pub predicted_delta_loss: f64,
    /// Total weight cost in bits.
    pub cost_bits: u64,
    /// Suboptimality bound (0 when proved optimal).
    pub gap: f64,
    /// Ladder rung that produced the solution.
    pub method: String,
    /// How the solve terminated (proved / deadline / …).
    pub termination: String,
}

/// One message of the serve protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeMessage {
    /// Client → server: one planning request.
    Submit(SubmitRequest),
    /// The request passed admission and is queued.
    Accepted {
        /// Server-assigned request id (echoed in the final response).
        request_id: u64,
        /// Queue depth observed at admission (operator visibility).
        queue_depth: u32,
    },
    /// The request was refused at admission; the connection closes.
    Rejected {
        /// The typed refusal.
        reason: RejectReason,
        /// Human-readable elaboration.
        detail: String,
    },
    /// A `Measure` request completed.
    MeasureDone {
        /// Echo of the accepted request id.
        request_id: u64,
        /// Whether Ω came from the cache (zero probes evaluated).
        cache_hit: bool,
        /// Probe evaluations performed for this request.
        evaluations: u64,
        /// The CLSM byte image — bitwise identical to a local
        /// `save_sensitivities` of a fresh measurement.
        clsm: Vec<u8>,
    },
    /// An `Assign` request completed.
    AssignDone {
        /// Echo of the accepted request id.
        request_id: u64,
        /// Whether Ω came from the cache.
        cache_hit: bool,
        /// Probe evaluations performed for this request.
        evaluations: u64,
        /// The solved assignment.
        row: AssignRow,
    },
    /// A `Sweep` request completed.
    SweepDone {
        /// Echo of the accepted request id.
        request_id: u64,
        /// Whether Ω came from the cache.
        cache_hit: bool,
        /// Probe evaluations performed for this request.
        evaluations: u64,
        /// One row per budget, in sweep order.
        rows: Vec<AssignRow>,
    },
    /// An admitted request failed; the request dies, the daemon doesn't.
    Failed {
        /// Echo of the accepted request id.
        request_id: u64,
        /// The typed failure.
        kind: FailKind,
        /// Human-readable elaboration.
        detail: String,
    },
    /// Interim measurement progress, streamed to the waiting client
    /// between `Accepted` and the final response (cache hits and solves
    /// are too fast to bother). Clients may ignore these entirely.
    Progress {
        /// Echo of the accepted request id.
        request_id: u64,
        /// Probe evaluations integrated so far.
        probes_done: u64,
        /// Total probes the measurement plan will spend.
        probes_total: u64,
    },
}

fn put_row(out: &mut Vec<u8>, row: &AssignRow) {
    put_f64(out, row.avg_bits);
    put_bytes(out, &row.bits);
    put_f64(out, row.predicted_delta_loss);
    put_u64(out, row.cost_bits);
    put_f64(out, row.gap);
    put_bytes(out, row.method.as_bytes());
    put_bytes(out, row.termination.as_bytes());
}

fn read_row(c: &mut Reader<'_>) -> Result<AssignRow, FrameError> {
    Ok(AssignRow {
        avg_bits: c.f64("row.avg_bits")?,
        bits: c.bytes("row.bits")?.to_vec(),
        predicted_delta_loss: c.f64("row.predicted_delta_loss")?,
        cost_bits: c.u64("row.cost_bits")?,
        gap: c.f64("row.gap")?,
        method: c.string("row.method")?,
        termination: c.string("row.termination")?,
    })
}

impl ServeMessage {
    /// The frame kind of this message.
    pub fn kind(&self) -> u16 {
        match self {
            Self::Submit(_) => KIND_SUBMIT,
            Self::Accepted { .. } => KIND_ACCEPTED,
            Self::Rejected { .. } => KIND_REJECTED,
            Self::MeasureDone { .. } => KIND_MEASURE_DONE,
            Self::AssignDone { .. } => KIND_ASSIGN_DONE,
            Self::SweepDone { .. } => KIND_SWEEP_DONE,
            Self::Failed { .. } => KIND_FAILED,
            Self::Progress { .. } => KIND_PROGRESS,
        }
    }

    /// Encodes the message payload (the frame layer adds the envelope).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Self::Submit(req) => {
                out.extend_from_slice(&req.spec.canonical_bytes());
                match &req.op {
                    Op::Measure => out.push(OP_MEASURE),
                    Op::Assign { avg_bits } => {
                        out.push(OP_ASSIGN);
                        put_f64(&mut out, *avg_bits);
                    }
                    Op::Sweep { from, to, step } => {
                        out.push(OP_SWEEP);
                        put_f64(&mut out, *from);
                        put_f64(&mut out, *to);
                        put_f64(&mut out, *step);
                    }
                }
                put_u64(&mut out, req.deadline_ms);
            }
            Self::Accepted {
                request_id,
                queue_depth,
            } => {
                put_u64(&mut out, *request_id);
                put_u32(&mut out, *queue_depth);
            }
            Self::Rejected { reason, detail } => {
                out.push(reason.to_u8());
                put_bytes(&mut out, detail.as_bytes());
            }
            Self::MeasureDone {
                request_id,
                cache_hit,
                evaluations,
                clsm,
            } => {
                put_u64(&mut out, *request_id);
                put_bool(&mut out, *cache_hit);
                put_u64(&mut out, *evaluations);
                put_bytes(&mut out, clsm);
            }
            Self::AssignDone {
                request_id,
                cache_hit,
                evaluations,
                row,
            } => {
                put_u64(&mut out, *request_id);
                put_bool(&mut out, *cache_hit);
                put_u64(&mut out, *evaluations);
                put_row(&mut out, row);
            }
            Self::SweepDone {
                request_id,
                cache_hit,
                evaluations,
                rows,
            } => {
                put_u64(&mut out, *request_id);
                put_bool(&mut out, *cache_hit);
                put_u64(&mut out, *evaluations);
                put_u32(&mut out, rows.len() as u32);
                for row in rows {
                    put_row(&mut out, row);
                }
            }
            Self::Failed {
                request_id,
                kind,
                detail,
            } => {
                put_u64(&mut out, *request_id);
                out.push(kind.to_u8());
                put_bytes(&mut out, detail.as_bytes());
            }
            Self::Progress {
                request_id,
                probes_done,
                probes_total,
            } => {
                put_u64(&mut out, *request_id);
                put_u64(&mut out, *probes_done);
                put_u64(&mut out, *probes_total);
            }
        }
        out
    }

    /// Decodes a frame payload of the given kind.
    ///
    /// # Errors
    ///
    /// [`FrameError::UnknownKind`] for an unrecognized kind;
    /// [`FrameError::Malformed`] for short payloads, trailing bytes, or
    /// out-of-range tags.
    pub fn decode(kind: u16, payload: &[u8]) -> Result<Self, FrameError> {
        let mut c = Reader::new(payload);
        let msg = match kind {
            KIND_SUBMIT => {
                let spec = MeasureSpec {
                    model: c.string("spec.model")?,
                    set_size: c.u64("spec.set_size")?,
                    set_seed: c.u64("spec.set_seed")?,
                    batch_size: c.u64("spec.batch_size")?,
                    bits: c.bytes("spec.bits")?.to_vec(),
                    scheme: c.u8("spec.scheme")?,
                    use_prefix_cache: c.bool("spec.use_prefix_cache")?,
                    estimator: c.u8("spec.estimator")?,
                    probe_budget: c.u64("spec.probe_budget")?,
                    estimator_seed: c.u64("spec.estimator_seed")?,
                };
                let op = match c.u8("submit.op")? {
                    OP_MEASURE => Op::Measure,
                    OP_ASSIGN => Op::Assign {
                        avg_bits: c.f64("op.avg_bits")?,
                    },
                    OP_SWEEP => Op::Sweep {
                        from: c.f64("op.from")?,
                        to: c.f64("op.to")?,
                        step: c.f64("op.step")?,
                    },
                    other => return Err(FrameError::Malformed(format!("op {other} out of range"))),
                };
                Self::Submit(SubmitRequest {
                    spec,
                    op,
                    deadline_ms: c.u64("submit.deadline_ms")?,
                })
            }
            KIND_ACCEPTED => Self::Accepted {
                request_id: c.u64("accepted.request_id")?,
                queue_depth: c.u32("accepted.queue_depth")?,
            },
            KIND_REJECTED => Self::Rejected {
                reason: RejectReason::from_u8(c.u8("rejected.reason")?)?,
                detail: c.string("rejected.detail")?,
            },
            KIND_MEASURE_DONE => Self::MeasureDone {
                request_id: c.u64("measure.request_id")?,
                cache_hit: c.bool("measure.cache_hit")?,
                evaluations: c.u64("measure.evaluations")?,
                clsm: c.bytes("measure.clsm")?.to_vec(),
            },
            KIND_ASSIGN_DONE => Self::AssignDone {
                request_id: c.u64("assign.request_id")?,
                cache_hit: c.bool("assign.cache_hit")?,
                evaluations: c.u64("assign.evaluations")?,
                row: read_row(&mut c)?,
            },
            KIND_SWEEP_DONE => {
                let request_id = c.u64("sweep.request_id")?;
                let cache_hit = c.bool("sweep.cache_hit")?;
                let evaluations = c.u64("sweep.evaluations")?;
                let count = c.u32("sweep.row_count")? as usize;
                // Rows are ≥ 40 bytes each; reject absurd counts before
                // allocating.
                if count > payload.len() {
                    return Err(FrameError::Malformed(format!(
                        "sweep.row_count {count} exceeds payload size"
                    )));
                }
                let mut rows = Vec::with_capacity(count);
                for _ in 0..count {
                    rows.push(read_row(&mut c)?);
                }
                Self::SweepDone {
                    request_id,
                    cache_hit,
                    evaluations,
                    rows,
                }
            }
            KIND_FAILED => Self::Failed {
                request_id: c.u64("failed.request_id")?,
                kind: FailKind::from_u8(c.u8("failed.kind")?)?,
                detail: c.string("failed.detail")?,
            },
            KIND_PROGRESS => Self::Progress {
                request_id: c.u64("progress.request_id")?,
                probes_done: c.u64("progress.probes_done")?,
                probes_total: c.u64("progress.probes_total")?,
            },
            other => return Err(FrameError::UnknownKind(other)),
        };
        c.finish("serve message")?;
        Ok(msg)
    }
}

/// Sends one serve message as a frame.
///
/// # Errors
///
/// Propagates [`FrameError`] from the envelope layer.
pub fn send(w: &mut impl Write, msg: &ServeMessage) -> Result<(), FrameError> {
    write_frame(w, msg.kind(), &msg.encode())
}

/// Receives and decodes one serve message.
///
/// # Errors
///
/// Propagates [`FrameError`] from the envelope layer or the decoder.
pub fn recv(r: &mut impl Read) -> Result<ServeMessage, FrameError> {
    let (kind, payload) = read_frame(r)?;
    ServeMessage::decode(kind, &payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MeasureSpec {
        MeasureSpec {
            model: "resnet20".into(),
            set_size: 64,
            set_seed: 7,
            batch_size: 32,
            bits: vec![2, 4, 8],
            scheme: 0,
            use_prefix_cache: true,
            estimator: 0,
            probe_budget: 0,
            estimator_seed: 0,
        }
    }

    fn row() -> AssignRow {
        AssignRow {
            avg_bits: 4.01,
            bits: vec![8, 4, 2, 4],
            predicted_delta_loss: 0.125,
            cost_bits: 99_000,
            gap: 0.0,
            method: "bnb".into(),
            termination: "proved".into(),
        }
    }

    #[test]
    fn every_serve_message_round_trips() {
        let msgs = vec![
            ServeMessage::Submit(SubmitRequest {
                spec: spec(),
                op: Op::Measure,
                deadline_ms: 0,
            }),
            ServeMessage::Submit(SubmitRequest {
                spec: spec(),
                op: Op::Assign { avg_bits: 4.0 },
                deadline_ms: 1500,
            }),
            ServeMessage::Submit(SubmitRequest {
                spec: spec(),
                op: Op::Sweep {
                    from: 2.0,
                    to: 8.0,
                    step: 0.5,
                },
                deadline_ms: 60_000,
            }),
            ServeMessage::Submit(SubmitRequest {
                spec: MeasureSpec {
                    estimator: 2,
                    probe_budget: 128,
                    estimator_seed: 0xE571,
                    ..spec()
                },
                op: Op::Measure,
                deadline_ms: 0,
            }),
            ServeMessage::Accepted {
                request_id: 3,
                queue_depth: 2,
            },
            ServeMessage::Rejected {
                reason: RejectReason::Overloaded,
                detail: "queue full (depth 16)".into(),
            },
            ServeMessage::Rejected {
                reason: RejectReason::DeadlineInfeasible,
                detail: "estimated start exceeds deadline".into(),
            },
            ServeMessage::MeasureDone {
                request_id: 3,
                cache_hit: true,
                evaluations: 0,
                clsm: vec![0xCA, 0xFE, 0x00, 0x42],
            },
            ServeMessage::AssignDone {
                request_id: 4,
                cache_hit: false,
                evaluations: 861,
                row: row(),
            },
            ServeMessage::SweepDone {
                request_id: 5,
                cache_hit: true,
                evaluations: 0,
                rows: vec![row(), row()],
            },
            ServeMessage::Failed {
                request_id: 6,
                kind: FailKind::WorkerRetriesExhausted,
                detail: "shard pair:3 failed 5 times".into(),
            },
            ServeMessage::Progress {
                request_id: 7,
                probes_done: 120,
                probes_total: 861,
            },
        ];
        for msg in &msgs {
            let back = ServeMessage::decode(msg.kind(), &msg.encode()).expect("decode");
            assert_eq!(&back, msg);
        }
    }

    #[test]
    fn unknown_kind_and_bad_tags_are_typed() {
        assert!(matches!(
            ServeMessage::decode(7777, &[]),
            Err(FrameError::UnknownKind(7777))
        ));
        // Reject reason 9 is out of range.
        let mut bad = ServeMessage::Rejected {
            reason: RejectReason::Draining,
            detail: String::new(),
        }
        .encode();
        bad[0] = 9;
        assert!(matches!(
            ServeMessage::decode(KIND_REJECTED, &bad),
            Err(FrameError::Malformed(_))
        ));
        // Truncated submit.
        let good = ServeMessage::Submit(SubmitRequest {
            spec: spec(),
            op: Op::Measure,
            deadline_ms: 1,
        })
        .encode();
        assert!(matches!(
            ServeMessage::decode(KIND_SUBMIT, &good[..good.len() - 1]),
            Err(FrameError::Malformed(_))
        ));
        // Trailing bytes.
        let mut long = good;
        long.push(0);
        assert!(matches!(
            ServeMessage::decode(KIND_SUBMIT, &long),
            Err(FrameError::Malformed(_))
        ));
        // Absurd sweep row count is rejected without allocation.
        let mut sweep = Vec::new();
        put_u64(&mut sweep, 1);
        put_bool(&mut sweep, false);
        put_u64(&mut sweep, 0);
        put_u32(&mut sweep, u32::MAX);
        assert!(matches!(
            ServeMessage::decode(KIND_SWEEP_DONE, &sweep),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn fingerprint_changes_with_every_field() {
        let base = spec();
        let fp = base.fingerprint();
        // Identical spec → identical key.
        assert_eq!(fp, spec().fingerprint());
        let variants = [
            MeasureSpec {
                model: "resnet34".into(),
                ..base.clone()
            },
            MeasureSpec {
                set_size: 65,
                ..base.clone()
            },
            MeasureSpec {
                set_seed: 8,
                ..base.clone()
            },
            MeasureSpec {
                batch_size: 16,
                ..base.clone()
            },
            MeasureSpec {
                bits: vec![4, 8],
                ..base.clone()
            },
            MeasureSpec {
                scheme: 1,
                ..base.clone()
            },
            MeasureSpec {
                use_prefix_cache: false,
                ..base.clone()
            },
            MeasureSpec {
                estimator: 3,
                ..base.clone()
            },
            MeasureSpec {
                probe_budget: 200,
                ..base.clone()
            },
            MeasureSpec {
                estimator_seed: 1,
                ..base.clone()
            },
        ];
        for v in variants {
            assert_ne!(
                v.fingerprint(),
                fp,
                "field change must change the key: {v:?}"
            );
        }
    }
}
