//! The serve-side error taxonomy.

use crate::protocol::RejectReason;
use clado_dist::FrameError;
use std::fmt;
use std::io;

/// Everything that can go wrong binding, running, or talking to the
/// daemon.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (bind, accept, connect).
    Io(io::Error),
    /// Framing or protocol failure on a client conversation.
    Frame(FrameError),
    /// The daemon refused the request at admission. This is the *typed*
    /// shed path — overload and infeasible deadlines surface here, never
    /// as timeouts or crashes.
    Rejected {
        /// The typed refusal.
        reason: RejectReason,
        /// Human-readable elaboration from the daemon.
        detail: String,
    },
    /// The peer violated the serve protocol (wrong message order).
    Protocol(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "serve I/O error: {e}"),
            Self::Frame(e) => write!(f, "serve frame error: {e}"),
            Self::Rejected { reason, detail } => {
                write!(f, "request rejected ({reason}): {detail}")
            }
            Self::Protocol(what) => write!(f, "serve protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<FrameError> for ServeError {
    fn from(e: FrameError) -> Self {
        Self::Frame(e)
    }
}
