//! The Ω result cache: content-addressed by the measurement-spec
//! fingerprint, so a repeat client pays zero probe evaluations.
//!
//! The cached value holds the *first* response verbatim — the encoded
//! CLSM image is stored alongside the decoded matrix — so a cache hit is
//! bitwise identical to the measurement that populated the entry
//! (`SensitivityStats` carries wall-clock seconds, which a re-measure
//! would perturb; re-serving the stored image sidesteps that).
//!
//! Capacity is accounted in *bytes*, not entries: a resnet Ω image is
//! three orders of magnitude larger than a toy conv net's, so an entry
//! count says nothing about memory pressure. The same unit governs the
//! on-disk spill store ([`crate::DiskCache`]), so `--cache-bytes` and
//! `--cache-disk-bytes` budgets are directly comparable.

use clado_core::SensitivityMatrix;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One cached measurement: the assembled Ω plus everything a solve
/// needs without rebuilding the model.
pub struct CachedOmega {
    /// The assembled sensitivity matrix.
    pub matrix: SensitivityMatrix,
    /// The encoded CLSM image ([`clado_core::sensitivities_to_bytes`]),
    /// re-served verbatim on every hit.
    pub clsm: Vec<u8>,
    /// Per-layer parameter counts of the measured model (the
    /// [`clado_quant::LayerSizes`] input for budget solves).
    pub param_counts: Vec<usize>,
}

impl CachedOmega {
    /// Approximate resident size of this entry: the serialized image,
    /// the decoded upper-triangular matrix, and the layer-size vector.
    pub fn approx_bytes(&self) -> u64 {
        let dim = self.matrix.matrix().dim();
        (self.clsm.len() + dim * (dim + 1) / 2 * 8 + self.param_counts.len() * 8) as u64
    }
}

/// A byte-budgeted LRU of measurement results keyed by
/// [`crate::protocol::MeasureSpec::fingerprint`].
pub struct OmegaCache {
    inner: Mutex<Inner>,
}

struct Inner {
    entries: HashMap<u64, Arc<CachedOmega>>,
    /// Recency order, most recent last.
    order: Vec<u64>,
    /// Maximum number of cached measurements (0 disables caching).
    capacity: usize,
    /// Byte budget across all entries (0 = bounded by `capacity` only).
    byte_budget: u64,
    /// Current total of [`CachedOmega::approx_bytes`] across entries.
    bytes: u64,
}

impl OmegaCache {
    /// Creates a cache holding at most `capacity` measurements and (when
    /// `byte_budget > 0`) at most `byte_budget` approximate bytes —
    /// whichever bound bites first evicts in LRU order. Capacity 0
    /// disables caching entirely.
    pub fn new(capacity: usize, byte_budget: u64) -> Self {
        Self {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                order: Vec::new(),
                capacity,
                byte_budget,
                bytes: 0,
            }),
        }
    }

    /// Looks up a measurement, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<Arc<CachedOmega>> {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let hit = g.entries.get(&key).cloned();
        if hit.is_some() {
            g.order.retain(|&k| k != key);
            g.order.push(key);
        }
        hit
    }

    /// Inserts a measurement, evicting least-recently-used entries while
    /// either budget is exceeded. Inserting an existing key refreshes it.
    pub fn insert(&self, key: u64, value: Arc<CachedOmega>) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if g.capacity == 0 {
            return;
        }
        if let Some(old) = g.entries.remove(&key) {
            g.bytes -= old.approx_bytes();
        }
        g.order.retain(|&k| k != key);
        g.bytes += value.approx_bytes();
        g.entries.insert(key, value);
        g.order.push(key);
        // The newest entry is never its own victim: even one oversized
        // Ω must be servable while it is the most recent measurement.
        while g.order.len() > 1
            && (g.entries.len() > g.capacity || (g.byte_budget > 0 && g.bytes > g.byte_budget))
        {
            let evict = g.order.remove(0);
            if let Some(old) = g.entries.remove(&evict) {
                g.bytes -= old.approx_bytes();
            }
        }
    }

    /// Number of cached measurements.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entries
            .len()
    }

    /// Approximate bytes currently held (the `serve.cache.bytes` gauge).
    pub fn bytes(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).bytes
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_core::{SensitivityMatrix, SensitivityStats};
    use clado_quant::BitWidthSet;
    use clado_solver::SymMatrix;

    fn entry() -> Arc<CachedOmega> {
        let matrix = SensitivityMatrix::from_parts(
            SymMatrix::zeros(2),
            1,
            BitWidthSet::new(&[4, 8]),
            0.5,
            SensitivityStats::default(),
        );
        Arc::new(CachedOmega {
            clsm: clado_core::sensitivities_to_bytes(&matrix),
            matrix,
            param_counts: vec![10],
        })
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let cache = OmegaCache::new(2, 0);
        cache.insert(1, entry());
        cache.insert(2, entry());
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(1).is_some());
        cache.insert(3, entry());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = OmegaCache::new(0, 0);
        cache.insert(1, entry());
        assert!(cache.is_empty());
        assert!(cache.get(1).is_none());
    }

    #[test]
    fn byte_budget_evicts_in_lru_order_and_tracks_totals() {
        let per_entry = entry().approx_bytes();
        // Room for exactly two entries; a third must evict the LRU one.
        let cache = OmegaCache::new(100, per_entry * 2);
        cache.insert(1, entry());
        assert_eq!(cache.bytes(), per_entry);
        cache.insert(2, entry());
        assert!(cache.get(1).is_some());
        cache.insert(3, entry());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes(), per_entry * 2);
        assert!(cache.get(2).is_none(), "LRU victim under the byte budget");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        // Refreshing an existing key neither grows the total nor evicts.
        cache.insert(3, entry());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes(), per_entry * 2);
    }

    #[test]
    fn one_oversized_entry_is_still_servable() {
        let per_entry = entry().approx_bytes();
        let cache = OmegaCache::new(100, per_entry / 2);
        cache.insert(1, entry());
        assert!(cache.get(1).is_some(), "the sole entry survives");
        cache.insert(2, entry());
        assert_eq!(cache.len(), 1, "the older oversized entry is evicted");
        assert!(cache.get(2).is_some());
    }
}
