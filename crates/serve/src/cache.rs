//! The Ω result cache: content-addressed by the measurement-spec
//! fingerprint, so a repeat client pays zero probe evaluations.
//!
//! The cached value holds the *first* response verbatim — the encoded
//! CLSM image is stored alongside the decoded matrix — so a cache hit is
//! bitwise identical to the measurement that populated the entry
//! (`SensitivityStats` carries wall-clock seconds, which a re-measure
//! would perturb; re-serving the stored image sidesteps that).

use clado_core::SensitivityMatrix;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One cached measurement: the assembled Ω plus everything a solve
/// needs without rebuilding the model.
pub struct CachedOmega {
    /// The assembled sensitivity matrix.
    pub matrix: SensitivityMatrix,
    /// The encoded CLSM image ([`clado_core::sensitivities_to_bytes`]),
    /// re-served verbatim on every hit.
    pub clsm: Vec<u8>,
    /// Per-layer parameter counts of the measured model (the
    /// [`clado_quant::LayerSizes`] input for budget solves).
    pub param_counts: Vec<usize>,
}

/// A bounded LRU of measurement results keyed by
/// [`crate::protocol::MeasureSpec::fingerprint`].
pub struct OmegaCache {
    inner: Mutex<Inner>,
}

struct Inner {
    entries: HashMap<u64, Arc<CachedOmega>>,
    /// Recency order, most recent last.
    order: Vec<u64>,
    capacity: usize,
}

impl OmegaCache {
    /// Creates a cache holding at most `capacity` measurements
    /// (capacity 0 disables caching entirely).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                order: Vec::new(),
                capacity,
            }),
        }
    }

    /// Looks up a measurement, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<Arc<CachedOmega>> {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let hit = g.entries.get(&key).cloned();
        if hit.is_some() {
            g.order.retain(|&k| k != key);
            g.order.push(key);
        }
        hit
    }

    /// Inserts a measurement, evicting the least recently used entry
    /// when full. Inserting an existing key refreshes it.
    pub fn insert(&self, key: u64, value: Arc<CachedOmega>) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if g.capacity == 0 {
            return;
        }
        g.order.retain(|&k| k != key);
        if g.entries.len() >= g.capacity && !g.entries.contains_key(&key) && !g.order.is_empty() {
            let evict = g.order.remove(0);
            g.entries.remove(&evict);
        }
        g.entries.insert(key, value);
        g.order.push(key);
    }

    /// Number of cached measurements.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entries
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_core::{SensitivityMatrix, SensitivityStats};
    use clado_quant::BitWidthSet;
    use clado_solver::SymMatrix;

    fn entry() -> Arc<CachedOmega> {
        let matrix = SensitivityMatrix::from_parts(
            SymMatrix::zeros(2),
            1,
            BitWidthSet::new(&[4, 8]),
            0.5,
            SensitivityStats::default(),
        );
        Arc::new(CachedOmega {
            clsm: clado_core::sensitivities_to_bytes(&matrix),
            matrix,
            param_counts: vec![10],
        })
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let cache = OmegaCache::new(2);
        cache.insert(1, entry());
        cache.insert(2, entry());
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(1).is_some());
        cache.insert(3, entry());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = OmegaCache::new(0);
        cache.insert(1, entry());
        assert!(cache.is_empty());
        assert!(cache.get(1).is_none());
    }
}
