//! The client side of the serve protocol: one connection, one request.

use crate::error::ServeError;
use crate::protocol::{self, ServeMessage, SubmitRequest};
use std::net::TcpStream;
use std::time::Duration;

/// One accepted-and-answered submission.
#[derive(Debug)]
pub struct SubmitOutcome {
    /// Server-assigned request id.
    pub request_id: u64,
    /// Queue depth the daemon observed at admission.
    pub queue_depth: u32,
    /// The final response: `MeasureDone`, `AssignDone`, `SweepDone`, or
    /// `Failed` — never `Accepted`/`Rejected`/`Submit`/`Progress`.
    pub response: ServeMessage,
    /// The last interim `Progress` frame observed (if any): cumulative
    /// probes done and the plan total.
    pub progress: Option<(u64, u64)>,
}

/// Nominal reconnect backoff before the `attempt`-th retry (0-based):
/// 100 ms doubling to a 1.6 s cap, the same schedule pooled workers use.
fn backoff_delay(attempt: u32) -> Duration {
    const BASE_MS: u64 = 100;
    const CAP_MS: u64 = 1_600;
    let nominal = (BASE_MS << attempt.min(10)).min(CAP_MS);
    // Deterministic-per-process jitter (FNV-1a over pid ‖ attempt)
    // spread over ±25% of the nominal delay, so a fleet of clients
    // hammering a restarting daemon doesn't reconnect in lockstep.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in std::process::id()
        .to_le_bytes()
        .into_iter()
        .chain(attempt.to_le_bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let span = nominal / 2;
    let jitter = h % (span + 1);
    Duration::from_millis(nominal - span / 2 + jitter)
}

/// Connects with up to `retries` additional capped-backoff attempts —
/// the client-side mirror of the pooled worker's reconnect loop, so a
/// daemon mid-restart costs a submitting client a short wait instead of
/// an error.
fn connect_with_retry(addr: &str, retries: u32) -> Result<TcpStream, ServeError> {
    let mut attempt = 0u32;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if attempt >= retries => return Err(ServeError::Io(e)),
            Err(_) => {
                std::thread::sleep(backoff_delay(attempt));
                attempt += 1;
            }
        }
    }
}

/// Submits one request to a daemon and blocks for the final response.
/// `response_timeout` bounds the wait for the *final* response (the
/// admission reply is always bounded to 30 s); `None` waits forever —
/// appropriate for measurements, which can be long.
///
/// # Errors
///
/// [`ServeError::Rejected`] when the daemon sheds the request at
/// admission (overload, infeasible deadline, drain, malformed);
/// [`ServeError::Io`]/[`ServeError::Frame`] for connection failures;
/// [`ServeError::Protocol`] when the daemon replies out of order.
pub fn submit(
    addr: &str,
    req: &SubmitRequest,
    response_timeout: Option<Duration>,
) -> Result<SubmitOutcome, ServeError> {
    submit_with_retries(addr, req, response_timeout, 0)
}

/// [`submit`] with up to `connect_retries` additional connect attempts
/// under capped exponential backoff with jitter. Only the *connect* is
/// retried — once the request is on the wire it is never resent, so a
/// daemon that dies mid-request surfaces a typed error instead of a
/// silent duplicate submission.
///
/// # Errors
///
/// As [`submit`]; connect errors only after the retry budget is spent.
pub fn submit_with_retries(
    addr: &str,
    req: &SubmitRequest,
    response_timeout: Option<Duration>,
    connect_retries: u32,
) -> Result<SubmitOutcome, ServeError> {
    let stream = connect_with_retry(addr, connect_retries)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut s = &stream;
    protocol::send(&mut s, &ServeMessage::Submit(req.clone()))?;
    let (request_id, queue_depth) = match protocol::recv(&mut s)? {
        ServeMessage::Accepted {
            request_id,
            queue_depth,
        } => (request_id, queue_depth),
        ServeMessage::Rejected { reason, detail } => {
            return Err(ServeError::Rejected { reason, detail })
        }
        other => {
            return Err(ServeError::Protocol(format!(
                "expected Accepted/Rejected, got kind {}",
                other.kind()
            )))
        }
    };
    // Interim Progress frames keep arriving between Accepted and the
    // final response; each one restarts the response-timeout window (the
    // daemon is demonstrably alive and working on the request).
    let mut progress = None;
    let response = loop {
        stream.set_read_timeout(response_timeout)?;
        match protocol::recv(&mut s)? {
            ServeMessage::Progress {
                probes_done,
                probes_total,
                ..
            } => progress = Some((probes_done, probes_total)),
            msg @ (ServeMessage::MeasureDone { .. }
            | ServeMessage::AssignDone { .. }
            | ServeMessage::SweepDone { .. }
            | ServeMessage::Failed { .. }) => break msg,
            other => {
                return Err(ServeError::Protocol(format!(
                    "expected a final response, got kind {}",
                    other.kind()
                )))
            }
        }
    };
    Ok(SubmitOutcome {
        request_id,
        queue_depth,
        response,
        progress,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn backoff_doubles_with_bounded_jitter() {
        for attempt in 0..12 {
            let nominal = (100u64 << attempt.min(10)).min(1_600);
            let d = backoff_delay(attempt).as_millis() as u64;
            assert!(
                d >= nominal - nominal / 2 / 2 && d <= nominal + nominal / 2 / 2 + 1,
                "attempt {attempt}: delay {d} ms outside ±25% of {nominal} ms"
            );
        }
        // Deterministic within a process.
        assert_eq!(backoff_delay(3), backoff_delay(3));
    }

    #[test]
    fn connect_retries_eventually_surface_the_io_error() {
        // Nothing listens on a reserved-but-closed port; 0 retries must
        // fail fast with the Io error, not hang.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let started = Instant::now();
        let err = connect_with_retry(&addr, 2).unwrap_err();
        assert!(matches!(err, ServeError::Io(_)));
        // Two backoffs (≥ ~75 ms + ~150 ms nominal-with-jitter) elapsed.
        assert!(started.elapsed() >= Duration::from_millis(150));
    }
}
