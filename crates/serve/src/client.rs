//! The client side of the serve protocol: one connection, one request.

use crate::error::ServeError;
use crate::protocol::{self, ServeMessage, SubmitRequest};
use std::net::TcpStream;
use std::time::Duration;

/// One accepted-and-answered submission.
#[derive(Debug)]
pub struct SubmitOutcome {
    /// Server-assigned request id.
    pub request_id: u64,
    /// Queue depth the daemon observed at admission.
    pub queue_depth: u32,
    /// The final response: `MeasureDone`, `AssignDone`, `SweepDone`, or
    /// `Failed` — never `Accepted`/`Rejected`/`Submit`.
    pub response: ServeMessage,
}

/// Submits one request to a daemon and blocks for the final response.
/// `response_timeout` bounds the wait for the *final* response (the
/// admission reply is always bounded to 30 s); `None` waits forever —
/// appropriate for measurements, which can be long.
///
/// # Errors
///
/// [`ServeError::Rejected`] when the daemon sheds the request at
/// admission (overload, infeasible deadline, drain, malformed);
/// [`ServeError::Io`]/[`ServeError::Frame`] for connection failures;
/// [`ServeError::Protocol`] when the daemon replies out of order.
pub fn submit(
    addr: &str,
    req: &SubmitRequest,
    response_timeout: Option<Duration>,
) -> Result<SubmitOutcome, ServeError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut s = &stream;
    protocol::send(&mut s, &ServeMessage::Submit(req.clone()))?;
    let (request_id, queue_depth) = match protocol::recv(&mut s)? {
        ServeMessage::Accepted {
            request_id,
            queue_depth,
        } => (request_id, queue_depth),
        ServeMessage::Rejected { reason, detail } => {
            return Err(ServeError::Rejected { reason, detail })
        }
        other => {
            return Err(ServeError::Protocol(format!(
                "expected Accepted/Rejected, got kind {}",
                other.kind()
            )))
        }
    };
    stream.set_read_timeout(response_timeout)?;
    let response = match protocol::recv(&mut s)? {
        msg @ (ServeMessage::MeasureDone { .. }
        | ServeMessage::AssignDone { .. }
        | ServeMessage::SweepDone { .. }
        | ServeMessage::Failed { .. }) => msg,
        other => {
            return Err(ServeError::Protocol(format!(
                "expected a final response, got kind {}",
                other.kind()
            )))
        }
    };
    Ok(SubmitOutcome {
        request_id,
        queue_depth,
        response,
    })
}
