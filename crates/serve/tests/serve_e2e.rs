//! End-to-end fault-injection tests of the `clado serve` daemon over
//! loopback TCP: Ω-cache hits are bitwise identical with zero probe
//! evaluations, overload and infeasible deadlines shed with *typed*
//! rejections (never timeouts or crashes), a worker killed mid-request
//! costs a retry but not the request, and a drain under load finishes
//! in-flight work while refusing late submitters.
//!
//! Every test takes the fault-injection `test_guard`, which serializes
//! the suite: the fault registry is process-global, so a fault armed
//! for one test must never fire inside another's workers.

use clado_core::{
    measure_sensitivities, sensitivities_from_bytes, SensitivityMatrix, SensitivityOptions,
};
use clado_dist::{run_pool_worker, WorkerOptions};
use clado_models::{DataSplit, SynthVision, SynthVisionConfig};
use clado_nn::Network;
use clado_quant::BitWidthSet;
use clado_serve::protocol::FailKind;
use clado_serve::{
    submit, MeasureSpec, ModelProvider, Op, RejectReason, ServeError, ServeMessage, ServeOptions,
    ServeReport, Server, SubmitRequest,
};
use clado_telemetry::faultinject::{self, test_guard, FaultSpec};
use clado_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

fn setup() -> (Network, DataSplit) {
    let mut rng = StdRng::seed_from_u64(3);
    let net = Network::new(
        clado_nn::Sequential::new()
            .push(
                "conv1",
                clado_nn::Conv2d::new(clado_tensor::Conv2dSpec::new(3, 6, 3, 1, 1), true, &mut rng),
            )
            .push("relu1", clado_nn::Activation::new(clado_nn::ActKind::Relu))
            .push(
                "conv2",
                clado_nn::Conv2d::new(clado_tensor::Conv2dSpec::new(6, 6, 3, 1, 1), true, &mut rng),
            )
            .push("relu2", clado_nn::Activation::new(clado_nn::ActKind::Relu))
            .push("pool", clado_nn::GlobalAvgPool::new())
            .push("fc", clado_nn::Linear::new(6, 4, &mut rng)),
        4,
    );
    let data = SynthVision::generate(SynthVisionConfig {
        classes: 4,
        img: 8,
        train: 48,
        val: 32,
        seed: 9,
        noise: 0.2,
        label_noise: 0.0,
    });
    let set = data.train.subset(&(0..16).collect::<Vec<_>>());
    (net, set)
}

/// The canonical request spec matching [`setup`]'s model and set.
fn spec() -> MeasureSpec {
    MeasureSpec {
        model: "synthetic".into(),
        set_size: 16,
        set_seed: 0,
        batch_size: 64,
        bits: vec![2, 8],
        scheme: 0,
        use_prefix_cache: true,
        estimator: 0,
        probe_budget: 0,
        estimator_seed: 0,
    }
}

fn measure_request(spec: MeasureSpec) -> SubmitRequest {
    SubmitRequest {
        spec,
        op: Op::Measure,
        deadline_ms: 0,
    }
}

/// A provider that always hands out clones of the synthetic model —
/// server- and worker-side alike, so config fingerprints agree. The
/// template network lives behind a mutex because `ModelProvider` must
/// be `Sync` and `Network` is not.
fn provider_of(net: &Network, set: &DataSplit) -> ModelProvider {
    let net = Mutex::new(net.clone());
    let set = set.clone();
    Arc::new(move |_spec: &MeasureSpec| Ok((net.lock().unwrap().clone(), set.clone())))
}

fn reference_matrix(net: &Network, set: &DataSplit) -> SensitivityMatrix {
    let mut net = net.clone();
    measure_sensitivities(
        &mut net,
        set,
        &BitWidthSet::new(&[2, 8]),
        &SensitivityOptions::default(),
    )
    .expect("single-process reference")
}

fn assert_bitwise_equal(a: &SensitivityMatrix, b: &SensitivityMatrix, label: &str) {
    assert_eq!(
        a.base_loss.to_bits(),
        b.base_loss.to_bits(),
        "{label}: base loss"
    );
    let dim = a.matrix().dim();
    assert_eq!(dim, b.matrix().dim(), "{label}: dimension");
    for u in 0..dim {
        for v in u..dim {
            assert_eq!(
                a.matrix().get(u, v).to_bits(),
                b.matrix().get(u, v).to_bits(),
                "{label}: entry ({u},{v})"
            );
        }
    }
}

/// Binds a server, returns its client address, drain flag, and the
/// join handle of the thread running it.
fn start(
    provider: ModelProvider,
    opts: ServeOptions,
) -> (
    String,
    String,
    Arc<std::sync::atomic::AtomicBool>,
    std::thread::JoinHandle<Result<ServeReport, ServeError>>,
) {
    let server =
        Server::bind("127.0.0.1:0", "127.0.0.1:0", provider, opts).expect("bind serve daemon");
    let client = server.client_addr().to_string();
    let worker = server.worker_addr().to_string();
    let drain = server.drain_flag();
    let handle = std::thread::spawn(move || server.run());
    (client, worker, drain, handle)
}

fn drain_and_join(
    drain: &std::sync::atomic::AtomicBool,
    handle: std::thread::JoinHandle<Result<ServeReport, ServeError>>,
) -> ServeReport {
    drain.store(true, Ordering::SeqCst);
    handle
        .join()
        .expect("server thread")
        .expect("daemon drains cleanly")
}

#[test]
fn repeat_config_is_served_from_cache_bitwise_identical_with_zero_evaluations() {
    let _guard = test_guard();
    let (net, set) = setup();
    let reference = reference_matrix(&net, &set);
    let (addr, _w, drain, handle) = start(provider_of(&net, &set), ServeOptions::default());

    // First request: a genuine measurement (cache miss).
    let first = submit(&addr, &measure_request(spec()), None).expect("first submit");
    let (first_clsm, first_evals) = match first.response {
        ServeMessage::MeasureDone {
            cache_hit,
            evaluations,
            clsm,
            ..
        } => {
            assert!(!cache_hit, "first request cannot hit the cache");
            assert!(evaluations > 0, "a fresh measure pays probe evaluations");
            (clsm, evaluations)
        }
        other => panic!("expected MeasureDone, got kind {}", other.kind()),
    };
    assert_eq!(
        first_evals, reference.stats.evaluations as u64,
        "served measurement pays the same evaluations as single-process"
    );
    let served = sensitivities_from_bytes(&first_clsm).expect("served CLSM decodes");
    assert_bitwise_equal(&served, &reference, "served measurement");

    // Second request, identical config: a cache hit, zero probe
    // evaluations, and a byte-for-byte identical CLSM image.
    let second = submit(&addr, &measure_request(spec()), None).expect("second submit");
    match second.response {
        ServeMessage::MeasureDone {
            cache_hit,
            evaluations,
            clsm,
            ..
        } => {
            assert!(cache_hit, "repeat config must hit the Ω cache");
            assert_eq!(evaluations, 0, "a cache hit pays zero probe evaluations");
            assert_eq!(clsm, first_clsm, "cache hit is bitwise identical");
        }
        other => panic!("expected MeasureDone, got kind {}", other.kind()),
    }

    // Any config field change misses and re-measures.
    let changed = MeasureSpec {
        set_seed: 1,
        ..spec()
    };
    let third = submit(&addr, &measure_request(changed), None).expect("third submit");
    match third.response {
        ServeMessage::MeasureDone {
            cache_hit,
            evaluations,
            ..
        } => {
            assert!(!cache_hit, "a changed config field must miss");
            assert!(evaluations > 0, "a miss re-measures");
        }
        other => panic!("expected MeasureDone, got kind {}", other.kind()),
    }

    let report = drain_and_join(&drain, handle);
    assert_eq!(report.requests, 3);
    assert_eq!(report.completed, 3);
    assert_eq!(report.failed, 0);
    assert_eq!(report.cache_hits, 1);
    assert_eq!(report.cache_misses, 2);
}

#[test]
fn estimated_measure_misses_the_exact_cache_and_matches_single_process() {
    let _guard = test_guard();
    let (net, set) = setup();
    let (addr, _w, drain, handle) = start(provider_of(&net, &set), ServeOptions::default());

    // Exact measurement seeds the cache.
    let exact = submit(&addr, &measure_request(spec()), None).expect("exact submit");
    let exact_clsm = match exact.response {
        ServeMessage::MeasureDone {
            cache_hit, clsm, ..
        } => {
            assert!(!cache_hit, "first request cannot hit the cache");
            clsm
        }
        other => panic!("expected MeasureDone, got kind {}", other.kind()),
    };

    // Same model, same config — but estimated. The estimator fields are
    // part of the spec fingerprint, so this MUST miss the exact entry.
    let est_spec = MeasureSpec {
        estimator: 3, // blocktopk
        probe_budget: 0,
        estimator_seed: clado_estim::DEFAULT_ESTIMATOR_SEED,
        ..spec()
    };
    let est = submit(&addr, &measure_request(est_spec.clone()), None).expect("estimated submit");
    let est_clsm = match est.response {
        ServeMessage::MeasureDone {
            cache_hit,
            evaluations,
            clsm,
            ..
        } => {
            assert!(
                !cache_hit,
                "an estimated request must never be served a cached exact Ω"
            );
            assert!(evaluations > 0, "estimation pays probe evaluations");
            clsm
        }
        other => panic!("expected MeasureDone, got kind {}", other.kind()),
    };
    assert_ne!(est_clsm, exact_clsm, "estimated Ω differs from exact");
    let served = sensitivities_from_bytes(&est_clsm).expect("served CLSM decodes");
    assert_eq!(
        served.stats.provenance.estimator, 3,
        "served CLSM records the estimator provenance"
    );

    // The daemon's local estimation path is bitwise identical to the
    // single-process estimator under the same kind/budget/seed.
    let single = clado_estim::estimate_sensitivities(
        &mut net.clone(),
        &set,
        &BitWidthSet::new(&[2, 8]),
        &clado_estim::EstimatorOptions::new(clado_estim::EstimatorKind::BlockTopK),
    )
    .expect("single-process estimate");
    assert_bitwise_equal(&served, &single.matrix, "served estimation");

    // Repeating the estimated request hits its own cache entry.
    let again = submit(&addr, &measure_request(est_spec.clone()), None).expect("repeat estimated");
    match again.response {
        ServeMessage::MeasureDone {
            cache_hit,
            evaluations,
            clsm,
            ..
        } => {
            assert!(cache_hit, "repeat estimated config must hit the Ω cache");
            assert_eq!(evaluations, 0);
            assert_eq!(clsm, est_clsm, "cache hit is bitwise identical");
        }
        other => panic!("expected MeasureDone, got kind {}", other.kind()),
    }

    // A different estimator for the same model misses again.
    let sketched = MeasureSpec {
        estimator: 1,
        ..est_spec
    };
    let third = submit(&addr, &measure_request(sketched), None).expect("sketched submit");
    match third.response {
        ServeMessage::MeasureDone { cache_hit, .. } => {
            assert!(!cache_hit, "a different estimator must miss");
        }
        other => panic!("expected MeasureDone, got kind {}", other.kind()),
    }

    let report = drain_and_join(&drain, handle);
    assert_eq!(report.requests, 4);
    assert_eq!(report.completed, 4);
    assert_eq!(report.cache_hits, 1);
    assert_eq!(report.cache_misses, 3);
}

#[test]
fn assign_and_sweep_solve_against_the_cached_omega() {
    let _guard = test_guard();
    let (net, set) = setup();
    let layers = net.quantizable_layers().len();
    let (addr, _w, drain, handle) = start(provider_of(&net, &set), ServeOptions::default());

    let assign = submit(
        &addr,
        &SubmitRequest {
            spec: spec(),
            op: Op::Assign { avg_bits: 4.0 },
            deadline_ms: 0,
        },
        None,
    )
    .expect("assign submit");
    match assign.response {
        ServeMessage::AssignDone { cache_hit, row, .. } => {
            assert!(!cache_hit);
            assert_eq!(row.bits.len(), layers, "one width per quantizable layer");
            assert!(row.bits.iter().all(|b| [2u8, 8].contains(b)));
            assert!(row.avg_bits <= 4.0 + 1e-9, "budget respected");
            assert!(row.cost_bits > 0);
            assert!(!row.method.is_empty() && !row.termination.is_empty());
        }
        other => panic!("expected AssignDone, got kind {}", other.kind()),
    }

    // The sweep reuses the Ω measured for the assign: same fingerprint,
    // so the whole table costs zero additional probe evaluations.
    let sweep = submit(
        &addr,
        &SubmitRequest {
            spec: spec(),
            op: Op::Sweep {
                from: 2.0,
                to: 8.0,
                step: 2.0,
            },
            deadline_ms: 0,
        },
        None,
    )
    .expect("sweep submit");
    match sweep.response {
        ServeMessage::SweepDone {
            cache_hit,
            evaluations,
            rows,
            ..
        } => {
            assert!(cache_hit, "sweep reuses the assign's measurement");
            assert_eq!(evaluations, 0);
            assert_eq!(rows.len(), 4, "budgets 2, 4, 6, 8");
            for pair in rows.windows(2) {
                assert!(
                    pair[0].cost_bits <= pair[1].cost_bits,
                    "larger budgets never shrink the chosen model"
                );
            }
        }
        other => panic!("expected SweepDone, got kind {}", other.kind()),
    }

    let report = drain_and_join(&drain, handle);
    assert_eq!(report.completed, 2);
    assert_eq!(report.cache_hits, 1);
}

/// A provider gate: the test waits for a measurement to enter the
/// provider, then decides when to let it proceed.
struct Gate {
    state: Mutex<u32>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(0),
            cv: Condvar::new(),
        })
    }

    /// Called from the provider: announce entry, block until released.
    fn enter(&self) {
        let mut s = self.state.lock().unwrap();
        *s = 1;
        self.cv.notify_all();
        while *s != 2 {
            s = self.cv.wait(s).unwrap();
        }
    }

    fn wait_entered(&self) {
        let mut s = self.state.lock().unwrap();
        while *s == 0 {
            s = self.cv.wait(s).unwrap();
        }
    }

    fn release(&self) {
        let mut s = self.state.lock().unwrap();
        *s = 2;
        self.cv.notify_all();
    }
}

#[test]
fn flood_past_the_queue_depth_is_shed_with_typed_overload_rejections() {
    let _guard = test_guard();
    let (net, set) = setup();
    let gate = Gate::new();
    let provider: ModelProvider = {
        let net = Mutex::new(net.clone());
        let set = set.clone();
        let gate = Arc::clone(&gate);
        Arc::new(move |_spec: &MeasureSpec| {
            gate.enter();
            Ok((net.lock().unwrap().clone(), set.clone()))
        })
    };
    let (addr, _w, drain, handle) = start(
        provider,
        ServeOptions {
            queue_depth: 1,
            executors: 1,
            ..ServeOptions::default()
        },
    );

    // Request 1 occupies the single executor (blocked in the provider).
    let first = {
        let addr = addr.clone();
        std::thread::spawn(move || submit(&addr, &measure_request(spec()), None))
    };
    gate.wait_entered();

    // Flood the daemon. The executor is pinned and the queue holds one
    // request, so the admission lock admits exactly one of these and
    // sheds the other five with the typed Overloaded rejection — not a
    // timeout, not a crash.
    let settled = Arc::new(AtomicUsize::new(0));
    let flood: Vec<_> = (0..6)
        .map(|_| {
            let addr = addr.clone();
            let settled = Arc::clone(&settled);
            std::thread::spawn(move || {
                let r = submit(&addr, &measure_request(spec()), None);
                if r.is_err() {
                    settled.fetch_add(1, Ordering::SeqCst);
                }
                r
            })
        })
        .collect();

    // A malformed request sheds as Malformed even under load.
    let malformed = SubmitRequest {
        spec: MeasureSpec {
            bits: vec![],
            ..spec()
        },
        op: Op::Measure,
        deadline_ms: 0,
    };
    match submit(&addr, &malformed, None) {
        Err(ServeError::Rejected { reason, .. }) => {
            assert_eq!(reason, RejectReason::Malformed)
        }
        other => panic!("expected Malformed rejection, got {other:?}"),
    }

    // Wait until all five rejections have settled — a straggler that
    // reached admission only after the gate opened would find the queue
    // slot free again and be admitted instead of shed.
    while settled.load(Ordering::SeqCst) < 5 {
        std::thread::sleep(Duration::from_millis(1));
    }

    // Admitted work still completes once the gate opens.
    gate.release();
    let mut admitted = 0;
    let mut shed = 0;
    for handle in flood {
        match handle.join().expect("flood thread") {
            Ok(outcome) => {
                assert!(matches!(outcome.response, ServeMessage::MeasureDone { .. }));
                admitted += 1;
            }
            Err(ServeError::Rejected { reason, detail }) => {
                assert_eq!(reason, RejectReason::Overloaded, "{detail}");
                assert!(
                    detail.contains("depth 1"),
                    "detail names the bound: {detail}"
                );
                shed += 1;
            }
            Err(e) => panic!("typed rejection expected, got {e}"),
        }
    }
    assert_eq!(admitted, 1, "exactly one flood request fit the queue");
    assert_eq!(shed, 5, "the rest were shed");
    let outcome = first
        .join()
        .expect("submit thread")
        .expect("the in-flight request completes");
    assert!(matches!(outcome.response, ServeMessage::MeasureDone { .. }));

    let report = drain_and_join(&drain, handle);
    assert_eq!(report.completed, 2);
    assert_eq!(report.shed_overload, 5, "{report:?}");
    assert_eq!(report.shed_malformed, 1);
}

#[test]
fn deadlines_are_enforced_and_infeasible_ones_shed_at_admission() {
    let _guard = test_guard();
    let (net, set) = setup();
    let provider: ModelProvider = {
        let net = Mutex::new(net.clone());
        let set = set.clone();
        Arc::new(move |_spec: &MeasureSpec| {
            // Guarantee an observable service time, so the EWMA-based
            // feasibility check has something real to refuse against.
            std::thread::sleep(Duration::from_millis(50));
            Ok((net.lock().unwrap().clone(), set.clone()))
        })
    };
    let (addr, _w, drain, handle) = start(
        provider,
        ServeOptions {
            executors: 1,
            ..ServeOptions::default()
        },
    );

    // No service history yet: the 30 ms deadline is admitted — and then
    // enforced mid-request with a typed failure, not a hang.
    let doomed = submit(
        &addr,
        &SubmitRequest {
            spec: spec(),
            op: Op::Measure,
            deadline_ms: 30,
        },
        None,
    )
    .expect("doomed request is admitted and answered");
    match doomed.response {
        ServeMessage::Failed { kind, detail, .. } => {
            assert_eq!(kind, FailKind::DeadlineExceeded, "{detail}");
        }
        other => panic!("expected DeadlineExceeded, got kind {}", other.kind()),
    }

    // Service history now exists (≥ 50 ms): a 1 ms deadline is shed at
    // admission as DeadlineInfeasible instead of being admitted to die.
    match submit(
        &addr,
        &SubmitRequest {
            spec: spec(),
            op: Op::Measure,
            deadline_ms: 1,
        },
        None,
    ) {
        Err(ServeError::Rejected { reason, detail }) => {
            assert_eq!(reason, RejectReason::DeadlineInfeasible, "{detail}");
            assert!(detail.contains("deadline 1 ms"), "{detail}");
        }
        other => panic!("expected DeadlineInfeasible rejection, got {other:?}"),
    }

    // Deadline-free requests are untouched by the history.
    let relaxed = submit(&addr, &measure_request(spec()), None).expect("relaxed submit");
    assert!(matches!(relaxed.response, ServeMessage::MeasureDone { .. }));

    let report = drain_and_join(&drain, handle);
    assert_eq!(report.completed, 1);
    assert_eq!(report.failed, 1);
    assert_eq!(report.shed_deadline, 1);
}

#[cfg(debug_assertions)]
#[test]
fn killed_worker_mid_request_is_retried_on_the_survivor_bitwise_identical() {
    let _guard = test_guard();
    let (net, set) = setup();
    let reference = reference_matrix(&net, &set);
    let telemetry = Telemetry::new();
    // Exactly one pooled worker dies the moment it starts its second
    // shard (skip 1 so the request is mid-flight), lease held — the
    // serve-side analogue of a SIGKILL.
    faultinject::arm("dist.worker.shard", FaultSpec::panic().skip(1).times(1));
    let (addr, worker_addr, drain, handle) = start(
        provider_of(&net, &set),
        ServeOptions {
            heartbeat_timeout: Duration::from_millis(1000),
            telemetry: telemetry.clone(),
            ..ServeOptions::default()
        },
    );
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let worker_addr = worker_addr.clone();
            let net = net.clone();
            let set = set.clone();
            std::thread::spawn(move || {
                run_pool_worker(
                    &worker_addr,
                    move |_job| Ok((net.clone(), set.clone())),
                    &WorkerOptions {
                        heartbeat_interval: Duration::from_millis(50),
                        ..Default::default()
                    },
                )
            })
        })
        .collect();
    // Let both workers finish the handshake before submitting, so the
    // shards actually fan out across the pool.
    let connect_deadline = Instant::now() + Duration::from_secs(10);
    while telemetry.counter_value("serve.pool.workers_connected") < 2 {
        assert!(Instant::now() < connect_deadline, "workers connect");
        std::thread::sleep(Duration::from_millis(10));
    }

    let outcome =
        submit(&addr, &measure_request(spec()), None).expect("request survives a killed worker");
    match outcome.response {
        ServeMessage::MeasureDone {
            cache_hit, clsm, ..
        } => {
            assert!(!cache_hit);
            let served = sensitivities_from_bytes(&clsm).expect("served CLSM decodes");
            assert_bitwise_equal(&served, &reference, "after worker death");
        }
        other => panic!("expected MeasureDone, got kind {}", other.kind()),
    }
    assert!(
        faultinject::hits("dist.worker.shard") >= 2,
        "skip=1 + fire=1"
    );
    assert!(
        telemetry.counter_value("serve.pool.evictions") >= 1,
        "the dead worker was evicted"
    );

    let report = drain_and_join(&drain, handle);
    assert_eq!(report.completed, 1);
    assert_eq!(report.failed, 0);
    let results: Vec<_> = workers.into_iter().map(|h| h.join()).collect();
    let panicked = results.iter().filter(|r| r.is_err()).count();
    assert_eq!(panicked, 1, "exactly one worker thread died");
}

#[test]
fn drain_under_load_finishes_inflight_work_and_refuses_late_submitters() {
    let _guard = test_guard();
    let (net, set) = setup();
    let gate = Gate::new();
    let provider: ModelProvider = {
        let net = Mutex::new(net.clone());
        let set = set.clone();
        let gate = Arc::clone(&gate);
        Arc::new(move |_spec: &MeasureSpec| {
            gate.enter();
            Ok((net.lock().unwrap().clone(), set.clone()))
        })
    };
    let (addr, _w, drain, handle) = start(provider, ServeOptions::default());

    let inflight = {
        let addr = addr.clone();
        std::thread::spawn(move || submit(&addr, &measure_request(spec()), None))
    };
    gate.wait_entered();

    // Drain lands while the request is mid-measure.
    drain.store(true, Ordering::SeqCst);
    match submit(&addr, &measure_request(spec()), None) {
        Err(ServeError::Rejected { reason, .. }) => {
            assert_eq!(reason, RejectReason::Draining)
        }
        other => panic!("expected Draining rejection, got {other:?}"),
    }

    gate.release();
    let outcome = inflight
        .join()
        .expect("submit thread")
        .expect("in-flight request completes through the drain");
    assert!(matches!(outcome.response, ServeMessage::MeasureDone { .. }));

    let report = handle.join().expect("server thread").expect("clean drain");
    assert_eq!(report.completed, 1);
    assert_eq!(report.failed, 0);
    assert_eq!(report.shed_draining, 1);
}

/// A unique scratch directory for persistent-cache tests.
fn temp_cache_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::AtomicU64;
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "clado-serve-e2e-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_options(dir: &std::path::Path) -> ServeOptions {
    ServeOptions {
        cache_dir: Some(dir.to_path_buf()),
        ..ServeOptions::default()
    }
}

fn clso_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|e| e == "clso"))
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn restarted_daemon_serves_the_persisted_omega_with_zero_evaluations() {
    let _guard = test_guard();
    let (net, set) = setup();
    let dir = temp_cache_dir("restart");

    // Generation 0: a genuine measurement, spilled to disk.
    let (addr, _w, drain, handle) = start(provider_of(&net, &set), durable_options(&dir));
    let first = submit(&addr, &measure_request(spec()), None).expect("first submit");
    let first_clsm = match first.response {
        ServeMessage::MeasureDone {
            cache_hit,
            evaluations,
            clsm,
            ..
        } => {
            assert!(!cache_hit);
            assert!(evaluations > 0);
            clsm
        }
        other => panic!("expected MeasureDone, got kind {}", other.kind()),
    };
    // Progress frames are best-effort: a measure this small can finish
    // before the pool waiter observes an interim state. When one did
    // arrive it must be well-formed against the probe plan.
    if let Some((done, total)) = first.progress {
        assert!(total > 0 && done <= total, "progress {done}/{total}");
    }
    assert_eq!(
        clso_files(&dir).len(),
        1,
        "the measurement was committed to the cache directory"
    );
    drain_and_join(&drain, handle);

    // Generation 1: a fresh daemon over the same directory answers the
    // repeat config from the warm-loaded persistent cache — zero probe
    // evaluations, byte-identical CLSM — without ever re-measuring.
    let (addr, _w, drain, handle) = start(provider_of(&net, &set), durable_options(&dir));
    let second = submit(&addr, &measure_request(spec()), None).expect("post-restart submit");
    match second.response {
        ServeMessage::MeasureDone {
            cache_hit,
            evaluations,
            clsm,
            ..
        } => {
            assert!(cache_hit, "the persisted entry must be served as a hit");
            assert_eq!(evaluations, 0, "a persistent hit pays zero evaluations");
            assert_eq!(clsm, first_clsm, "bitwise identical across the restart");
        }
        other => panic!("expected MeasureDone, got kind {}", other.kind()),
    }
    assert!(second.progress.is_none(), "cache hits stream no progress");

    let report = drain_and_join(&drain, handle);
    assert_eq!(report.requests, 1);
    assert_eq!(report.cache_hits, 1);
    assert_eq!(report.cache_misses, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_persisted_entry_is_quarantined_and_remeasured_not_fatal() {
    let _guard = test_guard();
    let (net, set) = setup();
    let dir = temp_cache_dir("corrupt");

    let (addr, _w, drain, handle) = start(provider_of(&net, &set), durable_options(&dir));
    let first = submit(&addr, &measure_request(spec()), None).expect("first submit");
    let first_clsm = match first.response {
        ServeMessage::MeasureDone { clsm, .. } => clsm,
        other => panic!("expected MeasureDone, got kind {}", other.kind()),
    };
    drain_and_join(&drain, handle);

    // Bit-rot the committed entry.
    let files = clso_files(&dir);
    assert_eq!(files.len(), 1);
    let mut data = std::fs::read(&files[0]).expect("read committed entry");
    let mid = data.len() / 2;
    data[mid] ^= 0x40;
    std::fs::write(&files[0], &data).expect("corrupt committed entry");

    // The restarted daemon quarantines the entry (at warm-load) and
    // re-measures on request — same bytes as the original measurement,
    // and the store is healthy again afterwards.
    let telemetry = Telemetry::new();
    let (addr, _w, drain, handle) = start(
        provider_of(&net, &set),
        ServeOptions {
            telemetry: telemetry.clone(),
            ..durable_options(&dir)
        },
    );
    assert!(
        telemetry.counter_value("serve.disk_cache.quarantined") >= 1,
        "warm-load quarantined the corrupt entry"
    );
    let again = submit(&addr, &measure_request(spec()), None).expect("re-measure submit");
    let remeasured_clsm = match again.response {
        ServeMessage::MeasureDone {
            cache_hit,
            evaluations,
            clsm,
            ..
        } => {
            assert!(!cache_hit, "the quarantined entry must not be served");
            assert!(evaluations > 0, "the config was re-measured");
            clsm
        }
        other => panic!("expected MeasureDone, got kind {}", other.kind()),
    };
    // The semantic payload (Ĝ, base loss) matches the original
    // measurement exactly; only the wall-clock stats block may differ.
    assert_bitwise_equal(
        &sensitivities_from_bytes(&remeasured_clsm).expect("re-measured CLSM decodes"),
        &sensitivities_from_bytes(&first_clsm).expect("original CLSM decodes"),
        "re-measurement",
    );
    assert_eq!(clso_files(&dir).len(), 1, "the entry was re-committed");
    drain_and_join(&drain, handle);

    // One more restart proves the re-committed entry is valid: a hit,
    // bitwise identical to the reply that re-populated it.
    let (addr, _w, drain, handle) = start(provider_of(&net, &set), durable_options(&dir));
    let third = submit(&addr, &measure_request(spec()), None).expect("third submit");
    match third.response {
        ServeMessage::MeasureDone {
            cache_hit, clsm, ..
        } => {
            assert!(cache_hit);
            assert_eq!(clsm, remeasured_clsm);
        }
        other => panic!("expected MeasureDone, got kind {}", other.kind()),
    }
    drain_and_join(&drain, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exact_and_estimated_entries_survive_a_restart_without_colliding() {
    let _guard = test_guard();
    let (net, set) = setup();
    let dir = temp_cache_dir("provenance");
    let est_spec = MeasureSpec {
        estimator: 3, // blocktopk
        probe_budget: 0,
        estimator_seed: clado_estim::DEFAULT_ESTIMATOR_SEED,
        ..spec()
    };

    let (addr, _w, drain, handle) = start(provider_of(&net, &set), durable_options(&dir));
    let clsm_of = |outcome: clado_serve::SubmitOutcome, label: &str| match outcome.response {
        ServeMessage::MeasureDone { clsm, .. } => clsm,
        other => panic!("{label}: expected MeasureDone, got kind {}", other.kind()),
    };
    let exact_clsm = clsm_of(
        submit(&addr, &measure_request(spec()), None).expect("exact submit"),
        "exact",
    );
    let est_clsm = clsm_of(
        submit(&addr, &measure_request(est_spec.clone()), None).expect("estimated submit"),
        "estimated",
    );
    assert_ne!(exact_clsm, est_clsm);
    assert_eq!(clso_files(&dir).len(), 2, "one committed entry each");
    drain_and_join(&drain, handle);

    // After the restart each request is served its own provenance —
    // the estimated request must never receive the exact Ω or vice
    // versa, across process death just as within one process.
    let (addr, _w, drain, handle) = start(provider_of(&net, &set), durable_options(&dir));
    for (req_spec, want, label) in [
        (spec(), &exact_clsm, "exact"),
        (est_spec.clone(), &est_clsm, "estimated"),
    ] {
        let outcome = submit(&addr, &measure_request(req_spec), None).expect("post-restart submit");
        match outcome.response {
            ServeMessage::MeasureDone {
                cache_hit,
                evaluations,
                clsm,
                ..
            } => {
                assert!(cache_hit, "{label}: persisted entry hits");
                assert_eq!(evaluations, 0, "{label}");
                assert_eq!(&clsm, want, "{label}: correct provenance served");
            }
            other => panic!("{label}: expected MeasureDone, got kind {}", other.kind()),
        }
    }
    let report = drain_and_join(&drain, handle);
    assert_eq!(report.cache_hits, 2);
    assert_eq!(report.cache_misses, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A warmed daemon: client address, drain flag, server join handle, and
/// the cached CLSM bytes its Ω cache will serve.
type WarmDaemon = (
    String,
    Arc<std::sync::atomic::AtomicBool>,
    std::thread::JoinHandle<Result<ServeReport, ServeError>>,
    Vec<u8>,
);

/// Populates a daemon's Ω cache so a follow-up submit round-trips in
/// exactly three frames (client Submit, server Accepted, server
/// response) — the deterministic frame count the wire-fault tests key
/// their `skip` windows on.
fn warm_daemon(net: &Network, set: &DataSplit) -> WarmDaemon {
    let (addr, _w, drain, handle) = start(provider_of(net, set), ServeOptions::default());
    let first = submit(&addr, &measure_request(spec()), None).expect("warm-up submit");
    let clsm = match first.response {
        ServeMessage::MeasureDone { clsm, .. } => clsm,
        other => panic!("expected MeasureDone, got kind {}", other.kind()),
    };
    (addr, drain, handle, clsm)
}

#[cfg(debug_assertions)]
#[test]
fn corrupted_response_frame_surfaces_the_typed_checksum_error_and_the_daemon_recovers() {
    let _guard = test_guard();
    let (net, set) = setup();
    let (addr, drain, handle, clsm) = warm_daemon(&net, &set);

    // Frames after arming: 1 = client Submit, 2 = server Accepted,
    // 3 = server MeasureDone — the one the fault flips a checksum bit in.
    faultinject::arm("wire.write.corrupt", FaultSpec::trigger().skip(2).times(1));
    match submit(
        &addr,
        &measure_request(spec()),
        Some(Duration::from_secs(10)),
    ) {
        Err(ServeError::Frame(clado_dist::FrameError::BadChecksum)) => {}
        other => panic!("expected the typed BadChecksum error, got {other:?}"),
    }

    // The fault window is spent; the daemon recovers the very next
    // request, still bitwise identical.
    let retry = submit(&addr, &measure_request(spec()), None).expect("recovered request");
    match retry.response {
        ServeMessage::MeasureDone {
            cache_hit, clsm: c, ..
        } => {
            assert!(cache_hit);
            assert_eq!(c, clsm);
        }
        other => panic!("expected MeasureDone, got kind {}", other.kind()),
    }
    let report = drain_and_join(&drain, handle);
    assert_eq!(report.failed, 0, "a garbled write is not a request failure");
}

#[cfg(debug_assertions)]
#[test]
fn truncated_response_frame_surfaces_a_typed_disconnect_and_the_daemon_recovers() {
    let _guard = test_guard();
    let (net, set) = setup();
    let (addr, drain, handle, clsm) = warm_daemon(&net, &set);

    // The server's response write ships half the frame and breaks the
    // pipe, as if the daemon died mid-`write_all`.
    faultinject::arm("wire.write.truncate", FaultSpec::trigger().skip(2).times(1));
    match submit(
        &addr,
        &measure_request(spec()),
        Some(Duration::from_secs(10)),
    ) {
        Err(e @ (ServeError::Frame(_) | ServeError::Io(_))) => {
            assert!(
                !matches!(&e, ServeError::Frame(f) if !f.is_disconnect()),
                "a mid-frame truncation reads as a disconnect: {e}"
            );
        }
        other => panic!("expected a typed disconnect error, got {other:?}"),
    }

    let retry = submit(&addr, &measure_request(spec()), None).expect("recovered request");
    match retry.response {
        ServeMessage::MeasureDone {
            cache_hit, clsm: c, ..
        } => {
            assert!(cache_hit);
            assert_eq!(c, clsm);
        }
        other => panic!("expected MeasureDone, got kind {}", other.kind()),
    }
    drain_and_join(&drain, handle);
}

#[cfg(debug_assertions)]
#[test]
fn dropped_connection_after_admission_is_typed_and_the_daemon_recovers() {
    let _guard = test_guard();
    let (net, set) = setup();
    let (addr, drain, handle, _clsm) = warm_daemon(&net, &set);

    // The connection resets right as the server writes the response: the
    // client saw `Accepted`, then a clean close — never a hang.
    faultinject::arm("wire.write.drop", FaultSpec::trigger().skip(2).times(1));
    match submit(
        &addr,
        &measure_request(spec()),
        Some(Duration::from_secs(10)),
    ) {
        Err(ServeError::Frame(f)) => assert!(f.is_disconnect(), "typed disconnect: {f}"),
        Err(ServeError::Io(_)) => {}
        other => panic!("expected a typed disconnect error, got {other:?}"),
    }

    let retry = submit(&addr, &measure_request(spec()), None).expect("recovered request");
    assert!(matches!(retry.response, ServeMessage::MeasureDone { .. }));
    drain_and_join(&drain, handle);
}

#[cfg(debug_assertions)]
#[test]
fn delayed_admission_write_is_tolerated_within_the_response_timeout() {
    let _guard = test_guard();
    let (net, set) = setup();
    let (addr, drain, handle, _clsm) = warm_daemon(&net, &set);

    // The server's `Accepted` write stalls 300 ms — a live but silent
    // writer. The client's windows (30 s admission, 10 s response)
    // absorb it; the request completes normally, just later.
    faultinject::arm(
        "wire.write.delay",
        FaultSpec::trigger().skip(1).times(1).arg(300),
    );
    let started = Instant::now();
    let outcome = submit(
        &addr,
        &measure_request(spec()),
        Some(Duration::from_secs(10)),
    )
    .expect("delayed request still completes");
    assert!(matches!(outcome.response, ServeMessage::MeasureDone { .. }));
    assert!(
        started.elapsed() >= Duration::from_millis(300),
        "the injected stall was real: {:?}",
        started.elapsed()
    );
    drain_and_join(&drain, handle);
}

#[test]
fn silent_client_trips_the_handshake_timeout_not_a_hang() {
    let _guard = test_guard();
    let (net, set) = setup();
    let telemetry = Telemetry::new();
    let (addr, _w, drain, handle) = start(
        provider_of(&net, &set),
        ServeOptions {
            heartbeat_timeout: Duration::from_millis(200),
            telemetry: telemetry.clone(),
            ..ServeOptions::default()
        },
    );

    // Connect and say nothing: the admission read must expire with the
    // typed handshake timeout, freeing the thread.
    let silent = std::net::TcpStream::connect(&addr).expect("connect");
    let timeout_deadline = Instant::now() + Duration::from_secs(10);
    while telemetry.counter_value("serve.handshake_timeouts") < 1 {
        assert!(Instant::now() < timeout_deadline, "handshake timeout fires");
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(silent);

    // The daemon is unharmed: a real request still round-trips.
    let outcome = submit(&addr, &measure_request(spec()), None).expect("real request");
    assert!(matches!(outcome.response, ServeMessage::MeasureDone { .. }));

    let report = drain_and_join(&drain, handle);
    assert_eq!(report.completed, 1);
}
