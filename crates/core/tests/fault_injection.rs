//! Fault-injection suite for the crash-safe sensitivity measurement.
//!
//! Every test arms deterministic fail points (debug builds only), breaks a
//! sweep somewhere in the middle, and then proves the recovery invariant:
//! a resumed run produces the **bitwise-identical** sensitivity matrix an
//! uninterrupted run would have, with the fault-tolerance stats reporting
//! exactly what happened.
//!
//! Abort-style kills (no unwinding at all) cannot run in-process; the CLI
//! integration test covers those by killing a `clado sensitivity`
//! subprocess via `CLADO_FAULTPOINTS=...=abort` and resuming it.
#![cfg(debug_assertions)]

use clado_core::{measure_sensitivities, MeasureError, SensitivityMatrix, SensitivityOptions};
use clado_models::{DataSplit, SynthVision, SynthVisionConfig};
use clado_nn::{Conv2d, GlobalAvgPool, Linear, Network, Sequential};
use clado_quant::BitWidthSet;
use clado_telemetry::faultinject::{arm, disarm, test_guard, FaultSpec};
use clado_tensor::Conv2dSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::path::PathBuf;

/// Three quantizable layers (conv1, conv2, fc) × |𝔹| = 2 gives
/// 1 base + 6 diagonal + 12 pairwise = 19 probe evaluations.
fn setup() -> (Network, DataSplit) {
    let mut rng = StdRng::seed_from_u64(3);
    let net = Network::new(
        Sequential::new()
            .push(
                "conv1",
                Conv2d::new(Conv2dSpec::new(3, 6, 3, 1, 1), true, &mut rng),
            )
            .push("relu1", clado_nn::Activation::new(clado_nn::ActKind::Relu))
            .push(
                "conv2",
                Conv2d::new(Conv2dSpec::new(6, 6, 3, 1, 1), true, &mut rng),
            )
            .push("relu2", clado_nn::Activation::new(clado_nn::ActKind::Relu))
            .push("pool", GlobalAvgPool::new())
            .push("fc", Linear::new(6, 4, &mut rng)),
        4,
    );
    let data = SynthVision::generate(SynthVisionConfig {
        classes: 4,
        img: 8,
        train: 48,
        val: 32,
        seed: 9,
        noise: 0.2,
        label_noise: 0.0,
    });
    let set = data.train.subset(&(0..16).collect::<Vec<_>>());
    (net, set)
}

fn bits() -> BitWidthSet {
    BitWidthSet::new(&[2, 8])
}

fn opts(checkpoint: Option<&PathBuf>, resume: bool) -> SensitivityOptions {
    SensitivityOptions {
        threads: 1,
        checkpoint_dir: checkpoint.cloned(),
        resume,
        ..Default::default()
    }
}

fn temp_ckpt(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clado-faultinj-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn assert_bitwise_equal(a: &SensitivityMatrix, b: &SensitivityMatrix, label: &str) {
    assert_eq!(
        a.base_loss.to_bits(),
        b.base_loss.to_bits(),
        "{label}: base loss"
    );
    let dim = a.matrix().dim();
    assert_eq!(dim, b.matrix().dim(), "{label}: dimension");
    for u in 0..dim {
        for v in u..dim {
            assert_eq!(
                a.matrix().get(u, v).to_bits(),
                b.matrix().get(u, v).to_bits(),
                "{label}: entry ({u},{v}) differs"
            );
        }
    }
}

fn reference(net: &mut Network, set: &DataSplit) -> SensitivityMatrix {
    measure_sensitivities(net, set, &bits(), &opts(None, false)).expect("reference run")
}

#[test]
fn probe_panic_within_retry_budget_recovers_bitwise() {
    let _guard = test_guard();
    let (mut net, set) = setup();
    let want = reference(&mut net, &set);

    // One probe (the 8th evaluation) panics once; the engine restores the
    // replica and retries it within the default budget of 1.
    arm("measure.probe_panic", FaultSpec::panic().skip(7).times(1));
    let sm = measure_sensitivities(&mut net, &set, &bits(), &opts(None, false))
        .expect("retry must absorb a single panic");
    disarm("measure.probe_panic");

    assert_eq!(sm.stats.retried, 1, "one engine retry");
    assert_eq!(sm.stats.quarantined, 0);
    assert_bitwise_equal(&sm, &want, "retried run");
}

#[test]
fn sweep_killed_mid_run_resumes_to_the_identical_matrix() {
    let _guard = test_guard();
    let (mut net, set) = setup();
    let want = reference(&mut net, &set);
    let ckpt = temp_ckpt("kill-resume");

    // Kill the sweep at roughly 50%: every probe evaluation after the
    // 10th panics, and a zero retry budget turns the first panic into a
    // structured WorkerPanic error. Everything completed before the kill
    // (base + all 6 diagonal probes) is already journaled.
    arm("measure.probe_panic", FaultSpec::panic().skip(10));
    let mut broken = opts(Some(&ckpt), false);
    broken.retries = 0;
    let err = measure_sensitivities(&mut net, &set, &bits(), &broken)
        .expect_err("sweep must die at the armed point");
    disarm("measure.probe_panic");
    assert!(
        matches!(err, MeasureError::WorkerPanic { retries: 0, .. }),
        "expected WorkerPanic, got {err:?}"
    );
    let shards = fs::read_dir(&ckpt)
        .expect("checkpoint dir exists")
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "clsj")
        })
        .count();
    assert!(
        shards > 0,
        "completed probes were journaled before the kill"
    );

    // Resume with the fault disarmed: journaled probes are skipped, the
    // rest are re-measured, and the matrix is bitwise identical.
    let sm = measure_sensitivities(&mut net, &set, &bits(), &opts(Some(&ckpt), true))
        .expect("resume completes");
    assert!(sm.stats.resumed > 0, "resume restored journaled probes");
    assert_eq!(
        sm.stats.resumed + sm.stats.evaluations,
        want.stats.evaluations,
        "resumed + re-evaluated covers every probe exactly once"
    );
    assert_bitwise_equal(&sm, &want, "resumed run");
    let _ = fs::remove_dir_all(&ckpt);
}

#[test]
fn worker_thread_death_is_a_structured_error_and_resumable() {
    let _guard = test_guard();
    let (mut net, set) = setup();
    let want = reference(&mut net, &set);
    let ckpt = temp_ckpt("worker-lost");

    // The kill point sits *outside* the per-item panic guard, so the
    // worker thread itself dies — no retry can absorb it. Needs the
    // parallel path: in the serial path the same point unwinds the
    // caller directly rather than producing a joinable dead thread.
    arm("engine.worker_kill", FaultSpec::panic().skip(2));
    let mut broken = opts(Some(&ckpt), false);
    broken.threads = 2;
    let err = measure_sensitivities(&mut net, &set, &bits(), &broken)
        .expect_err("worker death must surface");
    disarm("engine.worker_kill");
    assert!(
        matches!(err, MeasureError::WorkerLost { .. }),
        "expected WorkerLost, got {err:?}"
    );

    let sm = measure_sensitivities(&mut net, &set, &bits(), &opts(Some(&ckpt), true))
        .expect("resume completes");
    assert!(sm.stats.resumed > 0);
    assert_bitwise_equal(&sm, &want, "resume after worker death");
    let _ = fs::remove_dir_all(&ckpt);
}

#[test]
fn non_finite_loss_is_retried_once_and_recovers() {
    let _guard = test_guard();
    let (mut net, set) = setup();
    let want = reference(&mut net, &set);

    // Poison exactly one loss; the immediate re-evaluation is clean.
    arm("measure.probe_nan", FaultSpec::trigger().skip(5).times(1));
    let sm = measure_sensitivities(&mut net, &set, &bits(), &opts(None, false))
        .expect("NaN retry must recover");
    disarm("measure.probe_nan");

    assert_eq!(sm.stats.retried, 1, "one NaN retry");
    assert_eq!(sm.stats.quarantined, 0);
    assert_bitwise_equal(&sm, &want, "NaN-retried run");
}

#[test]
fn persistent_non_finite_loss_is_quarantined_not_propagated() {
    let _guard = test_guard();
    let (mut net, set) = setup();
    let want = reference(&mut net, &set);

    // Poison one probe's evaluation *and* its retry (2 consecutive hits):
    // the probe is quarantined and its Ω entries degrade to zero.
    arm("measure.probe_nan", FaultSpec::trigger().skip(5).times(2));
    let sm = measure_sensitivities(&mut net, &set, &bits(), &opts(None, false))
        .expect("quarantine must not fail the sweep");
    disarm("measure.probe_nan");

    assert_eq!(sm.stats.quarantined, 1, "one probe quarantined");
    assert_eq!(
        sm.stats.retried, 1,
        "the quarantined probe was retried once"
    );
    let dim = sm.matrix().dim();
    let mut zeroed = 0usize;
    for u in 0..dim {
        for v in u..dim {
            let got = sm.matrix().get(u, v);
            assert!(got.is_finite(), "entry ({u},{v}) leaked a non-finite value");
            if got == 0.0 && want.matrix().get(u, v) != 0.0 {
                zeroed += 1;
            }
        }
    }
    assert!(zeroed > 0, "the quarantined probe's entries degraded to 0");
}

#[test]
fn base_loss_that_never_recovers_is_a_typed_error() {
    let _guard = test_guard();
    let (mut net, set) = setup();

    // The very first evaluation is the base loss; poisoning it and its
    // retry leaves nothing to measure against.
    arm("measure.probe_nan", FaultSpec::trigger().times(2));
    let err = measure_sensitivities(&mut net, &set, &bits(), &opts(None, false))
        .expect_err("non-finite base loss must fail");
    disarm("measure.probe_nan");
    assert!(
        matches!(err, MeasureError::NonFiniteBaseLoss { .. }),
        "got {err:?}"
    );
}

#[test]
fn corrupted_journal_shards_are_remeasured_not_trusted() {
    let _guard = test_guard();
    let (mut net, set) = setup();
    let want = reference(&mut net, &set);
    let ckpt = temp_ckpt("corrupt");

    // Complete a fully-checkpointed run, then vandalize the journal.
    let full = measure_sensitivities(&mut net, &set, &bits(), &opts(Some(&ckpt), false))
        .expect("checkpointed run");
    assert_bitwise_equal(&full, &want, "checkpointed run");
    let mut shards: Vec<PathBuf> = fs::read_dir(&ckpt)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "clsj"))
        .collect();
    shards.sort();
    assert!(shards.len() >= 3, "expected several shards, got {shards:?}");

    // Truncate one shard mid-record, flip a byte in another, and drop a
    // stray .tmp from a "crashed" commit.
    let bytes = fs::read(&shards[1]).unwrap();
    fs::write(&shards[1], &bytes[..bytes.len() / 2]).unwrap();
    let mut bytes = fs::read(&shards[2]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&shards[2], bytes).unwrap();
    fs::write(ckpt.join("journal-999999.clsj.tmp"), b"crashed commit").unwrap();

    // Resume: valid shards restore their probes, corrupt ones are
    // silently re-measured, and the matrix is still bitwise identical.
    let sm = measure_sensitivities(&mut net, &set, &bits(), &opts(Some(&ckpt), true))
        .expect("resume over a vandalized journal");
    assert!(sm.stats.resumed > 0, "valid shards still resumed");
    assert!(
        sm.stats.evaluations > 0,
        "corrupt shards forced re-measurement"
    );
    assert_bitwise_equal(&sm, &want, "resume over corruption");
    let _ = fs::remove_dir_all(&ckpt);
}

#[test]
fn fully_journaled_run_resumes_with_zero_evaluations() {
    let _guard = test_guard();
    let (mut net, set) = setup();
    let ckpt = temp_ckpt("complete");

    let first = measure_sensitivities(&mut net, &set, &bits(), &opts(Some(&ckpt), false))
        .expect("checkpointed run");
    let second = measure_sensitivities(&mut net, &set, &bits(), &opts(Some(&ckpt), true))
        .expect("resume of a complete journal");
    assert_eq!(second.stats.evaluations, 0, "nothing left to measure");
    assert_eq!(second.stats.resumed, first.stats.evaluations);
    assert_bitwise_equal(&second, &first, "fully-resumed run");
    let _ = fs::remove_dir_all(&ckpt);
}
