//! Quantization-aware fine-tuning (QAT) with the straight-through
//! estimator, on top of a fixed mixed-precision bit assignment (Fig. 3).

use clado_models::DataSplit;
use clado_nn::{cross_entropy, Network, Sgd};
use clado_quant::{quantize_weights, BitWidth, QuantScheme};
use clado_telemetry::Telemetry;

/// QAT hyper-parameters.
///
/// (`Clone` rather than `Copy`: the telemetry handle carries an `Arc`.)
#[derive(Debug, Clone)]
pub struct QatConfig {
    /// Fine-tuning epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate (small: fine-tuning a converged model).
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Telemetry sink for spans, counters, and per-epoch progress.
    pub telemetry: Telemetry,
}

impl Default for QatConfig {
    fn default() -> Self {
        Self {
            epochs: 4,
            batch_size: 32,
            lr: 0.004,
            momentum: 0.9,
            weight_decay: 1e-4,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Report of a QAT run.
#[derive(Debug, Clone, Copy)]
pub struct QatReport {
    /// Quantized validation accuracy before fine-tuning.
    pub accuracy_before: f64,
    /// Quantized validation accuracy after fine-tuning.
    pub accuracy_after: f64,
}

/// Fine-tunes `network` at a fixed per-layer bit assignment using the
/// straight-through estimator:
///
/// * forward runs with fake-quantized weights,
/// * gradients are computed at the quantized point,
/// * updates are applied to the full-precision master weights.
///
/// The network is left holding the fine-tuned *master* weights; evaluate
/// the quantized model with [`crate::quantized_accuracy`].
///
/// # Panics
///
/// Panics if `assignment` length differs from the quantizable-layer count.
pub fn qat_finetune(
    network: &mut Network,
    assignment: &[BitWidth],
    scheme: QuantScheme,
    train: &DataSplit,
    val: &DataSplit,
    config: &QatConfig,
) -> QatReport {
    let telemetry = &config.telemetry;
    let _span = telemetry.span("qat");
    let num_layers = network.quantizable_layers().len();
    assert_eq!(assignment.len(), num_layers, "assignment length mismatch");
    let accuracy_before = {
        let _s = telemetry.span("qat.eval_before");
        crate::probe::quantized_accuracy(network, assignment, scheme, val)
    };
    let c_steps = telemetry.counter("qat.steps");
    let progress = telemetry.progress("qat epochs", config.epochs as u64);
    let mut sgd = Sgd::new(config.lr, config.momentum, config.weight_decay);
    for _ in 0..config.epochs {
        let _e = telemetry.span("qat.epoch");
        for (x, labels) in train.batches(config.batch_size) {
            // Quantize on forward.
            let master = network.snapshot_weights();
            for (i, &b) in assignment.iter().enumerate() {
                let q = quantize_weights(&master[i], b, scheme);
                network.set_weight(i, &q);
            }
            let logits = {
                let _f = telemetry.span("qat.epoch.forward");
                network.forward(x, true)
            };
            let (_, grad) = cross_entropy(&logits, &labels);
            {
                let _b = telemetry.span("qat.epoch.backward");
                network.backward(grad);
            }
            // STE: restore the master weights, then step with the gradients
            // measured at the quantized point.
            network.restore_weights(&master);
            sgd.step(network);
            c_steps.incr();
        }
        progress.tick();
    }
    if config.epochs > 0 {
        progress.finish();
    }
    let accuracy_after = {
        let _s = telemetry.span("qat.eval_after");
        crate::probe::quantized_accuracy(network, assignment, scheme, val)
    };
    QatReport {
        accuracy_before,
        accuracy_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_models::{train, SynthVision, SynthVisionConfig, TrainConfig};
    use clado_nn::{Conv2d, GlobalAvgPool, Linear, Network, Sequential};
    use clado_quant::BitWidth;
    use clado_tensor::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn qat_recovers_accuracy_lost_to_quantization() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut net = Network::new(
            Sequential::new()
                .push(
                    "conv1",
                    Conv2d::new(Conv2dSpec::new(3, 8, 3, 1, 1), true, &mut rng),
                )
                .push("relu1", clado_nn::Activation::new(clado_nn::ActKind::Relu))
                .push("pool", GlobalAvgPool::new())
                .push("fc", Linear::new(8, 4, &mut rng)),
            4,
        );
        let data = SynthVision::generate(SynthVisionConfig {
            classes: 4,
            img: 8,
            train: 256,
            val: 128,
            seed: 99,
            noise: 0.15,
            label_noise: 0.0,
        });
        train(
            &mut net,
            &data.train,
            &data.val,
            &TrainConfig {
                epochs: 8,
                batch_size: 32,
                lr: 0.1,
                momentum: 0.9,
                weight_decay: 1e-4,
            },
        );
        let assignment = vec![BitWidth::of(2); 2];
        let report = qat_finetune(
            &mut net,
            &assignment,
            QuantScheme::PerTensorSymmetric,
            &data.train,
            &data.val,
            &QatConfig {
                epochs: 6,
                lr: 0.01,
                ..Default::default()
            },
        );
        assert!(
            report.accuracy_after >= report.accuracy_before - 1e-9,
            "QAT regressed: {report:?}"
        );
    }

    #[test]
    #[should_panic(expected = "assignment length")]
    fn wrong_assignment_length_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Network::new(Sequential::new().push("fc", Linear::new(4, 2, &mut rng)), 2);
        let data = SynthVision::generate(SynthVisionConfig {
            classes: 2,
            img: 8,
            train: 8,
            val: 8,
            seed: 1,
            noise: 0.1,
            label_noise: 0.0,
        });
        qat_finetune(
            &mut net,
            &[BitWidth::of(2); 5],
            QuantScheme::PerTensorSymmetric,
            &data.train,
            &data.val,
            &QatConfig::default(),
        );
    }
}
