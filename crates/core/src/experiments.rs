//! Shared experiment runners: one context object that measures each
//! algorithm's sensitivities once and reuses them across budgets — the
//! reuse property the paper highlights for sensitivity-based methods.

use crate::assign::{assign_bits, solve_with_matrix, AssignOptions, BitAssignment, CladoVariant};
use crate::baselines::{hawq_sensitivities, mpqco_sensitivities, BaselineOptions};
use crate::probe::quantized_accuracy;
use crate::sensitivity::{measure_sensitivities, SensitivityMatrix, SensitivityOptions};
use clado_models::DataSplit;
use clado_nn::Network;
use clado_quant::{BitWidthSet, LayerSizes, QuantScheme};
use clado_solver::{IqpError, SolverConfig, SymMatrix};
use clado_telemetry::Telemetry;

/// The MPQ algorithms compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Full CLADO (cross-layer dependencies + IQP).
    Clado,
    /// CLADO\*: cross-layer terms removed (Table 1 ablation).
    CladoStar,
    /// BRECQ-style: intra-block interactions only (Fig. 6 ablation).
    BlockClado,
    /// CLADO without the PSD approximation (Fig. 7 ablation).
    CladoNoPsd,
    /// HAWQ-style Hessian-trace baseline.
    Hawq,
    /// MPQCO-style empirical-Fisher baseline.
    Mpqco,
}

impl Algorithm {
    /// The four Table 1 columns.
    pub fn table1() -> [Algorithm; 4] {
        [Self::Hawq, Self::Mpqco, Self::CladoStar, Self::Clado]
    }

    /// Short label used in printed tables.
    pub fn label(self) -> &'static str {
        match self {
            Self::Clado => "CLADO",
            Self::CladoStar => "CLADO*",
            Self::BlockClado => "BLOCK",
            Self::CladoNoPsd => "CLADO-noPSD",
            Self::Hawq => "HAWQ",
            Self::Mpqco => "MPQCO",
        }
    }
}

/// A reusable experiment context for one (model, sensitivity-set) pair.
pub struct ExperimentContext {
    /// The pretrained network under study.
    pub network: Network,
    /// Sensitivity set (small subset of training data).
    pub sens_set: DataSplit,
    /// Validation split for accuracy reporting.
    pub val: DataSplit,
    /// Candidate bit-widths 𝔹.
    pub bits: BitWidthSet,
    /// Quantization scheme.
    pub scheme: QuantScheme,
    /// Per-layer parameter counts.
    pub sizes: LayerSizes,
    blocks: Vec<usize>,
    clado: Option<SensitivityMatrix>,
    hawq: Option<SymMatrix>,
    mpqco: Option<SymMatrix>,
    /// Solver configuration used for every assignment.
    pub solver: SolverConfig,
    /// Strict Ω hardening for every assignment (`--solver-strict`): typed
    /// rejection of damaged sensitivity matrices instead of lenient repair.
    pub solver_strict: bool,
    /// Probe batch size.
    pub batch_size: usize,
    /// Telemetry registry shared by every measurement and solve in this
    /// context. Disabled by default.
    pub telemetry: Telemetry,
}

impl ExperimentContext {
    /// Creates a context. Sensitivities are measured lazily on first use.
    pub fn new(
        network: Network,
        sens_set: DataSplit,
        val: DataSplit,
        bits: BitWidthSet,
        scheme: QuantScheme,
    ) -> Self {
        let sizes = LayerSizes::new(network.layer_param_counts());
        let blocks = network
            .quantizable_layers()
            .iter()
            .map(|l| l.block)
            .collect();
        Self {
            network,
            sens_set,
            val,
            bits,
            scheme,
            sizes,
            blocks,
            clado: None,
            hawq: None,
            mpqco: None,
            solver: SolverConfig::default(),
            solver_strict: false,
            batch_size: crate::probe::PROBE_BATCH,
            telemetry: Telemetry::disabled(),
        }
    }

    /// The CLADO sensitivity matrix, measuring it on first call.
    pub fn clado_matrix(&mut self) -> &SensitivityMatrix {
        if self.clado.is_none() {
            let opts = SensitivityOptions {
                scheme: self.scheme,
                batch_size: self.batch_size,
                telemetry: self.telemetry.clone(),
                ..Default::default()
            };
            self.clado = Some(
                measure_sensitivities(&mut self.network, &self.sens_set, &self.bits, &opts)
                    .expect("sensitivity measurement"),
            );
        }
        self.clado.as_ref().expect("just measured")
    }

    fn baseline_options(&self) -> BaselineOptions {
        BaselineOptions {
            scheme: self.scheme,
            batch_size: self.batch_size,
            telemetry: self.telemetry.clone(),
            ..Default::default()
        }
    }

    fn hawq_matrix(&mut self) -> &SymMatrix {
        if self.hawq.is_none() {
            let opts = self.baseline_options();
            self.hawq = Some(hawq_sensitivities(
                &mut self.network,
                &self.sens_set,
                &self.bits,
                &opts,
            ));
        }
        self.hawq.as_ref().expect("just measured")
    }

    fn mpqco_matrix(&mut self) -> &SymMatrix {
        if self.mpqco.is_none() {
            let opts = self.baseline_options();
            self.mpqco = Some(mpqco_sensitivities(
                &mut self.network,
                &self.sens_set,
                &self.bits,
                &opts,
            ));
        }
        self.mpqco.as_ref().expect("just measured")
    }

    /// Solves the bit assignment for `algorithm` at `budget_bits`.
    ///
    /// # Errors
    ///
    /// Returns [`IqpError`] on infeasible budgets.
    pub fn assign(
        &mut self,
        algorithm: Algorithm,
        budget_bits: u64,
    ) -> Result<BitAssignment, IqpError> {
        let mut solver = self.solver.clone();
        if !solver.telemetry.is_enabled() {
            solver.telemetry = self.telemetry.clone();
        }
        match algorithm {
            Algorithm::Clado
            | Algorithm::CladoStar
            | Algorithm::BlockClado
            | Algorithm::CladoNoPsd => {
                let variant = match algorithm {
                    Algorithm::CladoStar => CladoVariant::DiagonalOnly,
                    Algorithm::BlockClado => CladoVariant::BlockOnly(self.blocks.clone()),
                    _ => CladoVariant::Full,
                };
                let skip_psd = algorithm == Algorithm::CladoNoPsd;
                self.clado_matrix();
                let sens = self.clado.as_ref().expect("measured above");
                let sizes = &self.sizes;
                assign_bits(
                    sens,
                    sizes,
                    budget_bits,
                    &AssignOptions {
                        variant,
                        skip_psd,
                        solver,
                        strict: self.solver_strict,
                        telemetry: self.telemetry.clone(),
                    },
                )
            }
            Algorithm::Hawq => {
                self.hawq_matrix();
                let g = self.hawq.as_ref().expect("measured above").clone();
                solve_with_matrix(&g, &self.bits, &self.sizes, budget_bits, &solver)
            }
            Algorithm::Mpqco => {
                self.mpqco_matrix();
                let g = self.mpqco.as_ref().expect("measured above").clone();
                solve_with_matrix(&g, &self.bits, &self.sizes, budget_bits, &solver)
            }
        }
    }

    /// Validation top-1 accuracy of a PTQ assignment.
    pub fn ptq_accuracy(&mut self, assignment: &BitAssignment) -> f64 {
        quantized_accuracy(&mut self.network, &assignment.bits, self.scheme, &self.val)
    }

    /// Assignment + PTQ accuracy in one call.
    ///
    /// # Errors
    ///
    /// Returns [`IqpError`] on infeasible budgets.
    pub fn run(
        &mut self,
        algorithm: Algorithm,
        budget_bits: u64,
    ) -> Result<(BitAssignment, f64), IqpError> {
        let a = self.assign(algorithm, budget_bits)?;
        let acc = self.ptq_accuracy(&a);
        Ok((a, acc))
    }
}

/// Quartile summary of a sample (Fig. 4's median + quartile bands).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quartiles {
    /// 25th percentile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q75: f64,
}

/// Computes quartiles by linear interpolation.
///
/// # Panics
///
/// Panics if `values` is empty or contains NaN.
pub fn quartiles(values: &[f64]) -> Quartiles {
    assert!(!values.is_empty(), "quartiles of an empty sample");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in sample"));
    let q = |p: f64| -> f64 {
        let pos = p * (v.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    };
    Quartiles {
        q25: q(0.25),
        median: q(0.5),
        q75: q(0.75),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_models::{SynthVision, SynthVisionConfig};
    use clado_nn::{Conv2d, GlobalAvgPool, Linear, Sequential};
    use clado_tensor::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn context() -> ExperimentContext {
        let mut rng = StdRng::seed_from_u64(12);
        let net = Network::new(
            Sequential::new()
                .push(
                    "conv1",
                    Conv2d::new(Conv2dSpec::new(3, 6, 3, 1, 1), true, &mut rng),
                )
                .push("relu1", clado_nn::Activation::new(clado_nn::ActKind::Relu))
                .push(
                    "conv2",
                    Conv2d::new(Conv2dSpec::new(6, 8, 3, 2, 1), true, &mut rng),
                )
                .push("relu2", clado_nn::Activation::new(clado_nn::ActKind::Relu))
                .push("pool", GlobalAvgPool::new())
                .push("fc", Linear::new(8, 4, &mut rng)),
            4,
        );
        let data = SynthVision::generate(SynthVisionConfig {
            classes: 4,
            img: 8,
            train: 96,
            val: 48,
            seed: 17,
            noise: 0.2,
            label_noise: 0.0,
        });
        let sens = data.train.sample_subset(24, 1);
        ExperimentContext::new(
            net,
            sens,
            data.val.clone(),
            BitWidthSet::standard(),
            QuantScheme::PerTensorSymmetric,
        )
    }

    #[test]
    fn all_algorithms_produce_feasible_assignments() {
        let mut ctx = context();
        let budget = ctx.sizes.budget_from_avg_bits(4.0);
        for alg in [
            Algorithm::Clado,
            Algorithm::CladoStar,
            Algorithm::BlockClado,
            Algorithm::CladoNoPsd,
            Algorithm::Hawq,
            Algorithm::Mpqco,
        ] {
            let (a, acc) = ctx.run(alg, budget).unwrap();
            assert!(a.cost_bits <= budget, "{alg:?} exceeded budget");
            assert!((0.0..=1.0).contains(&acc), "{alg:?} accuracy {acc}");
        }
    }

    #[test]
    fn sensitivities_are_measured_once_and_reused() {
        let mut ctx = context();
        let b1 = ctx.sizes.budget_from_avg_bits(3.0);
        let b2 = ctx.sizes.budget_from_avg_bits(5.0);
        ctx.run(Algorithm::Clado, b1).unwrap();
        let evals_after_first = ctx.clado_matrix().stats.evaluations;
        ctx.run(Algorithm::Clado, b2).unwrap();
        assert_eq!(ctx.clado_matrix().stats.evaluations, evals_after_first);
    }

    #[test]
    fn quartiles_of_known_sample() {
        let q = quartiles(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(q.median, 3.0);
        assert_eq!(q.q25, 2.0);
        assert_eq!(q.q75, 4.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn quartiles_reject_empty() {
        quartiles(&[]);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Algorithm::Clado.label(), "CLADO");
        assert_eq!(Algorithm::table1().len(), 4);
    }
}
