//! Canonical shard decomposition of the sensitivity probe grid.
//!
//! [`crate::measure_sensitivities`] evaluates the probe grid in-process;
//! `clado-dist` fans the same grid out across worker processes. Both
//! views agree on one canonical decomposition into *shards* — the unit
//! of leasing, journaling, and reassignment:
//!
//! * [`ShardSpec::Base`] — the single unperturbed evaluation `L(w)`;
//! * [`ShardSpec::Diag`]`{ layer: i }` — all `|𝔹|` diagonal probes of
//!   layer `i` (eq. 12);
//! * [`ShardSpec::Pair`]`{ outer: i }` — all `|𝔹|²(I−1−i)` cross-layer
//!   probes whose outer layer is `i` (eq. 13).
//!
//! These are exactly the work items of the in-process engine, so CLSJ
//! journals written by either path resume interchangeably: a sweep
//! checkpointed by a single process can be finished by a distributed
//! coordinator and vice versa, bit for bit.
//!
//! # Determinism
//!
//! [`ShardContext::run_shard`] replays the in-process engine's exact
//! perturb → evaluate → restore order per shard, the evaluation-mode
//! forward is pure, and the prefix-cached path is bitwise equal to a
//! full forward (all test-enforced). Because every probe is keyed by its
//! [`ProbeId`], [`ShardContext::assemble`] rebuilds Ω from any execution
//! order — whichever worker evaluated whichever shard, however many
//! times leases were evicted and reassigned — and the result is bitwise
//! identical to a single-process run.

use crate::errors::MeasureError;
use crate::journal::{fingerprint, ProbeId, ProbeRecord};
use crate::probe::{build_prefix_cache, eval_loss, eval_loss_from, quant_error_table, PrefixCache};
use clado_models::DataSplit;
use clado_nn::Network;
use clado_quant::{BitWidthSet, QuantScheme};
use clado_solver::{ObservedMask, SymMatrix};
use clado_telemetry::Telemetry;
use clado_tensor::Tensor;
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// One leasable unit of the probe grid (see the module docs for the
/// canonical decomposition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardSpec {
    /// The unperturbed base evaluation `L(w)`.
    Base,
    /// All diagonal probes of one layer.
    Diag {
        /// The probed layer index.
        layer: u32,
    },
    /// All cross-layer probes with one fixed outer layer.
    Pair {
        /// The outer layer index `i` (inner layers are `i+1..I`).
        outer: u32,
    },
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Base => write!(f, "base"),
            Self::Diag { layer } => write!(f, "diag({layer})"),
            Self::Pair { outer } => write!(f, "pair({outer})"),
        }
    }
}

/// The journal/handshake fingerprint of one measurement configuration.
///
/// Binds a CLSJ checkpoint directory — and, in distributed runs, a
/// worker's locally-reconstructed job — to one measurement
/// configuration, so probes measured under different bits, scheme, data,
/// or batch size can never silently mix. The field order is part of the
/// on-disk CLSJ format; do not reorder.
pub fn config_fingerprint(
    num_layers: usize,
    bits: &BitWidthSet,
    scheme: QuantScheme,
    set_len: usize,
    batch_size: usize,
) -> u64 {
    let mut fields: Vec<u64> = vec![
        num_layers as u64,
        bits.len() as u64,
        scheme as u64,
        set_len as u64,
        batch_size as u64,
    ];
    fields.extend((0..bits.len()).map(|m| u64::from(bits.get(m).bits())));
    fingerprint(&fields)
}

/// The journal/handshake fingerprint of one *estimation* configuration.
///
/// An estimated Ω journal must never resume an exact sweep's checkpoint
/// (or vice versa), and two estimators — or the same estimator under a
/// different budget or seed — must never share records either: the probe
/// *selection* differs, so the journals describe different grids. The
/// estimator tag, budget, and seed are therefore folded into the base
/// [`config_fingerprint`]. Field order is part of the on-disk CLSJ
/// format; do not reorder.
pub fn estimator_config_fingerprint(base: u64, estimator: u8, probe_budget: u64, seed: u64) -> u64 {
    fingerprint(&[base, u64::from(estimator), probe_budget, seed])
}

/// A partially-assembled Ω: the entries an estimator's probe subset
/// covers, plus the mask saying which those are.
#[derive(Debug, Clone)]
pub struct PartialAssembly {
    /// The assembled matrix; unobserved cross entries are zero.
    pub g: SymMatrix,
    /// Which entries carry a measurement (diagonal and same-layer
    /// entries always do; cross-layer entries only when their pair probe
    /// was evaluated).
    pub observed: ObservedMask,
    /// The unperturbed base loss `L(w)`.
    pub base_loss: f64,
    /// Probe records stored as quarantined (entry degraded to zero).
    pub quarantined: usize,
}

/// Per-shard evaluation statistics, reported by workers and aggregated
/// by the coordinator into [`crate::SensitivityStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardRunStats {
    /// Evaluations that ran the full forward pass.
    pub full_evals: u64,
    /// Evaluations that ran only the suffix on cached activations.
    pub cache_hits: u64,
    /// Prefix-activation caches built.
    pub cache_builds: u64,
    /// Non-finite losses re-evaluated once.
    pub retried: u64,
    /// Probes whose loss stayed non-finite after the retry.
    pub quarantined: u64,
    /// Wall-clock time spent evaluating this shard.
    pub seconds: f64,
}

/// Everything needed to evaluate any shard of one measurement
/// configuration: the Δw perturbation table, the pristine weight
/// snapshot, and the probe-evaluation options.
///
/// Construction is deterministic, so a coordinator and its workers —
/// each building a `ShardContext` from its own copy of the model —
/// arrive at identical perturbations and identical
/// [`ShardContext::fingerprint`]s.
pub struct ShardContext {
    deltas: Vec<Vec<Tensor>>,
    stages: Vec<usize>,
    originals: Vec<Tensor>,
    bits: BitWidthSet,
    scheme: QuantScheme,
    batch_size: usize,
    use_prefix_cache: bool,
    set_len: usize,
}

impl ShardContext {
    /// Builds the context from a network positioned at the weights to be
    /// probed. The network is only read; probing happens later on a
    /// replica passed to [`ShardContext::run_shard`].
    pub fn new(
        network: &Network,
        set_len: usize,
        bits: &BitWidthSet,
        scheme: QuantScheme,
        batch_size: usize,
        use_prefix_cache: bool,
    ) -> Self {
        let num_layers = network.quantizable_layers().len();
        Self {
            deltas: quant_error_table(network, bits, scheme),
            stages: (0..num_layers).map(|i| network.stage_of(i)).collect(),
            originals: network.snapshot_weights(),
            bits: bits.clone(),
            scheme,
            batch_size,
            use_prefix_cache,
            set_len,
        }
    }

    /// Number of quantizable layers `I`.
    pub fn num_layers(&self) -> usize {
        self.stages.len()
    }

    /// The bit-width candidate set 𝔹.
    pub fn bits(&self) -> &BitWidthSet {
        &self.bits
    }

    /// The configuration fingerprint (see [`config_fingerprint`]); equal
    /// to the fingerprint [`crate::measure_sensitivities`] stamps on its
    /// CLSJ journal for the same configuration.
    pub fn fingerprint(&self) -> u64 {
        config_fingerprint(
            self.num_layers(),
            &self.bits,
            self.scheme,
            self.set_len,
            self.batch_size,
        )
    }

    /// All shards of the grid in canonical order:
    /// `base, diag(0..I), pair(0..I−1)`.
    pub fn shards(&self) -> Vec<ShardSpec> {
        let i_n = self.num_layers() as u32;
        let mut out = Vec::with_capacity(2 * i_n as usize);
        out.push(ShardSpec::Base);
        out.extend((0..i_n).map(|layer| ShardSpec::Diag { layer }));
        out.extend((0..i_n.saturating_sub(1)).map(|outer| ShardSpec::Pair { outer }));
        out
    }

    /// The probe ids a shard evaluates, in evaluation order.
    pub fn shard_probes(&self, spec: ShardSpec) -> Vec<ProbeId> {
        let k = self.bits.len() as u32;
        let i_n = self.num_layers() as u32;
        match spec {
            ShardSpec::Base => vec![ProbeId::Base],
            ShardSpec::Diag { layer } => (0..k).map(|bit| ProbeId::Diag { layer, bit }).collect(),
            ShardSpec::Pair { outer } => {
                let mut out = Vec::new();
                for bit_m in 0..k {
                    for layer_j in (outer + 1)..i_n {
                        for bit_n in 0..k {
                            out.push(ProbeId::Pair {
                                layer_i: outer,
                                bit_m,
                                layer_j,
                                bit_n,
                            });
                        }
                    }
                }
                out
            }
        }
    }

    /// Total probe count across all shards:
    /// `1 + |𝔹|I + ½|𝔹|²I(I−1)`.
    pub fn total_probes(&self) -> usize {
        let k = self.bits.len();
        let i_n = self.num_layers();
        1 + k * i_n + k * k * i_n * i_n.saturating_sub(1) / 2
    }

    /// Squared norms `‖Δw_m⁽ⁱ⁾‖²` of the perturbation table, indexed
    /// `[layer][bit]`. These are the locality prior the structured
    /// estimators rank cross terms by (`|Ω_ii · Ω_jj|` scales with the
    /// diagonal probes, which scale with these norms), and they are a
    /// pure function of the pristine weights — identical on every worker.
    pub fn delta_norms(&self) -> Vec<Vec<f64>> {
        self.deltas
            .iter()
            .map(|row| row.iter().map(|d| d.norm_sq()).collect())
            .collect()
    }

    /// Evaluates an explicit probe subset on `net` (a replica at the
    /// pristine weights; restored before returning), with the same
    /// quarantine policy and bitwise-identical losses as
    /// [`ShardContext::run_shard`].
    ///
    /// Consecutive probes sharing an outer layer reuse one prefix cache
    /// and consecutive pair probes sharing an outer `(layer, bit)` reuse
    /// one applied outer perturbation, so callers should pass ids in
    /// canonical order (the order [`ShardContext::shard_probes`] emits)
    /// for full-sweep-equivalent cache behavior. Any order is *correct*;
    /// a scrambled order only costs extra cache builds.
    pub fn run_probes(
        &self,
        net: &mut Network,
        set: &DataSplit,
        ids: &[ProbeId],
        telemetry: &Telemetry,
    ) -> (Vec<ProbeRecord>, ShardRunStats) {
        let start = Instant::now();
        let mut stats = ShardRunStats::default();
        let mut out = Vec::with_capacity(ids.len());
        // The prefix cache covers stages strictly before the probed
        // layer's stage, which only pristine weights feed, so it stays
        // valid across perturbation changes and is keyed by stage alone.
        let mut cache: Option<PrefixCache> = None;
        let mut cached_stage: Option<usize> = None;
        let mut applied_outer: Option<(usize, usize)> = None;
        for &id in ids {
            match id {
                ProbeId::Base => {
                    if let Some((i, _)) = applied_outer.take() {
                        net.set_weight(i, &self.originals[i]);
                    }
                    let (loss, quarantined) =
                        self.probe(net, &mut None, None, set, telemetry, &mut stats);
                    out.push(ProbeRecord {
                        id,
                        loss,
                        quarantined,
                    });
                }
                ProbeId::Diag { layer, bit } => {
                    if let Some((i, _)) = applied_outer.take() {
                        net.set_weight(i, &self.originals[i]);
                    }
                    let i = layer as usize;
                    let stage =
                        (self.use_prefix_cache && self.stages[i] > 0).then_some(self.stages[i]);
                    if stage != cached_stage {
                        cache = None;
                        cached_stage = stage;
                    }
                    net.perturb_weight(i, &self.deltas[i][bit as usize]);
                    let (loss, quarantined) =
                        self.probe(net, &mut cache, stage, set, telemetry, &mut stats);
                    net.set_weight(i, &self.originals[i]);
                    out.push(ProbeRecord {
                        id,
                        loss,
                        quarantined,
                    });
                }
                ProbeId::Pair {
                    layer_i,
                    bit_m,
                    layer_j,
                    bit_n,
                } => {
                    let (i, m) = (layer_i as usize, bit_m as usize);
                    if applied_outer != Some((i, m)) {
                        if let Some((prev, _)) = applied_outer.take() {
                            net.set_weight(prev, &self.originals[prev]);
                        }
                        net.perturb_weight(i, &self.deltas[i][m]);
                        applied_outer = Some((i, m));
                    }
                    let stage =
                        (self.use_prefix_cache && self.stages[i] > 0).then_some(self.stages[i]);
                    if stage != cached_stage {
                        cache = None;
                        cached_stage = stage;
                    }
                    let j = layer_j as usize;
                    net.perturb_weight(j, &self.deltas[j][bit_n as usize]);
                    let (loss, quarantined) =
                        self.probe(net, &mut cache, stage, set, telemetry, &mut stats);
                    net.set_weight(j, &self.originals[j]);
                    out.push(ProbeRecord {
                        id,
                        loss,
                        quarantined,
                    });
                }
            }
        }
        if let Some((i, _)) = applied_outer.take() {
            net.set_weight(i, &self.originals[i]);
        }
        stats.seconds = start.elapsed().as_secs_f64();
        (out, stats)
    }

    /// Evaluates one shard on `net` (a replica at the pristine weights;
    /// restored before returning), replaying the in-process engine's
    /// exact probe order and non-finite quarantine policy.
    pub fn run_shard(
        &self,
        net: &mut Network,
        set: &DataSplit,
        spec: ShardSpec,
        telemetry: &Telemetry,
    ) -> (Vec<ProbeRecord>, ShardRunStats) {
        let start = Instant::now();
        let mut stats = ShardRunStats::default();
        let mut out = Vec::new();
        match spec {
            ShardSpec::Base => {
                let (loss, quarantined) =
                    self.probe(net, &mut None, None, set, telemetry, &mut stats);
                out.push(ProbeRecord {
                    id: ProbeId::Base,
                    loss,
                    quarantined,
                });
            }
            ShardSpec::Diag { layer } => {
                let i = layer as usize;
                let mut cache: Option<PrefixCache> = None;
                let cache_stage =
                    (self.use_prefix_cache && self.stages[i] > 0).then_some(self.stages[i]);
                for (m, delta) in self.deltas[i].iter().enumerate() {
                    net.perturb_weight(i, delta);
                    let (loss, quarantined) =
                        self.probe(net, &mut cache, cache_stage, set, telemetry, &mut stats);
                    net.set_weight(i, &self.originals[i]);
                    out.push(ProbeRecord {
                        id: ProbeId::Diag {
                            layer,
                            bit: m as u32,
                        },
                        loss,
                        quarantined,
                    });
                }
            }
            ShardSpec::Pair { outer } => {
                let i = outer as usize;
                let mut cache: Option<PrefixCache> = None;
                let cache_stage =
                    (self.use_prefix_cache && self.stages[i] > 0).then_some(self.stages[i]);
                for (m, delta_i) in self.deltas[i].iter().enumerate() {
                    net.perturb_weight(i, delta_i);
                    for j in (i + 1)..self.num_layers() {
                        for (n, delta_j) in self.deltas[j].iter().enumerate() {
                            net.perturb_weight(j, delta_j);
                            let (loss, quarantined) = self.probe(
                                net,
                                &mut cache,
                                cache_stage,
                                set,
                                telemetry,
                                &mut stats,
                            );
                            net.set_weight(j, &self.originals[j]);
                            out.push(ProbeRecord {
                                id: ProbeId::Pair {
                                    layer_i: outer,
                                    bit_m: m as u32,
                                    layer_j: j as u32,
                                    bit_n: n as u32,
                                },
                                loss,
                                quarantined,
                            });
                        }
                    }
                    net.set_weight(i, &self.originals[i]);
                }
            }
        }
        stats.seconds = start.elapsed().as_secs_f64();
        (out, stats)
    }

    /// One forward evaluation, building the prefix cache lazily on first
    /// use (mirrors the in-process engine's `probe_loss`).
    fn probe_once(
        &self,
        net: &mut Network,
        cache: &mut Option<PrefixCache>,
        cache_stage: Option<usize>,
        set: &DataSplit,
        telemetry: &Telemetry,
        stats: &mut ShardRunStats,
    ) -> f64 {
        match cache_stage {
            Some(stage) => {
                if cache.is_none() {
                    let h = telemetry.histogram("probe.prefix_build");
                    let _s = telemetry.span_timed("shard.prefix_build", &h);
                    stats.cache_builds += 1;
                    *cache = Some(build_prefix_cache(net, set, self.batch_size, stage));
                }
                let h = telemetry.histogram("probe.eval");
                let _s = telemetry.span_timed("shard.suffix_eval", &h);
                stats.cache_hits += 1;
                eval_loss_from(net, cache.as_ref().expect("cache built above"))
            }
            None => {
                let h = telemetry.histogram("probe.eval");
                let _s = telemetry.span_timed("shard.full_eval", &h);
                stats.full_evals += 1;
                eval_loss(net, set, self.batch_size)
            }
        }
    }

    /// Probe with the non-finite quarantine policy: a NaN/Inf loss is
    /// re-evaluated once; if still non-finite the probe is quarantined
    /// (canonical NaN stored, Ω assembly degrades the entry to zero).
    fn probe(
        &self,
        net: &mut Network,
        cache: &mut Option<PrefixCache>,
        cache_stage: Option<usize>,
        set: &DataSplit,
        telemetry: &Telemetry,
        stats: &mut ShardRunStats,
    ) -> (f64, bool) {
        let mut loss = self.probe_once(net, cache, cache_stage, set, telemetry, stats);
        if !loss.is_finite() {
            stats.retried += 1;
            loss = self.probe_once(net, cache, cache_stage, set, telemetry, stats);
        }
        if loss.is_finite() {
            (loss, false)
        } else {
            stats.quarantined += 1;
            (f64::NAN, true)
        }
    }

    /// Assembles the Ω matrix from a complete probe-record map, using the
    /// identical arithmetic (and quarantine degradation) of
    /// [`crate::measure_sensitivities`]. Returns the matrix, the base
    /// loss `L(w)`, and the number of quarantined records.
    ///
    /// # Errors
    ///
    /// [`MeasureError::MissingProbes`] when any probe of the grid has no
    /// record; [`MeasureError::NonFiniteBaseLoss`] when the base record
    /// is quarantined.
    pub fn assemble(
        &self,
        records: &HashMap<ProbeId, ProbeRecord>,
    ) -> Result<(SymMatrix, f64, usize), MeasureError> {
        let i_n = self.num_layers();
        let k = self.bits.len();
        let mut missing = 0usize;
        let mut quarantined = 0usize;
        let base_loss = match records.get(&ProbeId::Base) {
            Some(r) => {
                if r.quarantined {
                    quarantined += 1;
                }
                r.loss
            }
            None => {
                missing += 1;
                f64::NAN
            }
        };
        let mut single_loss = vec![vec![f64::NAN; k]; i_n];
        for (i, row) in single_loss.iter_mut().enumerate() {
            for (m, slot) in row.iter_mut().enumerate() {
                let id = ProbeId::Diag {
                    layer: i as u32,
                    bit: m as u32,
                };
                match records.get(&id) {
                    Some(r) => {
                        if r.quarantined {
                            quarantined += 1;
                        }
                        *slot = r.loss;
                    }
                    None => missing += 1,
                }
            }
        }
        let mut g = SymMatrix::zeros(i_n * k);
        for i in 0..i_n.saturating_sub(1) {
            for m in 0..k {
                for j in (i + 1)..i_n {
                    for n in 0..k {
                        let id = ProbeId::Pair {
                            layer_i: i as u32,
                            bit_m: m as u32,
                            layer_j: j as u32,
                            bit_n: n as u32,
                        };
                        let Some(r) = records.get(&id) else {
                            missing += 1;
                            continue;
                        };
                        if r.quarantined {
                            quarantined += 1;
                        }
                        let (si, sj) = (single_loss[i][m], single_loss[j][n]);
                        let omega = if r.quarantined || !si.is_finite() || !sj.is_finite() {
                            0.0
                        } else {
                            r.loss + base_loss - si - sj
                        };
                        g.set(i * k + m, j * k + n, omega);
                    }
                }
            }
        }
        if missing > 0 {
            return Err(MeasureError::MissingProbes {
                missing,
                total: self.total_probes(),
            });
        }
        if !base_loss.is_finite() {
            return Err(MeasureError::NonFiniteBaseLoss { loss: base_loss });
        }
        for (i, row) in single_loss.iter().enumerate() {
            for (m, &loss) in row.iter().enumerate() {
                let v = i * k + m;
                let omega = if loss.is_finite() {
                    2.0 * (loss - base_loss)
                } else {
                    0.0
                };
                g.set(v, v, omega);
            }
        }
        Ok((g, base_loss, quarantined))
    }

    /// Assembles a partially-observed Ω from an estimator's probe subset.
    ///
    /// The base probe and every diagonal probe are mandatory — a
    /// variable's own sensitivity cannot be defaulted, so every estimator
    /// spends budget on all of them. Pair probes are optional: present
    /// records produce cross entries with the exact-path arithmetic (and
    /// quarantine degradation); absent records leave the entry zero and
    /// unobserved in the mask. Same-layer off-diagonal entries are
    /// structurally zero in the exact sweep too, so they count as
    /// observed.
    ///
    /// # Errors
    ///
    /// [`MeasureError::MissingProbes`] when the base or a diagonal probe
    /// has no record; [`MeasureError::NonFiniteBaseLoss`] when the base
    /// record is quarantined.
    pub fn assemble_partial(
        &self,
        records: &HashMap<ProbeId, ProbeRecord>,
    ) -> Result<PartialAssembly, MeasureError> {
        let i_n = self.num_layers();
        let k = self.bits.len();
        let mut missing = 0usize;
        let mut quarantined = 0usize;
        let base_loss = match records.get(&ProbeId::Base) {
            Some(r) => {
                if r.quarantined {
                    quarantined += 1;
                }
                r.loss
            }
            None => {
                missing += 1;
                f64::NAN
            }
        };
        let mut single_loss = vec![vec![f64::NAN; k]; i_n];
        for (i, row) in single_loss.iter_mut().enumerate() {
            for (m, slot) in row.iter_mut().enumerate() {
                let id = ProbeId::Diag {
                    layer: i as u32,
                    bit: m as u32,
                };
                match records.get(&id) {
                    Some(r) => {
                        if r.quarantined {
                            quarantined += 1;
                        }
                        *slot = r.loss;
                    }
                    None => missing += 1,
                }
            }
        }
        if missing > 0 {
            return Err(MeasureError::MissingProbes {
                missing,
                total: 1 + i_n * k,
            });
        }
        if !base_loss.is_finite() {
            return Err(MeasureError::NonFiniteBaseLoss { loss: base_loss });
        }
        let mut g = SymMatrix::zeros(i_n * k);
        let mut observed = ObservedMask::new(i_n * k);
        // Diagonal and same-layer entries are always observed: the former
        // are measured, the latter structurally zero in the exact sweep.
        for i in 0..i_n {
            for m in 0..k {
                for n in m..k {
                    observed.set(i * k + m, i * k + n);
                }
            }
        }
        for i in 0..i_n.saturating_sub(1) {
            for m in 0..k {
                for j in (i + 1)..i_n {
                    for n in 0..k {
                        let id = ProbeId::Pair {
                            layer_i: i as u32,
                            bit_m: m as u32,
                            layer_j: j as u32,
                            bit_n: n as u32,
                        };
                        let Some(r) = records.get(&id) else {
                            continue;
                        };
                        if r.quarantined {
                            quarantined += 1;
                        }
                        let (si, sj) = (single_loss[i][m], single_loss[j][n]);
                        let omega = if r.quarantined || !si.is_finite() || !sj.is_finite() {
                            0.0
                        } else {
                            r.loss + base_loss - si - sj
                        };
                        g.set(i * k + m, j * k + n, omega);
                        observed.set(i * k + m, j * k + n);
                    }
                }
            }
        }
        for (i, row) in single_loss.iter().enumerate() {
            for (m, &loss) in row.iter().enumerate() {
                let v = i * k + m;
                let omega = if loss.is_finite() {
                    2.0 * (loss - base_loss)
                } else {
                    0.0
                };
                g.set(v, v, omega);
            }
        }
        Ok(PartialAssembly {
            g,
            observed,
            base_loss,
            quarantined,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::load_journal;
    use crate::sensitivity::{measure_sensitivities, SensitivityOptions};
    use clado_models::{SynthVision, SynthVisionConfig};
    use clado_nn::{Conv2d, GlobalAvgPool, Linear, Sequential};
    use clado_tensor::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn setup() -> (Network, SynthVision) {
        let mut rng = StdRng::seed_from_u64(3);
        let net = Network::new(
            Sequential::new()
                .push(
                    "conv1",
                    Conv2d::new(Conv2dSpec::new(3, 6, 3, 1, 1), true, &mut rng),
                )
                .push("relu1", clado_nn::Activation::new(clado_nn::ActKind::Relu))
                .push(
                    "conv2",
                    Conv2d::new(Conv2dSpec::new(6, 6, 3, 1, 1), true, &mut rng),
                )
                .push("relu2", clado_nn::Activation::new(clado_nn::ActKind::Relu))
                .push("pool", GlobalAvgPool::new())
                .push("fc", Linear::new(6, 4, &mut rng)),
            4,
        );
        let data = SynthVision::generate(SynthVisionConfig {
            classes: 4,
            img: 8,
            train: 48,
            val: 32,
            seed: 9,
            noise: 0.2,
            label_noise: 0.0,
        });
        (net, data)
    }

    fn assert_matrix_bitwise(a: &SymMatrix, b: &SymMatrix, label: &str) {
        assert_eq!(a.dim(), b.dim(), "{label}: dimension");
        for u in 0..a.dim() {
            for v in u..a.dim() {
                assert_eq!(
                    a.get(u, v).to_bits(),
                    b.get(u, v).to_bits(),
                    "{label}: entry ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn shards_partition_the_probe_grid_exactly() {
        let (net, data) = setup();
        let bits = BitWidthSet::new(&[2, 8]);
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let ctx = ShardContext::new(
            &net,
            set.len(),
            &bits,
            QuantScheme::PerTensorSymmetric,
            64,
            true,
        );
        let mut seen = HashSet::new();
        for shard in ctx.shards() {
            for id in ctx.shard_probes(shard) {
                assert!(seen.insert(id), "probe {id:?} appears in two shards");
            }
        }
        assert_eq!(seen.len(), ctx.total_probes());
        // I = 3, |B| = 2: 1 + 2·3 + ½·4·3·2 = 19 probes in 2I = 6 shards.
        assert_eq!(ctx.total_probes(), 19);
        assert_eq!(ctx.shards().len(), 6);
    }

    #[test]
    fn shard_runs_reproduce_measure_sensitivities_bitwise() {
        let (mut net, data) = setup();
        let bits = BitWidthSet::new(&[2, 8]);
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let opts = SensitivityOptions::default();
        let reference =
            measure_sensitivities(&mut net, &set, &bits, &opts).expect("reference measurement");

        for use_cache in [true, false] {
            let ctx = ShardContext::new(
                &net,
                set.len(),
                &bits,
                opts.scheme,
                opts.batch_size,
                use_cache,
            );
            let mut replica = net.clone();
            let mut records = HashMap::new();
            let telemetry = Telemetry::disabled();
            for shard in ctx.shards() {
                let (recs, _stats) = ctx.run_shard(&mut replica, &set, shard, &telemetry);
                for r in recs {
                    records.insert(r.id, r);
                }
            }
            let (g, base_loss, quarantined) = ctx.assemble(&records).expect("assembly");
            assert_eq!(
                base_loss.to_bits(),
                reference.base_loss.to_bits(),
                "cache={use_cache}: base loss"
            );
            assert_eq!(quarantined, 0);
            assert_matrix_bitwise(&g, reference.matrix(), "shard-evaluated grid");
            // The replica's weights were restored after every shard.
            for (a, b) in replica
                .snapshot_weights()
                .iter()
                .zip(net.snapshot_weights())
            {
                assert_eq!(a.data(), b.data(), "cache={use_cache}: weights drifted");
            }
        }
    }

    #[test]
    fn assemble_from_single_process_journal_is_bitwise_identical() {
        let (mut net, data) = setup();
        let bits = BitWidthSet::new(&[2, 8]);
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let dir = std::env::temp_dir().join(format!(
            "clado-shard-journal-interop-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = SensitivityOptions {
            checkpoint_dir: Some(dir.clone()),
            ..Default::default()
        };
        let reference =
            measure_sensitivities(&mut net, &set, &bits, &opts).expect("journaled measurement");

        // The shard fingerprint opens the journal the in-process engine
        // wrote, and assembly over its records reproduces Ω bit for bit —
        // the interop a distributed resume of a single-process checkpoint
        // relies on.
        let ctx = ShardContext::new(&net, set.len(), &bits, opts.scheme, opts.batch_size, true);
        let state = load_journal(&dir, ctx.fingerprint()).expect("journal opens under shard fp");
        assert_eq!(state.records.len(), ctx.total_probes());
        let (g, base_loss, _q) = ctx.assemble(&state.records).expect("assembly from journal");
        assert_eq!(base_loss.to_bits(), reference.base_loss.to_bits());
        assert_matrix_bitwise(&g, reference.matrix(), "journal-assembled grid");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_probes_matches_run_shard_bitwise_on_any_subset() {
        let (net, data) = setup();
        let bits = BitWidthSet::new(&[2, 8]);
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let ctx = ShardContext::new(
            &net,
            set.len(),
            &bits,
            QuantScheme::PerTensorSymmetric,
            64,
            true,
        );
        let telemetry = Telemetry::disabled();
        let mut replica = net.clone();
        let mut reference = HashMap::new();
        for shard in ctx.shards() {
            let (recs, _stats) = ctx.run_shard(&mut replica, &set, shard, &telemetry);
            for r in recs {
                reference.insert(r.id, r);
            }
        }
        // Full canonical order, and a sparse subset skipping every other
        // pair probe, both reproduce the shard-path losses bit for bit.
        let all: Vec<ProbeId> = ctx
            .shards()
            .into_iter()
            .flat_map(|s| ctx.shard_probes(s))
            .collect();
        let sparse: Vec<ProbeId> = all
            .iter()
            .enumerate()
            .filter(|(idx, id)| !matches!(id, ProbeId::Pair { .. }) || idx % 2 == 0)
            .map(|(_, &id)| id)
            .collect();
        for ids in [&all, &sparse] {
            let mut replica = net.clone();
            let (recs, _stats) = ctx.run_probes(&mut replica, &set, ids, &telemetry);
            assert_eq!(recs.len(), ids.len());
            for r in &recs {
                let want = reference.get(&r.id).expect("reference record");
                assert_eq!(
                    r.loss.to_bits(),
                    want.loss.to_bits(),
                    "probe {:?} loss drifted",
                    r.id
                );
            }
            for (a, b) in replica
                .snapshot_weights()
                .iter()
                .zip(net.snapshot_weights())
            {
                assert_eq!(a.data(), b.data(), "weights drifted after run_probes");
            }
        }
    }

    #[test]
    fn assemble_partial_matches_assemble_on_full_records() {
        let (net, data) = setup();
        let bits = BitWidthSet::new(&[2, 8]);
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let ctx = ShardContext::new(
            &net,
            set.len(),
            &bits,
            QuantScheme::PerTensorSymmetric,
            64,
            true,
        );
        let telemetry = Telemetry::disabled();
        let mut replica = net.clone();
        let mut records = HashMap::new();
        for shard in ctx.shards() {
            let (recs, _stats) = ctx.run_shard(&mut replica, &set, shard, &telemetry);
            for r in recs {
                records.insert(r.id, r);
            }
        }
        let (g, base_loss, _q) = ctx.assemble(&records).expect("full assembly");
        let partial = ctx.assemble_partial(&records).expect("partial assembly");
        assert_eq!(partial.base_loss.to_bits(), base_loss.to_bits());
        assert_matrix_bitwise(&partial.g, &g, "fully-observed partial assembly");
        assert_eq!(partial.observed.observed(), partial.observed.total());

        // Dropping pair records leaves those entries unobserved (and the
        // matrix zero there) but still assembles.
        let mut sparse = records.clone();
        sparse.retain(|id, _| !matches!(id, ProbeId::Pair { bit_m: 0, .. }));
        let partial = ctx.assemble_partial(&sparse).expect("sparse assembly");
        assert!(partial.observed.observed() < partial.observed.total());
        assert_eq!(partial.observed.first_unobserved_diagonal(), None);

        // Dropping a diagonal record is an error: every estimator must
        // cover the diagonal.
        let mut broken = records.clone();
        broken.remove(&ProbeId::Diag { layer: 1, bit: 0 });
        match ctx.assemble_partial(&broken) {
            Err(MeasureError::MissingProbes { missing, .. }) => assert_eq!(missing, 1),
            other => panic!("expected MissingProbes, got {other:?}"),
        }
    }

    #[test]
    fn assemble_rejects_incomplete_record_maps() {
        let (net, data) = setup();
        let bits = BitWidthSet::new(&[2, 8]);
        let set = data.train.subset(&(0..8).collect::<Vec<_>>());
        let ctx = ShardContext::new(
            &net,
            set.len(),
            &bits,
            QuantScheme::PerTensorSymmetric,
            64,
            true,
        );
        let err = ctx
            .assemble(&HashMap::new())
            .expect_err("empty record map must not assemble");
        match err {
            MeasureError::MissingProbes { missing, total } => {
                assert_eq!(missing, ctx.total_probes());
                assert_eq!(total, ctx.total_probes());
            }
            other => panic!("unexpected error: {other}"),
        }
    }
}
