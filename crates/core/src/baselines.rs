//! Baseline sensitivity-based MPQ algorithms: HAWQ-style and MPQCO-style.
//!
//! Both produce a *diagonal* objective matrix (no cross-layer terms) in the
//! same `|𝔹|I × |𝔹|I` layout as CLADO's Ĝ, so the identical eq. (11) solve
//! path applies — that is exactly the structural comparison the paper
//! makes.
//!
//! * **HAWQ-style** (Dong et al. 2019/2020; Yao et al. 2021): per-layer
//!   sensitivity `Ω_i(b) = (Tr(H_i)/n_i) · ‖Δw_i(b)‖²`, with the Hessian
//!   trace estimated by a Hutchinson probe over Hessian-vector products
//!   (central finite differences of backprop gradients).
//! * **MPQCO-style** (Chen et al. 2021): a diagonal Gauss-Newton/empirical-
//!   Fisher second-order proxy: `Ω_i(b) = Σ_e F_i[e] · Δw_i(b)[e]²`, where
//!   `F_i` is the per-element empirical Fisher (mean squared per-sample
//!   gradient). It is much cheaper to measure than HAWQ or CLADO — a
//!   handful of backward passes — matching the paper's runtime ordering
//!   (MPQCO ≪ HAWQ ≈ CLADO).

// Index-based loops are kept where they mirror the math directly.
#![allow(clippy::needless_range_loop)]
use crate::engine::{replica_map, resolve_threads};
use crate::probe::{quant_error_table, quantizable_gradients};
use clado_models::DataSplit;
use clado_nn::{cross_entropy, Network};
use clado_quant::{BitWidthSet, QuantScheme};
use clado_solver::SymMatrix;
use clado_telemetry::Telemetry;
use clado_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options shared by the baseline sensitivity estimators.
#[derive(Debug, Clone)]
pub struct BaselineOptions {
    /// Quantization scheme for the Δw error tensors.
    pub scheme: QuantScheme,
    /// Probe batch size.
    pub batch_size: usize,
    /// Hutchinson probes per layer (HAWQ only).
    pub hutchinson_probes: usize,
    /// Finite-difference step for Hessian-vector products (HAWQ only).
    pub fd_epsilon: f32,
    /// RNG seed for the Rademacher probes.
    pub seed: u64,
    /// Worker threads for the Hutchinson probe fan-out; `0` means all
    /// available cores. The estimate is bitwise identical for any value.
    pub threads: usize,
    /// Telemetry sink for spans, counters, and progress (never affects
    /// the estimates).
    pub telemetry: Telemetry,
}

impl Default for BaselineOptions {
    fn default() -> Self {
        Self {
            scheme: QuantScheme::PerTensorSymmetric,
            batch_size: crate::probe::PROBE_BATCH,
            hutchinson_probes: 4,
            fd_epsilon: 5e-3,
            seed: 0xBA5E,
            threads: 0,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// HAWQ-style diagonal sensitivity matrix:
/// `Ĝ[(i,m),(i,m)] = (Tr(H_i)/n_i) · ‖Δw_m⁽ⁱ⁾‖²`.
pub fn hawq_sensitivities(
    network: &mut Network,
    sens_set: &DataSplit,
    bits: &BitWidthSet,
    options: &BaselineOptions,
) -> SymMatrix {
    let _span = options.telemetry.span("baselines.hawq");
    let num_layers = network.quantizable_layers().len();
    let k = bits.len();
    let deltas = quant_error_table(network, bits, options.scheme);
    let traces = hessian_traces(network, sens_set, options);
    let mut g = SymMatrix::zeros(num_layers * k);
    for i in 0..num_layers {
        let n_i = deltas[i][0].numel() as f64;
        let avg_trace = traces[i] / n_i;
        for m in 0..k {
            let v = i * k + m;
            g.set(v, v, avg_trace * deltas[i][m].norm_sq());
        }
    }
    g
}

/// Hutchinson estimates of `Tr(H_i)` for every quantizable layer.
///
/// Each probe draws a Rademacher vector `z_i` per layer and accumulates
/// `z_iᵀ H z_i` using one central-difference HVP that covers all layers at
/// once (perturb every layer by `±ε z`, difference the gradients).
pub fn hessian_traces(
    network: &mut Network,
    sens_set: &DataSplit,
    options: &BaselineOptions,
) -> Vec<f64> {
    let _span = options.telemetry.span("baselines.hutchinson");
    let c_probes = options.telemetry.counter("baselines.hutchinson.probes");
    let num_layers = network.quantizable_layers().len();
    let mut rng = StdRng::seed_from_u64(options.seed);
    let originals = network.snapshot_weights();
    // Draw every probe's Rademacher directions up front from the single
    // seeded stream, so the estimate does not depend on which worker runs
    // which probe. Cross-layer Hessian blocks contribute zero in
    // expectation because the z_i are independent and zero-mean.
    let all_zs: Vec<Vec<Tensor>> = (0..options.hutchinson_probes)
        .map(|_| {
            (0..num_layers)
                .map(|i| {
                    let mut z = Tensor::zeros(originals[i].shape());
                    for v in z.data_mut() {
                        *v = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                    }
                    z
                })
                .collect()
        })
        .collect();
    let eps = options.fd_epsilon;
    let batch_size = options.batch_size;
    let threads = resolve_threads(options.threads);
    let progress = options
        .telemetry
        .progress("hutchinson probes", options.hutchinson_probes as u64);
    let per_probe: Vec<Vec<f64>> = replica_map(network, threads, &all_zs, |net, zs| {
        let _s = options.telemetry.span("baselines.hutchinson.probe");
        for (i, z) in zs.iter().enumerate() {
            let mut step = z.clone();
            step.scale(eps);
            net.perturb_weight(i, &step);
        }
        let g_plus = quantizable_gradients(net, sens_set, batch_size);
        net.restore_weights(&originals);
        for (i, z) in zs.iter().enumerate() {
            let mut step = z.clone();
            step.scale(-eps);
            net.perturb_weight(i, &step);
        }
        let g_minus = quantizable_gradients(net, sens_set, batch_size);
        net.restore_weights(&originals);
        let hz: Vec<f64> = zs
            .iter()
            .enumerate()
            // zᵀ H z ≈ zᵀ (g₊ − g₋) / (2ε)
            .map(|(i, z)| (&g_plus[i] - &g_minus[i]).dot(z) / (2.0 * eps as f64))
            .collect();
        c_probes.incr();
        progress.tick();
        hz
    });
    if options.hutchinson_probes > 0 {
        progress.finish();
    }
    // Accumulate in probe order — the same addition order as a serial run,
    // so the result is bitwise independent of the thread count.
    let mut traces = vec![0.0f64; num_layers];
    for hz in &per_probe {
        for (trace, &v) in traces.iter_mut().zip(hz) {
            *trace += v / options.hutchinson_probes as f64;
        }
    }
    traces
}

/// MPQCO-style diagonal sensitivity matrix from the empirical Fisher:
/// `Ĝ[(i,m),(i,m)] = Σ_e F_i[e] · Δw_m⁽ⁱ⁾[e]²`.
pub fn mpqco_sensitivities(
    network: &mut Network,
    sens_set: &DataSplit,
    bits: &BitWidthSet,
    options: &BaselineOptions,
) -> SymMatrix {
    let _span = options.telemetry.span("baselines.mpqco");
    let num_layers = network.quantizable_layers().len();
    let k = bits.len();
    let deltas = quant_error_table(network, bits, options.scheme);
    let fisher = {
        let _s = options.telemetry.span("baselines.mpqco.fisher");
        empirical_fisher(network, sens_set, options.batch_size)
    };
    let mut g = SymMatrix::zeros(num_layers * k);
    for i in 0..num_layers {
        for m in 0..k {
            let v = i * k + m;
            let omega: f64 = fisher[i]
                .data()
                .iter()
                .zip(deltas[i][m].data())
                .map(|(&f, &d)| (f as f64) * (d as f64) * (d as f64))
                .sum();
            g.set(v, v, omega);
        }
    }
    g
}

/// Per-element empirical Fisher of each quantizable layer: the mean of
/// squared per-mini-batch gradients (a standard diagonal Gauss-Newton
/// surrogate; small batches keep it close to the per-sample Fisher while
/// remaining cheap).
pub fn empirical_fisher(
    network: &mut Network,
    sens_set: &DataSplit,
    batch_size: usize,
) -> Vec<Tensor> {
    let num_layers = network.quantizable_layers().len();
    let mut fisher: Vec<Tensor> = (0..num_layers)
        .map(|i| Tensor::zeros(network.weight(i).shape()))
        .collect();
    // Small batches approximate per-sample gradients at tolerable cost.
    let fisher_batch = batch_size.clamp(1, 8);
    let mut batches = 0usize;
    for (x, labels) in sens_set.batches(fisher_batch) {
        network.zero_grad();
        let logits = network.forward(x, true);
        let (_, grad) = cross_entropy(&logits, &labels);
        network.backward(grad);
        network.visit_quantizable_weights(&mut |i, p| {
            for (f, &g) in fisher[i].data_mut().iter_mut().zip(p.grad.data()) {
                *f += g * g;
            }
        });
        batches += 1;
    }
    network.zero_grad();
    for f in &mut fisher {
        f.scale(1.0 / batches.max(1) as f32);
    }
    fisher
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_models::{SynthVision, SynthVisionConfig};
    use clado_nn::{Conv2d, GlobalAvgPool, Linear, Network, Sequential};
    use clado_tensor::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Network, SynthVision) {
        let mut rng = StdRng::seed_from_u64(77);
        let net = Network::new(
            Sequential::new()
                .push(
                    "conv1",
                    Conv2d::new(Conv2dSpec::new(3, 6, 3, 1, 1), true, &mut rng),
                )
                .push("relu1", clado_nn::Activation::new(clado_nn::ActKind::Relu))
                .push("pool", GlobalAvgPool::new())
                .push("fc", Linear::new(6, 4, &mut rng)),
            4,
        );
        let data = SynthVision::generate(SynthVisionConfig {
            classes: 4,
            img: 8,
            train: 48,
            val: 24,
            seed: 13,
            noise: 0.2,
            label_noise: 0.0,
        });
        (net, data)
    }

    #[test]
    fn hawq_matrix_is_diagonal_and_monotone_in_bits() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let bits = BitWidthSet::standard();
        let g = hawq_sensitivities(&mut net, &set, &bits, &BaselineOptions::default());
        let k = bits.len();
        for i in 0..2 {
            for m in 0..k {
                for n in 0..k {
                    let (u, v) = (i * k + m, (1 - i) * k + n);
                    assert_eq!(g.get(u, v), 0.0, "off-diagonal must vanish");
                }
            }
            // ‖Δw‖² decreases with bits, so the diagonal must not increase
            // (trace factor is shared within the layer).
            let d2 = g.get(i * k, i * k).abs();
            let d8 = g.get(i * k + 2, i * k + 2).abs();
            assert!(d8 <= d2 + 1e-12, "layer {i}: {d2} vs {d8}");
        }
    }

    #[test]
    fn fisher_is_nonnegative_and_shaped() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let fisher = empirical_fisher(&mut net, &set, 8);
        assert_eq!(fisher.len(), 2);
        assert_eq!(fisher[0].shape(), net.weight(0).shape());
        assert!(fisher.iter().all(|f| f.data().iter().all(|&v| v >= 0.0)));
        assert!(fisher.iter().any(|f| f.norm() > 0.0));
    }

    #[test]
    fn mpqco_sensitivities_nonnegative_diagonal() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let bits = BitWidthSet::standard();
        let g = mpqco_sensitivities(&mut net, &set, &bits, &BaselineOptions::default());
        for v in 0..g.dim() {
            assert!(g.get(v, v) >= 0.0);
        }
    }

    #[test]
    fn hessian_trace_matches_quadratic_toy_model() {
        // For a linear-softmax model the Hessian of the CE loss is PSD,
        // so traces must come out positive.
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..24).collect::<Vec<_>>());
        let traces = hessian_traces(
            &mut net,
            &set,
            &BaselineOptions {
                hutchinson_probes: 3,
                ..Default::default()
            },
        );
        assert_eq!(traces.len(), 2);
        assert!(traces.iter().all(|&t| t.is_finite()));
        // The fc layer feeds the loss directly; its curvature should be
        // clearly nonzero.
        assert!(traces[1].abs() > 1e-6, "{traces:?}");
    }

    #[test]
    fn telemetry_counts_probes_without_changing_traces() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let reference = hessian_traces(&mut net, &set, &BaselineOptions::default());
        let telemetry = Telemetry::new();
        let traced = hessian_traces(
            &mut net,
            &set,
            &BaselineOptions {
                telemetry: telemetry.clone(),
                ..Default::default()
            },
        );
        for (a, b) in reference.iter().zip(&traced) {
            assert_eq!(a.to_bits(), b.to_bits(), "telemetry changed the estimate");
        }
        assert_eq!(telemetry.counter_value("baselines.hutchinson.probes"), 4);
        assert!(telemetry.span_stats("baselines.hutchinson").is_some());
        assert_eq!(
            telemetry
                .span_stats("baselines.hutchinson.probe")
                .expect("probe span recorded")
                .count,
            4
        );
    }

    #[test]
    fn baselines_restore_weights() {
        let (mut net, data) = setup();
        let before = net.snapshot_weights();
        let set = data.train.subset(&(0..8).collect::<Vec<_>>());
        let bits = BitWidthSet::standard();
        let _ = hawq_sensitivities(&mut net, &set, &bits, &BaselineOptions::default());
        let _ = mpqco_sensitivities(&mut net, &set, &bits, &BaselineOptions::default());
        let after = net.snapshot_weights();
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.data(), b.data());
        }
    }
}
