//! Crash-safe work-unit journal for sensitivity measurement.
//!
//! The Ω sweep is the dominant cost of CLADO (`½·|𝔹|I(|𝔹|I+1)` forward
//! evaluations, eq. 13); at production scale a single crash used to
//! discard hours of completed probes. The journal persists every finished
//! probe `(i,m[,j,n]) → loss` so an interrupted run resumes from where it
//! died and reproduces the bitwise-identical matrix.
//!
//! # Format (CLSJ shards)
//!
//! A checkpoint directory holds numbered shard files
//! `journal-NNNNNN.clsj`, each committed *atomically*: records are
//! buffered in memory, written to `journal-NNNNNN.clsj.tmp`, fsynced,
//! renamed over the final name, and the directory is fsynced — so a
//! visible shard is always complete. A crash mid-commit leaves only a
//! `.tmp` file, which loaders ignore and writers clean up.
//!
//! Shard layout (all little-endian):
//!
//! ```text
//! magic "CLSJ" | version u32 | fingerprint u64 | count u32
//! count × { kind u8 | i u32 | m u32 | j u32 | n u32 | loss f64-bits | flags u8 }
//! checksum u64   (FNV-1a over everything before it)
//! ```
//!
//! `fingerprint` binds the journal to one measurement configuration
//! (layer count, bit-width set, scheme, set size, batch size); resuming
//! against a different configuration is a hard error. A shard that fails
//! its checksum, magic, or length checks is *skipped* — its probes are
//! simply re-measured — so a truncated or corrupted journal degrades to
//! extra work, never to a wrong matrix.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use clado_telemetry::faultpoint;

const MAGIC: &[u8; 4] = b"CLSJ";
const VERSION: u32 = 1;
const RECORD_BYTES: usize = 1 + 4 * 4 + 8 + 1;
const HEADER_BYTES: usize = 4 + 4 + 8 + 4;
/// Upper bound on records per shard accepted by the loader (a corrupt
/// count field must not provoke a huge allocation).
const MAX_RECORDS: usize = 1 << 24;

/// Identity of one measured probe — the unit of checkpointed work.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProbeId {
    /// The unperturbed base loss `L(w)`.
    Base,
    /// Layer-specific probe `L(w + Δw_m⁽ⁱ⁾)` (eq. 12).
    Diag {
        /// Layer index `i`.
        layer: u32,
        /// Bit-width index `m`.
        bit: u32,
    },
    /// Cross-layer probe `L(w + Δw_m⁽ⁱ⁾ + Δw_n⁽ʲ⁾)` (eq. 13).
    Pair {
        /// Outer layer index `i`.
        layer_i: u32,
        /// Outer bit-width index `m`.
        bit_m: u32,
        /// Inner layer index `j`.
        layer_j: u32,
        /// Inner bit-width index `n`.
        bit_n: u32,
    },
}

/// One journal entry: a probe plus its measured loss.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeRecord {
    /// Which probe this is.
    pub id: ProbeId,
    /// The measured loss (stored bit-exactly; NaN for quarantined probes).
    pub loss: f64,
    /// Whether the probe was quarantined (non-finite after retry).
    pub quarantined: bool,
}

/// Errors produced by the measurement journal.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure (the message names the offending path).
    Io(io::Error),
    /// The journal belongs to a different measurement configuration.
    ConfigMismatch {
        /// Fingerprint of the current configuration.
        expected: u64,
        /// Fingerprint stored in the journal.
        found: u64,
    },
    /// The checkpoint directory already holds a journal but `resume`
    /// was not requested.
    NotEmpty {
        /// The checkpoint directory.
        dir: PathBuf,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "journal i/o error: {e}"),
            Self::ConfigMismatch { expected, found } => write!(
                f,
                "journal belongs to a different measurement configuration \
                 (fingerprint {found:#018x}, expected {expected:#018x}); \
                 use a fresh checkpoint directory"
            ),
            Self::NotEmpty { dir } => write!(
                f,
                "checkpoint directory {} already holds a journal; \
                 pass resume (--resume) to continue it or clear the directory",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

fn io_at(path: &Path, e: io::Error) -> JournalError {
    JournalError::Io(io::Error::new(e.kind(), format!("{}: {e}", path.display())))
}

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a offset basis — the seed for [`fingerprint`] and checksums.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Hashes a measurement configuration into the journal fingerprint.
pub fn fingerprint(fields: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    for f in fields {
        h = fnv1a(h, &f.to_le_bytes());
    }
    h
}

fn encode_record(rec: &ProbeRecord, out: &mut Vec<u8>) {
    let (kind, a, b, c, d) = match rec.id {
        ProbeId::Base => (0u8, 0u32, 0u32, 0u32, 0u32),
        ProbeId::Diag { layer, bit } => (1, layer, bit, 0, 0),
        ProbeId::Pair {
            layer_i,
            bit_m,
            layer_j,
            bit_n,
        } => (2, layer_i, bit_m, layer_j, bit_n),
    };
    out.push(kind);
    for v in [a, b, c, d] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&rec.loss.to_bits().to_le_bytes());
    out.push(u8::from(rec.quarantined));
}

fn decode_record(buf: &[u8]) -> Option<ProbeRecord> {
    let u32_at = |o: usize| u32::from_le_bytes(buf[o..o + 4].try_into().expect("4 bytes"));
    let id = match buf[0] {
        0 => ProbeId::Base,
        1 => ProbeId::Diag {
            layer: u32_at(1),
            bit: u32_at(5),
        },
        2 => ProbeId::Pair {
            layer_i: u32_at(1),
            bit_m: u32_at(5),
            layer_j: u32_at(9),
            bit_n: u32_at(13),
        },
        _ => return None,
    };
    let loss = f64::from_bits(u64::from_le_bytes(buf[17..25].try_into().expect("8 bytes")));
    Some(ProbeRecord {
        id,
        loss,
        quarantined: buf[25] != 0,
    })
}

/// The probes recovered from a checkpoint directory.
#[derive(Debug, Default)]
pub struct JournalState {
    /// Completed probes, keyed by identity. Losses are bit-exact.
    pub records: HashMap<ProbeId, ProbeRecord>,
    /// Shards that loaded cleanly.
    pub shards: usize,
    /// Shards skipped because of truncation/corruption (their probes are
    /// re-measured).
    pub corrupt_shards: usize,
    /// Next shard sequence number a writer should use.
    pub next_seq: u64,
}

/// Loads every valid shard under `dir`. A missing directory yields an
/// empty state; corrupt or truncated shards are counted and skipped.
///
/// # Errors
///
/// Returns [`JournalError::ConfigMismatch`] if a *valid* shard carries a
/// different fingerprint, or [`JournalError::Io`] on filesystem failures
/// other than a missing directory.
pub fn load_journal(dir: &Path, expected_fingerprint: u64) -> Result<JournalState, JournalError> {
    let mut state = JournalState::default();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(state),
        Err(e) => return Err(io_at(dir, e)),
    };
    let mut shards: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_at(dir, e))?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(seq) = name
            .strip_prefix("journal-")
            .and_then(|s| s.strip_suffix(".clsj"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            state.next_seq = state.next_seq.max(seq + 1);
            shards.push((seq, path));
        }
    }
    shards.sort();
    for (_, path) in shards {
        let mut bytes = Vec::new();
        match fs::File::open(&path).and_then(|mut f| f.read_to_end(&mut bytes)) {
            Ok(_) => {}
            Err(e) => return Err(io_at(&path, e)),
        }
        match parse_shard(&bytes, expected_fingerprint) {
            Ok(records) => {
                state.shards += 1;
                for rec in records {
                    state.records.insert(rec.id, rec);
                }
            }
            Err(ShardDefect::ConfigMismatch { found }) => {
                return Err(JournalError::ConfigMismatch {
                    expected: expected_fingerprint,
                    found,
                });
            }
            Err(_) => state.corrupt_shards += 1,
        }
    }
    Ok(state)
}

enum ShardDefect {
    Corrupt,
    ConfigMismatch { found: u64 },
}

fn parse_shard(bytes: &[u8], expected_fingerprint: u64) -> Result<Vec<ProbeRecord>, ShardDefect> {
    if bytes.len() < HEADER_BYTES + 8 || &bytes[0..4] != MAGIC {
        return Err(ShardDefect::Corrupt);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(ShardDefect::Corrupt);
    }
    let found = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let count = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")) as usize;
    if count > MAX_RECORDS {
        return Err(ShardDefect::Corrupt);
    }
    let body_end = HEADER_BYTES + count * RECORD_BYTES;
    if bytes.len() != body_end + 8 {
        return Err(ShardDefect::Corrupt);
    }
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    if fnv1a(FNV_OFFSET, &bytes[..body_end]) != stored {
        return Err(ShardDefect::Corrupt);
    }
    // Only a checksum-valid shard may veto the fingerprint: a shard whose
    // fingerprint field was itself corrupted fails the checksum above and
    // is skipped instead of aborting the resume.
    if found != expected_fingerprint {
        return Err(ShardDefect::ConfigMismatch { found });
    }
    let mut records = Vec::with_capacity(count);
    for r in 0..count {
        let off = HEADER_BYTES + r * RECORD_BYTES;
        match decode_record(&bytes[off..off + RECORD_BYTES]) {
            Some(rec) => records.push(rec),
            None => return Err(ShardDefect::Corrupt),
        }
    }
    Ok(records)
}

/// Appends probe records to a checkpoint directory in atomically
/// committed shards.
#[derive(Debug)]
pub struct JournalWriter {
    dir: PathBuf,
    fingerprint: u64,
    next_seq: u64,
    pending: Vec<ProbeRecord>,
}

impl JournalWriter {
    /// Opens a writer over `dir` (created if missing), continuing at
    /// `next_seq`. Stray `.tmp` files from interrupted commits are
    /// removed.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] if the directory cannot be created
    /// or scanned.
    pub fn open(dir: &Path, fingerprint: u64, next_seq: u64) -> Result<Self, JournalError> {
        fs::create_dir_all(dir).map_err(|e| io_at(dir, e))?;
        for entry in fs::read_dir(dir).map_err(|e| io_at(dir, e))? {
            let path = entry.map_err(|e| io_at(dir, e))?.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                fs::remove_file(&path).map_err(|e| io_at(&path, e))?;
            }
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            fingerprint,
            next_seq,
            pending: Vec::new(),
        })
    }

    /// Buffers one record for the next [`JournalWriter::commit`].
    pub fn append(&mut self, rec: ProbeRecord) {
        self.pending.push(rec);
    }

    /// Number of records buffered but not yet committed.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Atomically commits the buffered records as one shard
    /// (write-tmp → fsync → rename → fsync-dir). A no-op when nothing
    /// is pending.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] on any filesystem failure; the
    /// buffered records are kept so a later commit can retry.
    pub fn commit(&mut self) -> Result<(), JournalError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        // Simulates a hard kill *before* the shard becomes visible: only
        // a .tmp file (ignored by loaders) may be left behind.
        faultpoint!("journal.commit");
        let mut buf = Vec::with_capacity(HEADER_BYTES + self.pending.len() * RECORD_BYTES + 8);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&self.fingerprint.to_le_bytes());
        buf.extend_from_slice(&(self.pending.len() as u32).to_le_bytes());
        for rec in &self.pending {
            encode_record(rec, &mut buf);
        }
        let checksum = fnv1a(FNV_OFFSET, &buf);
        buf.extend_from_slice(&checksum.to_le_bytes());

        let final_path = self.dir.join(format!("journal-{:06}.clsj", self.next_seq));
        let tmp = final_path.with_extension("clsj.tmp");
        let mut file = fs::File::create(&tmp).map_err(|e| io_at(&tmp, e))?;
        file.write_all(&buf).map_err(|e| io_at(&tmp, e))?;
        file.sync_all().map_err(|e| io_at(&tmp, e))?;
        drop(file);
        fs::rename(&tmp, &final_path).map_err(|e| io_at(&final_path, e))?;
        // The rename itself must be durable before we count the records
        // as checkpointed.
        if let Ok(d) = fs::File::open(&self.dir) {
            d.sync_all().ok();
        }
        // Simulates a hard kill *after* the shard became durable.
        faultpoint!("journal.committed");
        self.next_seq += 1;
        self.pending.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("clado-journal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_records() -> Vec<ProbeRecord> {
        vec![
            ProbeRecord {
                id: ProbeId::Base,
                loss: 0.75,
                quarantined: false,
            },
            ProbeRecord {
                id: ProbeId::Diag { layer: 3, bit: 1 },
                loss: -1.5e-3,
                quarantined: false,
            },
            ProbeRecord {
                id: ProbeId::Pair {
                    layer_i: 0,
                    bit_m: 2,
                    layer_j: 7,
                    bit_n: 0,
                },
                loss: f64::NAN,
                quarantined: true,
            },
        ]
    }

    #[test]
    fn roundtrip_is_bit_exact_across_commits() {
        let dir = temp_dir("roundtrip");
        let fp = fingerprint(&[3, 2, 8, 64]);
        let mut w = JournalWriter::open(&dir, fp, 0).unwrap();
        let records = sample_records();
        w.append(records[0]);
        w.commit().unwrap();
        w.append(records[1]);
        w.append(records[2]);
        w.commit().unwrap();
        // Empty commit is a no-op (no empty shard files).
        w.commit().unwrap();

        let state = load_journal(&dir, fp).unwrap();
        assert_eq!(state.shards, 2);
        assert_eq!(state.corrupt_shards, 0);
        assert_eq!(state.next_seq, 2);
        assert_eq!(state.records.len(), 3);
        for rec in &records {
            let got = state.records[&rec.id];
            assert_eq!(got.loss.to_bits(), rec.loss.to_bits());
            assert_eq!(got.quarantined, rec.quarantined);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_an_empty_state() {
        let state = load_journal(Path::new("/nonexistent/clado-ckpt"), 1).unwrap();
        assert!(state.records.is_empty());
        assert_eq!(state.next_seq, 0);
    }

    #[test]
    fn corrupt_and_truncated_shards_are_skipped_not_fatal() {
        let dir = temp_dir("corrupt");
        let fp = fingerprint(&[1]);
        let mut w = JournalWriter::open(&dir, fp, 0).unwrap();
        for rec in sample_records() {
            w.append(rec);
            w.commit().unwrap();
        }
        // Shard 0: flip a payload byte (checksum must catch it).
        let p0 = dir.join("journal-000000.clsj");
        let mut b0 = fs::read(&p0).unwrap();
        let mid = HEADER_BYTES + 5;
        b0[mid] ^= 0xFF;
        fs::write(&p0, &b0).unwrap();
        // Shard 1: truncate mid-record.
        let p1 = dir.join("journal-000001.clsj");
        let b1 = fs::read(&p1).unwrap();
        fs::write(&p1, &b1[..b1.len() - 7]).unwrap();
        // A stray .tmp from a crashed commit must be ignored.
        fs::write(dir.join("journal-000009.clsj.tmp"), b"partial").unwrap();

        let state = load_journal(&dir, fp).unwrap();
        assert_eq!(state.shards, 1, "only shard 2 survives");
        assert_eq!(state.corrupt_shards, 2);
        assert_eq!(state.records.len(), 1);
        assert_eq!(state.next_seq, 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_magic_and_version_are_corrupt() {
        let dir = temp_dir("magic");
        let fp = fingerprint(&[2]);
        let mut w = JournalWriter::open(&dir, fp, 0).unwrap();
        w.append(sample_records()[0]);
        w.commit().unwrap();
        let p = dir.join("journal-000000.clsj");
        let good = fs::read(&p).unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        fs::write(&p, &bad_magic).unwrap();
        assert_eq!(load_journal(&dir, fp).unwrap().corrupt_shards, 1);

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        fs::write(&p, &bad_version).unwrap();
        assert_eq!(load_journal(&dir, fp).unwrap().corrupt_shards, 1);

        fs::write(&p, b"").unwrap();
        assert_eq!(load_journal(&dir, fp).unwrap().corrupt_shards, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_mismatch_is_a_hard_error() {
        let dir = temp_dir("fingerprint");
        let mut w = JournalWriter::open(&dir, fingerprint(&[1, 2, 3]), 0).unwrap();
        w.append(sample_records()[0]);
        w.commit().unwrap();
        let err = load_journal(&dir, fingerprint(&[4, 5, 6])).unwrap_err();
        assert!(matches!(err, JournalError::ConfigMismatch { .. }), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writer_open_cleans_stale_tmp_files() {
        let dir = temp_dir("tmpclean");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("journal-000000.clsj.tmp"), b"crashed commit").unwrap();
        let _w = JournalWriter::open(&dir, 1, 0).unwrap();
        assert!(!dir.join("journal-000000.clsj.tmp").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resumed_writer_does_not_overwrite_existing_shards() {
        let dir = temp_dir("resume-seq");
        let fp = fingerprint(&[9]);
        let mut w = JournalWriter::open(&dir, fp, 0).unwrap();
        w.append(sample_records()[0]);
        w.commit().unwrap();
        let state = load_journal(&dir, fp).unwrap();
        let mut w2 = JournalWriter::open(&dir, fp, state.next_seq).unwrap();
        w2.append(sample_records()[1]);
        w2.commit().unwrap();
        let state = load_journal(&dir, fp).unwrap();
        assert_eq!(state.shards, 2);
        assert_eq!(state.records.len(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        assert_ne!(fingerprint(&[1, 2]), fingerprint(&[2, 1]));
        assert_ne!(fingerprint(&[1]), fingerprint(&[1, 0]));
    }
}
