//! Exact second-order quantization error `vᵀHv` via Hessian-vector
//! products, and the fast forward-only estimate — Table 2's comparison.
//!
//! Both quantities are measured against the *evaluation-mode* loss (fixed
//! BatchNorm running statistics) so the gradient-based and forward-only
//! paths refer to the same deterministic function — quantization is a
//! post-training intervention, so eval-mode loss is the relevant one.

use crate::probe::{eval_loss, quantizable_gradients};
use clado_models::DataSplit;
use clado_nn::Network;
use clado_quant::{quant_error, BitWidth, QuantScheme};
use clado_tensor::Tensor;

/// Finite-difference step used for the Hessian-vector products, relative to
/// the norm of the direction vector.
const HVP_REL_EPS: f32 = 1e-2;

/// Exact `vᵀ H v` where `v = Δw_b⁽ⁱ⁾` is the quantization error of layer
/// `layer` at `bits`, via a central-difference Hessian-vector product of
/// backprop gradients: `Hv ≈ (∇L(w+εv) − ∇L(w−εv)) / 2ε`.
///
/// This is the "exact Hessian" reference of Table 2 (the paper's exact
/// method is the autodiff HVP; central differencing of exact gradients is
/// the same construction with an O(ε²) discretization term).
pub fn exact_vhv(
    network: &mut Network,
    sens_set: &DataSplit,
    layer: usize,
    bits: BitWidth,
    scheme: QuantScheme,
    batch_size: usize,
) -> f64 {
    let w = network.weight(layer);
    let v = quant_error(&w, bits, scheme);
    exact_vhv_direction(network, sens_set, layer, &v, batch_size)
}

/// Exact `vᵀ H v` for an arbitrary direction `v` applied to one layer.
pub fn exact_vhv_direction(
    network: &mut Network,
    sens_set: &DataSplit,
    layer: usize,
    v: &Tensor,
    batch_size: usize,
) -> f64 {
    let norm = v.norm() as f32;
    if norm == 0.0 {
        return 0.0;
    }
    let eps = HVP_REL_EPS / norm;
    let original = network.weight(layer);

    let mut step = v.clone();
    step.scale(eps);
    network.perturb_weight(layer, &step);
    let g_plus = quantizable_gradients(network, sens_set, batch_size);
    network.set_weight(layer, &original);

    step.scale(-1.0);
    network.perturb_weight(layer, &step);
    let g_minus = quantizable_gradients(network, sens_set, batch_size);
    network.set_weight(layer, &original);

    let hv = &g_plus[layer] - &g_minus[layer];
    hv.dot(v) / (2.0 * eps as f64)
}

/// Exact cross-layer curvature `v_iᵀ H_ij v_j` via a Hessian-vector
/// product: perturb layer `j` by `±ε v_j`, central-difference the layer-`i`
/// gradient, and contract with `v_i`. This is the expensive reference that
/// eq. (13)'s forward-only estimate replaces — the heart of CLADO's
/// cross-layer claim.
pub fn exact_cross_vhv(
    network: &mut Network,
    sens_set: &DataSplit,
    layer_i: usize,
    v_i: &Tensor,
    layer_j: usize,
    v_j: &Tensor,
    batch_size: usize,
) -> f64 {
    let norm = v_j.norm() as f32;
    if norm == 0.0 || v_i.norm() == 0.0 {
        return 0.0;
    }
    let eps = HVP_REL_EPS / norm;
    let original_j = network.weight(layer_j);

    let mut step = v_j.clone();
    step.scale(eps);
    network.perturb_weight(layer_j, &step);
    let g_plus = quantizable_gradients(network, sens_set, batch_size);
    network.set_weight(layer_j, &original_j);

    step.scale(-1.0);
    network.perturb_weight(layer_j, &step);
    let g_minus = quantizable_gradients(network, sens_set, batch_size);
    network.set_weight(layer_j, &original_j);

    let h_v = &g_plus[layer_i] - &g_minus[layer_i];
    h_v.dot(v_i) / (2.0 * eps as f64)
}

/// The forward-only estimate of the cross-layer term, eq. (13):
/// `Ω_ij ≈ L(w+vᵢ+vⱼ) + L(w) − L(w+vᵢ) − L(w+vⱼ)`.
pub fn fast_cross_vhv(
    network: &mut Network,
    sens_set: &DataSplit,
    layer_i: usize,
    v_i: &Tensor,
    layer_j: usize,
    v_j: &Tensor,
    batch_size: usize,
) -> f64 {
    let w_i = network.weight(layer_i);
    let w_j = network.weight(layer_j);
    let base = eval_loss(network, sens_set, batch_size);
    network.perturb_weight(layer_i, v_i);
    let l_i = eval_loss(network, sens_set, batch_size);
    network.set_weight(layer_i, &w_i);
    network.perturb_weight(layer_j, v_j);
    let l_j = eval_loss(network, sens_set, batch_size);
    network.set_weight(layer_j, &w_j);
    network.perturb_weight(layer_i, v_i);
    network.perturb_weight(layer_j, v_j);
    let l_ij = eval_loss(network, sens_set, batch_size);
    network.set_weight(layer_i, &w_i);
    network.set_weight(layer_j, &w_j);
    l_ij + base - l_i - l_j
}

/// The paper's fast forward-only estimate of the same quantity (eq. 12):
/// `vᵀHv ≈ 2(L(w + v) − L(w))`, on the same evaluation-mode loss as
/// [`exact_vhv`].
pub fn fast_vhv(
    network: &mut Network,
    sens_set: &DataSplit,
    layer: usize,
    bits: BitWidth,
    scheme: QuantScheme,
    batch_size: usize,
) -> f64 {
    let w = network.weight(layer);
    let v = quant_error(&w, bits, scheme);
    let base = eval_loss(network, sens_set, batch_size);
    network.perturb_weight(layer, &v);
    let perturbed = eval_loss(network, sens_set, batch_size);
    network.set_weight(layer, &w);
    2.0 * (perturbed - base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_models::{SynthVision, SynthVisionConfig};
    use clado_nn::{Linear, Network, Sequential};
    use clado_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A linear-softmax model: its CE Hessian is exactly PSD and the two
    /// estimates must agree closely for small perturbations.
    fn linear_model() -> (Network, SynthVision) {
        let mut rng = StdRng::seed_from_u64(4);
        let net = Network::new(
            Sequential::new()
                .push("flat", clado_nn::Flatten::new())
                .push("fc", Linear::new(3 * 8 * 8, 4, &mut rng)),
            4,
        );
        let data = SynthVision::generate(SynthVisionConfig {
            classes: 4,
            img: 8,
            train: 64,
            val: 32,
            seed: 55,
            noise: 0.2,
            label_noise: 0.0,
        });
        (net, data)
    }

    #[test]
    fn exact_vhv_is_nonnegative_for_convex_model() {
        let (mut net, data) = linear_model();
        let set = data.train.subset(&(0..32).collect::<Vec<_>>());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..3 {
            let v = init::normal(net.weight(0).shape(), 0.0, 0.01, &mut rng);
            let vhv = exact_vhv_direction(&mut net, &set, 0, &v, 32);
            assert!(
                vhv > -1e-6,
                "CE Hessian of a linear model is PSD, got {vhv}"
            );
        }
    }

    #[test]
    fn fast_and_exact_agree_on_convex_model() {
        let (mut net, data) = linear_model();
        // Train to (near-)convergence first: the fast estimate assumes the
        // gradient term g·v is negligible, exactly the paper's assumption.
        clado_models::train(
            &mut net,
            &data.train,
            &data.val,
            &clado_models::TrainConfig {
                epochs: 20,
                batch_size: 16,
                lr: 0.2,
                momentum: 0.9,
                weight_decay: 0.0,
            },
        );
        let set = data.train.subset(&(0..32).collect::<Vec<_>>());
        for bits in [2u8, 4] {
            let exact = exact_vhv(
                &mut net,
                &set,
                0,
                BitWidth::of(bits),
                QuantScheme::PerTensorSymmetric,
                32,
            );
            let fast = fast_vhv(
                &mut net,
                &set,
                0,
                BitWidth::of(bits),
                QuantScheme::PerTensorSymmetric,
                32,
            );
            // The fast estimate carries the higher-order Taylor remainder
            // plus a residual-gradient term, so at 2 bits (large Δw, real
            // curvature) compare relatively, and at 4 bits (both values near
            // the noise floor) compare absolutely.
            if bits == 2 {
                let scale = exact.abs().max(fast.abs()).max(1e-6);
                assert!(
                    (exact - fast).abs() / scale < 0.8,
                    "{bits}-bit: exact {exact} vs fast {fast}"
                );
            } else {
                assert!(
                    (exact - fast).abs() < 5e-4,
                    "{bits}-bit: exact {exact} vs fast {fast}"
                );
            }
        }
    }

    #[test]
    fn cross_vhv_fast_matches_exact_on_convex_model() {
        // For a linear-softmax model over two "layers" we need two layers;
        // use a conv + fc model instead and small random directions so the
        // quadratic regime holds.
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = Network::new(
            Sequential::new()
                .push(
                    "conv",
                    clado_nn::Conv2d::new(
                        clado_tensor::Conv2dSpec::new(3, 4, 3, 1, 1),
                        true,
                        &mut rng,
                    ),
                )
                .push("relu", clado_nn::Activation::new(clado_nn::ActKind::Relu))
                .push("pool", clado_nn::GlobalAvgPool::new())
                .push("fc", Linear::new(4, 4, &mut rng)),
            4,
        );
        let data = SynthVision::generate(SynthVisionConfig {
            classes: 4,
            img: 8,
            train: 64,
            val: 32,
            seed: 19,
            noise: 0.2,
            label_noise: 0.0,
        });
        clado_models::train(
            &mut net,
            &data.train,
            &data.val,
            &clado_models::TrainConfig {
                epochs: 12,
                batch_size: 16,
                lr: 0.1,
                momentum: 0.9,
                weight_decay: 0.0,
            },
        );
        let set = data.train.subset(&(0..32).collect::<Vec<_>>());
        // Small directions keep the secant inside the quadratic regime.
        let v0 = init::normal(net.weight(0).shape(), 0.0, 0.02, &mut rng);
        let v1 = init::normal(net.weight(1).shape(), 0.0, 0.02, &mut rng);
        let exact = exact_cross_vhv(&mut net, &set, 0, &v0, 1, &v1, 32);
        let fast = fast_cross_vhv(&mut net, &set, 0, &v0, 1, &v1, 32);
        // Eq. (13) measures 2·v₀ᵀH₀₁v₁ across the symmetric pair; compare
        // against twice the one-sided HVP value.
        let reference = 2.0 * exact;
        let scale = reference.abs().max(fast.abs()).max(1e-5);
        assert!(
            (reference - fast).abs() / scale < 0.9 || (reference - fast).abs() < 2e-4,
            "exact(×2) {reference} vs fast {fast}"
        );
    }

    #[test]
    fn cross_vhv_is_symmetric_in_its_arguments() {
        // Hessian symmetry: v_iᵀ H_ij v_j == v_jᵀ H_ji v_i.
        let mut rng = StdRng::seed_from_u64(10);
        let mut net = Network::new(
            Sequential::new()
                .push(
                    "conv",
                    clado_nn::Conv2d::new(
                        clado_tensor::Conv2dSpec::new(3, 4, 3, 1, 1),
                        true,
                        &mut rng,
                    ),
                )
                .push("relu", clado_nn::Activation::new(clado_nn::ActKind::Gelu))
                .push("pool", clado_nn::GlobalAvgPool::new())
                .push("fc", Linear::new(4, 3, &mut rng)),
            3,
        );
        let data = SynthVision::generate(SynthVisionConfig {
            classes: 3,
            img: 8,
            train: 24,
            val: 8,
            seed: 77,
            noise: 0.2,
            label_noise: 0.0,
        });
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let v0 = init::normal(net.weight(0).shape(), 0.0, 0.05, &mut rng);
        let v1 = init::normal(net.weight(1).shape(), 0.0, 0.05, &mut rng);
        let a = exact_cross_vhv(&mut net, &set, 0, &v0, 1, &v1, 16);
        let b = exact_cross_vhv(&mut net, &set, 1, &v1, 0, &v0, 16);
        let scale = a.abs().max(b.abs()).max(1e-5);
        assert!((a - b).abs() / scale < 0.2, "asymmetric: {a} vs {b}");
    }

    #[test]
    fn zero_direction_gives_zero() {
        let (mut net, data) = linear_model();
        let set = data.train.subset(&(0..8).collect::<Vec<_>>());
        let z = clado_tensor::Tensor::zeros(net.weight(0).shape());
        assert_eq!(exact_vhv_direction(&mut net, &set, 0, &z, 8), 0.0);
    }

    #[test]
    fn weights_restored_by_both_paths() {
        let (mut net, data) = linear_model();
        let set = data.train.subset(&(0..8).collect::<Vec<_>>());
        let before = net.weight(0);
        let _ = exact_vhv(
            &mut net,
            &set,
            0,
            BitWidth::of(2),
            QuantScheme::PerTensorSymmetric,
            8,
        );
        let _ = fast_vhv(
            &mut net,
            &set,
            0,
            BitWidth::of(2),
            QuantScheme::PerTensorSymmetric,
            8,
        );
        assert_eq!(net.weight(0).data(), before.data());
    }
}
