//! Search-based MPQ baselines (the paper's *other* method class, §2).
//!
//! HAQ/AutoQ-style methods explore bit assignments by directly evaluating
//! the quantized model, paying hundreds of evaluations per constraint
//! instead of a reusable sensitivity precomputation. This module provides
//! two such searchers — pure random search and simulated annealing — so the
//! sensitivity-vs-search comparison (quality per evaluation, and the
//! "new constraints need a new search" property) can be reproduced.

use crate::assign::BitAssignment;
use crate::probe::{apply_quantization, eval_loss};
use clado_models::DataSplit;
use clado_nn::Network;
use clado_quant::{BitWidth, BitWidthSet, LayerSizes, QuantScheme};
use clado_solver::Solution;
use clado_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for the search-based baselines.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Number of candidate evaluations (each is a full quantized forward
    /// pass over the evaluation set — the expensive part).
    pub evaluations: usize,
    /// Quantization scheme.
    pub scheme: QuantScheme,
    /// Probe batch size.
    pub batch_size: usize,
    /// RNG seed.
    pub seed: u64,
    /// Initial Metropolis temperature (annealing only), in loss units.
    pub init_temp: f64,
    /// Worker threads for candidate evaluation (random search only —
    /// annealing is a sequential Markov chain); `0` means all available
    /// cores. The search result is bitwise identical for any value.
    pub threads: usize,
    /// Telemetry sink for spans, counters, and progress (never affects
    /// the search trajectory).
    pub telemetry: Telemetry,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            evaluations: 200,
            scheme: QuantScheme::PerTensorSymmetric,
            batch_size: crate::probe::PROBE_BATCH,
            seed: 0x5EA4C,
            init_temp: 0.5,
            threads: 0,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Outcome of a search run.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// The best assignment found.
    pub assignment: BitAssignment,
    /// Loss of the best assignment on the evaluation set.
    pub best_loss: f64,
    /// Number of quantized-model evaluations spent.
    pub evaluations: usize,
}

/// Draws a random feasible assignment by sampling uniformly and repairing
/// to the budget by downgrading random layers.
fn random_feasible(
    rng: &mut StdRng,
    bits: &BitWidthSet,
    sizes: &LayerSizes,
    budget: u64,
) -> Vec<BitWidth> {
    let mut assignment: Vec<BitWidth> = (0..sizes.num_layers())
        .map(|_| bits.get(rng.gen_range(0..bits.len())))
        .collect();
    let mut guard = 0usize;
    while sizes.assignment_bits(&assignment) > budget {
        let i = rng.gen_range(0..sizes.num_layers());
        let idx = bits
            .index_of(assignment[i])
            .expect("assignment uses set members");
        if idx > 0 {
            assignment[i] = bits.get(idx - 1);
        }
        guard += 1;
        assert!(
            guard < 100_000,
            "budget {budget} infeasible even at minimum bits — validate before searching"
        );
    }
    assignment
}

fn loss_of(
    network: &mut Network,
    assignment: &[BitWidth],
    scheme: QuantScheme,
    eval_set: &DataSplit,
    batch_size: usize,
) -> f64 {
    let snapshot = apply_quantization(network, assignment, scheme);
    let loss = eval_loss(network, eval_set, batch_size);
    network.restore_weights(&snapshot);
    loss
}

fn into_report(
    assignment: Vec<BitWidth>,
    best_loss: f64,
    sizes: &LayerSizes,
    evaluations: usize,
) -> SearchReport {
    let cost_bits = sizes.assignment_bits(&assignment);
    SearchReport {
        assignment: BitAssignment {
            cost_bits,
            predicted_delta_loss: best_loss,
            solution: Solution {
                choices: Vec::new(),
                objective: best_loss,
                cost: cost_bits,
                proved_optimal: false,
                nodes_explored: 0,
                // A sampled baseline carries no bound: the gap to the true
                // optimum is unknown.
                gap: f64::INFINITY,
                method_used: clado_solver::MethodUsed::Greedy,
                termination: clado_solver::Termination::Heuristic,
                downgrades: vec![],
            },
            bits: assignment,
        },
        best_loss,
        evaluations,
    }
}

/// Pure random search: sample feasible assignments, keep the best.
///
/// # Panics
///
/// Panics if even the all-minimum-bits assignment exceeds `budget`.
pub fn random_search(
    network: &mut Network,
    eval_set: &DataSplit,
    bits: &BitWidthSet,
    sizes: &LayerSizes,
    budget: u64,
    options: &SearchOptions,
) -> SearchReport {
    let telemetry = &options.telemetry;
    let _span = telemetry.span("search.random");
    let c_evals = telemetry.counter("search.evaluations");
    let progress = telemetry.progress("random search evaluations", options.evaluations as u64);
    let mut rng = StdRng::seed_from_u64(options.seed);
    // Draw every candidate up front from the single seeded stream, then
    // fan the (independent) evaluations out across worker replicas. The
    // winner is the first strict minimum in draw order, exactly as the
    // serial loop selected it.
    let mut candidates: Vec<Vec<BitWidth>> = (0..options.evaluations)
        .map(|_| random_feasible(&mut rng, bits, sizes, budget))
        .collect();
    let scheme = options.scheme;
    let batch_size = options.batch_size;
    let threads = crate::engine::resolve_threads(options.threads);
    let losses = crate::engine::replica_map(network, threads, &candidates, |net, candidate| {
        let _s = telemetry.span("search.random.eval");
        let loss = loss_of(net, candidate, scheme, eval_set, batch_size);
        c_evals.incr();
        progress.tick();
        loss
    });
    if options.evaluations > 0 {
        progress.finish();
    }
    let mut best: Option<(usize, f64)> = None;
    for (idx, &loss) in losses.iter().enumerate() {
        if best.is_none_or(|(_, b)| loss < b) {
            best = Some((idx, loss));
        }
    }
    let (best_idx, best_loss) = best.expect("evaluations > 0");
    let assignment = candidates.swap_remove(best_idx);
    into_report(assignment, best_loss, sizes, options.evaluations)
}

/// Simulated annealing over single-layer bit moves with budget repair.
///
/// # Panics
///
/// Panics if even the all-minimum-bits assignment exceeds `budget`.
pub fn annealing_search(
    network: &mut Network,
    eval_set: &DataSplit,
    bits: &BitWidthSet,
    sizes: &LayerSizes,
    budget: u64,
    options: &SearchOptions,
) -> SearchReport {
    let telemetry = &options.telemetry;
    let _span = telemetry.span("search.annealing");
    let c_evals = telemetry.counter("search.evaluations");
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut current = random_feasible(&mut rng, bits, sizes, budget);
    let mut current_loss = loss_of(
        network,
        &current,
        options.scheme,
        eval_set,
        options.batch_size,
    );
    c_evals.incr();
    let total = options.evaluations.max(2);
    let ticker = telemetry.progress("annealing steps", total as u64);
    ticker.tick();
    let mut best = (current.clone(), current_loss);
    for step in 1..total {
        // Geometric cooling to ~1% of the initial temperature.
        let progress = step as f64 / total as f64;
        let temp = options.init_temp * (0.01f64).powf(progress);
        // Propose: change one layer's bits; repair if over budget.
        let mut proposal = current.clone();
        let i = rng.gen_range(0..sizes.num_layers());
        proposal[i] = bits.get(rng.gen_range(0..bits.len()));
        let mut guard = 0usize;
        while sizes.assignment_bits(&proposal) > budget {
            let j = rng.gen_range(0..sizes.num_layers());
            let idx = bits.index_of(proposal[j]).expect("set member");
            if idx > 0 {
                proposal[j] = bits.get(idx - 1);
            }
            guard += 1;
            assert!(guard < 100_000, "budget repair failed");
        }
        let loss = {
            let _s = telemetry.span("search.annealing.eval");
            loss_of(
                network,
                &proposal,
                options.scheme,
                eval_set,
                options.batch_size,
            )
        };
        c_evals.incr();
        ticker.tick();
        let accept = loss < current_loss
            || rng.gen_range(0.0..1.0f64) < ((current_loss - loss) / temp.max(1e-12)).exp();
        if accept {
            current = proposal;
            current_loss = loss;
            if current_loss < best.1 {
                best = (current.clone(), current_loss);
            }
        }
    }
    ticker.finish();
    into_report(best.0, best.1, sizes, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_models::{SynthVision, SynthVisionConfig};
    use clado_nn::{Conv2d, GlobalAvgPool, Linear, Sequential};
    use clado_tensor::Conv2dSpec;
    use rand::rngs::StdRng as TestRng;

    fn setup() -> (Network, SynthVision, LayerSizes) {
        let mut rng = TestRng::seed_from_u64(31);
        let net = Network::new(
            Sequential::new()
                .push(
                    "conv1",
                    Conv2d::new(Conv2dSpec::new(3, 6, 3, 1, 1), true, &mut rng),
                )
                .push("relu", clado_nn::Activation::new(clado_nn::ActKind::Relu))
                .push("pool", GlobalAvgPool::new())
                .push("fc", Linear::new(6, 4, &mut rng)),
            4,
        );
        let data = SynthVision::generate(SynthVisionConfig {
            classes: 4,
            img: 8,
            train: 64,
            val: 32,
            seed: 3,
            noise: 0.2,
            label_noise: 0.0,
        });
        let sizes = LayerSizes::new(net.layer_param_counts());
        (net, data, sizes)
    }

    #[test]
    fn random_search_respects_budget_and_improves_over_first_draw() {
        let (mut net, data, sizes) = setup();
        let bits = BitWidthSet::standard();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let budget = sizes.budget_from_avg_bits(4.0);
        let few = random_search(
            &mut net,
            &set,
            &bits,
            &sizes,
            budget,
            &SearchOptions {
                evaluations: 1,
                ..Default::default()
            },
        );
        let many = random_search(
            &mut net,
            &set,
            &bits,
            &sizes,
            budget,
            &SearchOptions {
                evaluations: 40,
                ..Default::default()
            },
        );
        assert!(many.assignment.cost_bits <= budget);
        assert!(
            many.best_loss <= few.best_loss + 1e-12,
            "more samples can't be worse"
        );
        assert_eq!(many.evaluations, 40);
    }

    #[test]
    fn annealing_matches_or_beats_random_at_equal_budget() {
        let (mut net, data, sizes) = setup();
        let bits = BitWidthSet::standard();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let budget = sizes.budget_from_avg_bits(3.0);
        let opts = SearchOptions {
            evaluations: 60,
            ..Default::default()
        };
        let rs = random_search(&mut net, &set, &bits, &sizes, budget, &opts);
        let sa = annealing_search(&mut net, &set, &bits, &sizes, budget, &opts);
        assert!(sa.assignment.cost_bits <= budget);
        // Annealing exploits locality; allow a small slack for stochasticity.
        assert!(
            sa.best_loss <= rs.best_loss * 1.25 + 0.05,
            "sa {} vs rs {}",
            sa.best_loss,
            rs.best_loss
        );
    }

    #[test]
    fn search_restores_the_network_weights() {
        let (mut net, data, sizes) = setup();
        let before = net.snapshot_weights();
        let set = data.train.subset(&(0..8).collect::<Vec<_>>());
        let budget = sizes.budget_from_avg_bits(4.0);
        let _ = annealing_search(
            &mut net,
            &set,
            &BitWidthSet::standard(),
            &sizes,
            budget,
            &SearchOptions {
                evaluations: 10,
                ..Default::default()
            },
        );
        let after = net.snapshot_weights();
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn impossible_budget_panics() {
        let (mut net, data, sizes) = setup();
        let set = data.train.subset(&(0..8).collect::<Vec<_>>());
        random_search(
            &mut net,
            &set,
            &BitWidthSet::standard(),
            &sizes,
            1, // one bit total: impossible
            &SearchOptions {
                evaluations: 2,
                ..Default::default()
            },
        );
    }
}
