//! Sensitivity-matrix serialization.
//!
//! Sensitivity-based MPQ's selling point is that the expensive measurement
//! is *reusable*: when the size constraint changes, only the cheap IQP is
//! re-solved. Persisting Ĝ makes that reuse survive process boundaries —
//! measure once per (model, sensitivity-set), sweep budgets forever.
//!
//! Format: `CLSM` magic, version, `I`, |𝔹|, the bit-widths, base loss,
//! measurement stats, then the `|𝔹|I × |𝔹|I` matrix as little-endian `f64`.
//!
//! The loader validates with a *bounded* header read: the fixed prelude is
//! read first, the dimensions are sanity-capped, and the file's total
//! length is checked against the exact size those dimensions imply —
//! before any payload-sized allocation happens. Truncation at any byte,
//! flipped magic/version bytes, and length mismatches all surface as
//! [`SensitivityIoError::BadFormat`], never as a panic or an OOM.

use crate::sensitivity::{OmegaProvenance, SensitivityMatrix, SensitivityStats};
use clado_quant::BitWidthSet;
use clado_solver::SymMatrix;
use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"CLSM";
/// Version 4 appends the Ω provenance words (estimator tag, probe budget,
/// estimator seed) after the fault-tolerance counters version 3
/// introduced (resumed, retried, quarantined), which in turn follow the
/// engine counters of version 2 (threads, prefix-cache builds/hits, full
/// evaluations). Older files still load: missing counters are reported as
/// zero (provenance defaults to the exact sweep), except v1's
/// `full_evals` which inherits `evaluations` (v1 measurements always ran
/// the full forward pass).
const VERSION: u32 = 4;

/// Size of the fixed prelude: magic, version, `I`, |𝔹|.
const PRELUDE_BYTES: usize = 4 + 4 + 4 + 4;
/// Sanity cap on the layer count a file may claim; real models are
/// hundreds of layers, so anything near this is corruption, and the cap
/// keeps a corrupt header from provoking a huge allocation.
const MAX_LAYERS: usize = 1 << 20;

/// Errors produced by sensitivity-matrix (de)serialization.
#[derive(Debug)]
pub enum SensitivityIoError {
    /// Underlying I/O failure (the message names the offending path).
    Io(io::Error),
    /// Not a CLSM file, unsupported version, or truncated payload.
    BadFormat(String),
}

impl fmt::Display for SensitivityIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::BadFormat(m) => write!(f, "bad sensitivity file: {m}"),
        }
    }
}

impl std::error::Error for SensitivityIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SensitivityIoError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

fn io_at(path: &Path, e: io::Error) -> SensitivityIoError {
    SensitivityIoError::Io(io::Error::new(e.kind(), format!("{}: {e}", path.display())))
}

/// Serializes a measured sensitivity matrix to its CLSM (current
/// version) byte image — exactly the bytes [`save_sensitivities`]
/// writes to disk. The serve daemon ships this image over the wire so a
/// client-side save is bitwise identical to a local one.
pub fn sensitivities_to_bytes(sens: &SensitivityMatrix) -> Vec<u8> {
    let mut buf: Vec<u8> = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(sens.num_layers() as u32).to_le_bytes());
    buf.extend_from_slice(&(sens.bits().len() as u32).to_le_bytes());
    for b in sens.bits().iter() {
        buf.push(b.bits());
    }
    buf.extend_from_slice(&sens.base_loss.to_le_bytes());
    buf.extend_from_slice(&(sens.stats.evaluations as u64).to_le_bytes());
    buf.extend_from_slice(&sens.stats.seconds.to_le_bytes());
    buf.extend_from_slice(&(sens.stats.threads_used as u64).to_le_bytes());
    buf.extend_from_slice(&(sens.stats.prefix_cache_builds as u64).to_le_bytes());
    buf.extend_from_slice(&(sens.stats.prefix_cache_hits as u64).to_le_bytes());
    buf.extend_from_slice(&(sens.stats.full_evals as u64).to_le_bytes());
    buf.extend_from_slice(&(sens.stats.resumed as u64).to_le_bytes());
    buf.extend_from_slice(&(sens.stats.retried as u64).to_le_bytes());
    buf.extend_from_slice(&(sens.stats.quarantined as u64).to_le_bytes());
    buf.extend_from_slice(&u64::from(sens.stats.provenance.estimator).to_le_bytes());
    buf.extend_from_slice(&sens.stats.provenance.probe_budget.to_le_bytes());
    buf.extend_from_slice(&sens.stats.provenance.seed.to_le_bytes());
    let n = sens.matrix().dim();
    for i in 0..n {
        for j in 0..n {
            buf.extend_from_slice(&sens.matrix().get(i, j).to_le_bytes());
        }
    }
    buf
}

/// Serializes a measured sensitivity matrix to `path`.
///
/// # Errors
///
/// Returns [`SensitivityIoError::Io`] on filesystem failures.
pub fn save_sensitivities(sens: &SensitivityMatrix, path: &Path) -> Result<(), SensitivityIoError> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let buf = sensitivities_to_bytes(sens);
    let tmp = path.with_extension("tmp");
    fs::File::create(&tmp)?.write_all(&buf)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Number of trailing `u64` stat counters each format version stores
/// after the (base loss, evaluations, seconds) triple.
fn stat_counters(version: u32) -> u64 {
    match version {
        1 => 0,
        2 => 4,
        3 => 7,
        _ => 10,
    }
}

/// Deserializes a CLSM byte image (any supported version) — the inverse
/// of [`sensitivities_to_bytes`], and the parser behind
/// [`load_sensitivities`].
///
/// The header is validated first and the image's total length is checked
/// against the exact size the dimensions imply before any
/// dimension-sized allocation happens, so a corrupt header cannot
/// provoke an OOM.
///
/// # Errors
///
/// Returns [`SensitivityIoError::BadFormat`] for malformed, truncated,
/// or length-mismatched images.
pub fn sensitivities_from_bytes(bytes: &[u8]) -> Result<SensitivityMatrix, SensitivityIoError> {
    if bytes.len() < PRELUDE_BYTES {
        return Err(SensitivityIoError::BadFormat(
            "truncated file (while reading header prelude)".into(),
        ));
    }
    if &bytes[0..4] != MAGIC {
        return Err(SensitivityIoError::BadFormat("missing CLSM magic".into()));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if !(1..=VERSION).contains(&version) {
        return Err(SensitivityIoError::BadFormat(format!(
            "unsupported version {version}"
        )));
    }
    let num_layers = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let k = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
    if num_layers == 0 || k == 0 {
        return Err(SensitivityIoError::BadFormat(
            "degenerate dimensions".into(),
        ));
    }
    if num_layers > MAX_LAYERS || k > u8::MAX as usize {
        return Err(SensitivityIoError::BadFormat(format!(
            "implausible dimensions (I={num_layers}, |B|={k}) — corrupt header"
        )));
    }

    // With the dimensions known, the exact image size is implied; check
    // it *before* allocating. This catches truncation anywhere after the
    // prelude as well as trailing garbage.
    let n = num_layers * k;
    let expected_len = PRELUDE_BYTES as u64
        + k as u64
        + 8 * 3 // base loss, evaluations, seconds
        + 8 * stat_counters(version)
        + 8 * (n as u64) * (n as u64);
    if bytes.len() as u64 != expected_len {
        return Err(SensitivityIoError::BadFormat(format!(
            "file length mismatch: I={num_layers}, |B|={k} (version {version}) implies \
             {expected_len} bytes, found {} — truncated or corrupt",
            bytes.len()
        )));
    }

    let raw_bits = &bytes[PRELUDE_BYTES..PRELUDE_BYTES + k];
    let bits = BitWidthSet::new(raw_bits);
    if bits.len() != k {
        return Err(SensitivityIoError::BadFormat(
            "duplicate bit-widths in file".into(),
        ));
    }

    let stats_raw = &bytes[PRELUDE_BYTES + k..];
    let f64_at = |o: usize| f64::from_le_bytes(stats_raw[o..o + 8].try_into().expect("8 bytes"));
    let u64_at =
        |o: usize| u64::from_le_bytes(stats_raw[o..o + 8].try_into().expect("8 bytes")) as usize;
    let base_loss = f64_at(0);
    let evaluations = u64_at(8);
    let seconds = f64_at(16);
    let (threads_used, prefix_cache_builds, prefix_cache_hits, full_evals) = if version >= 2 {
        (u64_at(24), u64_at(32), u64_at(40), u64_at(48))
    } else {
        (0, 0, 0, evaluations)
    };
    let (resumed, retried, quarantined) = if version >= 3 {
        (u64_at(56), u64_at(64), u64_at(72))
    } else {
        (0, 0, 0)
    };
    let provenance = if version >= 4 {
        let raw_tag = u64_at(80);
        if raw_tag > u64::from(u8::MAX) as usize {
            return Err(SensitivityIoError::BadFormat(format!(
                "estimator tag {raw_tag} out of range — corrupt stats block"
            )));
        }
        OmegaProvenance {
            estimator: raw_tag as u8,
            probe_budget: u64_at(88) as u64,
            seed: u64_at(96) as u64,
        }
    } else {
        OmegaProvenance::exact()
    };

    let matrix_raw = &stats_raw[8 * (3 + stat_counters(version) as usize)..];
    let mut g = SymMatrix::zeros(n);
    for i in 0..n {
        for j in i..n {
            let o = 8 * (i * n + j);
            g.set(
                i,
                j,
                f64::from_le_bytes(matrix_raw[o..o + 8].try_into().expect("8 bytes")),
            );
        }
    }

    Ok(SensitivityMatrix::from_parts(
        g,
        num_layers,
        bits,
        base_loss,
        SensitivityStats {
            evaluations,
            seconds,
            threads_used,
            prefix_cache_builds,
            prefix_cache_hits,
            full_evals,
            resumed,
            retried,
            quarantined,
            provenance,
        },
    ))
}

/// Loads a sensitivity matrix saved by [`save_sensitivities`].
///
/// A zero-length or permission-denied file yields a targeted error
/// instead of a generic one; everything else defers to
/// [`sensitivities_from_bytes`].
///
/// # Errors
///
/// Returns [`SensitivityIoError::BadFormat`] for malformed, truncated, or
/// length-mismatched files and [`SensitivityIoError::Io`] (with the path
/// in the message) for filesystem failures such as permission denial.
pub fn load_sensitivities(path: &Path) -> Result<SensitivityMatrix, SensitivityIoError> {
    let mut file = fs::File::open(path).map_err(|e| io_at(path, e))?;
    let file_len = file.metadata().map_err(|e| io_at(path, e))?.len();
    if file_len == 0 {
        return Err(SensitivityIoError::BadFormat(format!(
            "{}: file is empty (zero bytes — not a CLSM file; was the save interrupted?)",
            path.display()
        )));
    }
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(|e| io_at(path, e))?;
    sensitivities_from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensitivity::{measure_sensitivities, SensitivityOptions};
    use clado_models::{SynthVision, SynthVisionConfig};
    use clado_nn::{Conv2d, GlobalAvgPool, Linear, Network, Sequential};
    use clado_tensor::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("clado-sens-{}-{name}.clsm", std::process::id()))
    }

    fn measured() -> SensitivityMatrix {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Network::new(
            Sequential::new()
                .push(
                    "conv",
                    Conv2d::new(Conv2dSpec::new(3, 4, 3, 1, 1), true, &mut rng),
                )
                .push("relu", clado_nn::Activation::new(clado_nn::ActKind::Relu))
                .push("pool", GlobalAvgPool::new())
                .push("fc", Linear::new(4, 3, &mut rng)),
            3,
        );
        let data = SynthVision::generate(SynthVisionConfig {
            classes: 3,
            img: 8,
            train: 24,
            val: 8,
            seed: 6,
            noise: 0.2,
            label_noise: 0.0,
        });
        let set = data.train.subset(&(0..12).collect::<Vec<_>>());
        measure_sensitivities(
            &mut net,
            &set,
            &BitWidthSet::standard(),
            &SensitivityOptions::default(),
        )
        .expect("measurement succeeds")
    }

    /// A minimal hand-built valid v3 file (1 layer, 1 bit-width).
    fn tiny_v3_bytes() -> Vec<u8> {
        let mut bytes: Vec<u8> = Vec::new();
        bytes.extend_from_slice(b"CLSM");
        bytes.extend_from_slice(&3u32.to_le_bytes()); // version
        bytes.extend_from_slice(&1u32.to_le_bytes()); // I
        bytes.extend_from_slice(&1u32.to_le_bytes()); // |B|
        bytes.push(8u8); // the bit-width
        bytes.extend_from_slice(&0.5f64.to_le_bytes()); // base loss
        bytes.extend_from_slice(&7u64.to_le_bytes()); // evaluations
        bytes.extend_from_slice(&0.25f64.to_le_bytes()); // seconds
        for c in [4u64, 1, 3, 4, 2, 1, 0] {
            // threads, builds, hits, full, resumed, retried, quarantined
            bytes.extend_from_slice(&c.to_le_bytes());
        }
        bytes.extend_from_slice(&1.5f64.to_le_bytes()); // the 1×1 matrix
        bytes
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let sens = measured();
        let path = temp("roundtrip");
        save_sensitivities(&sens, &path).unwrap();
        let loaded = load_sensitivities(&path).unwrap();
        assert_eq!(loaded.num_layers(), sens.num_layers());
        assert_eq!(loaded.bits(), sens.bits());
        assert_eq!(loaded.base_loss, sens.base_loss);
        assert_eq!(loaded.stats.evaluations, sens.stats.evaluations);
        assert_eq!(loaded.stats.threads_used, sens.stats.threads_used);
        assert_eq!(
            loaded.stats.prefix_cache_builds,
            sens.stats.prefix_cache_builds
        );
        assert_eq!(loaded.stats.prefix_cache_hits, sens.stats.prefix_cache_hits);
        assert_eq!(loaded.stats.full_evals, sens.stats.full_evals);
        assert_eq!(loaded.stats.resumed, sens.stats.resumed);
        assert_eq!(loaded.stats.retried, sens.stats.retried);
        assert_eq!(loaded.stats.quarantined, sens.stats.quarantined);
        assert_eq!(loaded.stats.provenance, sens.stats.provenance);
        assert!(loaded.stats.provenance.is_exact());
        let n = sens.matrix().dim();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(loaded.matrix().get(i, j), sens.matrix().get(i, j));
            }
        }
    }

    #[test]
    fn loaded_matrix_produces_identical_assignments() {
        use crate::assign::{assign_bits, AssignOptions};
        use clado_quant::LayerSizes;
        let sens = measured();
        let path = temp("assign");
        save_sensitivities(&sens, &path).unwrap();
        let loaded = load_sensitivities(&path).unwrap();
        let sizes = LayerSizes::new(vec![108, 12]); // conv 4·3·9, fc 3·4
        let budget = sizes.budget_from_avg_bits(4.0);
        let a = assign_bits(&sens, &sizes, budget, &AssignOptions::default()).unwrap();
        let b = assign_bits(&loaded, &sizes, budget, &AssignOptions::default()).unwrap();
        assert_eq!(a.bits, b.bits);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn version1_files_still_load() {
        // A minimal hand-built v1 file: one layer, one bit-width, no
        // engine counters after the seconds field.
        let mut bytes: Vec<u8> = Vec::new();
        bytes.extend_from_slice(b"CLSM");
        bytes.extend_from_slice(&1u32.to_le_bytes()); // version
        bytes.extend_from_slice(&1u32.to_le_bytes()); // I
        bytes.extend_from_slice(&1u32.to_le_bytes()); // |B|
        bytes.push(8u8); // the bit-width
        bytes.extend_from_slice(&0.5f64.to_le_bytes()); // base loss
        bytes.extend_from_slice(&7u64.to_le_bytes()); // evaluations
        bytes.extend_from_slice(&0.25f64.to_le_bytes()); // seconds
        bytes.extend_from_slice(&1.5f64.to_le_bytes()); // the 1×1 matrix
        let path = temp("v1");
        std::fs::write(&path, &bytes).unwrap();
        let loaded = load_sensitivities(&path).unwrap();
        assert_eq!(loaded.num_layers(), 1);
        assert_eq!(loaded.base_loss, 0.5);
        assert_eq!(loaded.stats.evaluations, 7);
        assert_eq!(loaded.stats.seconds, 0.25);
        assert_eq!(loaded.stats.threads_used, 0);
        assert_eq!(loaded.stats.prefix_cache_builds, 0);
        assert_eq!(loaded.stats.prefix_cache_hits, 0);
        assert_eq!(loaded.stats.full_evals, 7, "v1 evals were all full");
        assert_eq!(loaded.stats.resumed, 0);
        assert_eq!(loaded.stats.retried, 0);
        assert_eq!(loaded.stats.quarantined, 0);
        assert_eq!(loaded.matrix().get(0, 0), 1.5);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn version2_files_still_load() {
        // A v2 file carries the four engine counters but none of the
        // fault-tolerance counters.
        let mut bytes: Vec<u8> = Vec::new();
        bytes.extend_from_slice(b"CLSM");
        bytes.extend_from_slice(&2u32.to_le_bytes()); // version
        bytes.extend_from_slice(&1u32.to_le_bytes()); // I
        bytes.extend_from_slice(&1u32.to_le_bytes()); // |B|
        bytes.push(4u8);
        bytes.extend_from_slice(&0.5f64.to_le_bytes()); // base loss
        bytes.extend_from_slice(&9u64.to_le_bytes()); // evaluations
        bytes.extend_from_slice(&0.25f64.to_le_bytes()); // seconds
        for c in [2u64, 1, 3, 6] {
            bytes.extend_from_slice(&c.to_le_bytes());
        }
        bytes.extend_from_slice(&2.5f64.to_le_bytes());
        let path = temp("v2");
        std::fs::write(&path, &bytes).unwrap();
        let loaded = load_sensitivities(&path).unwrap();
        assert_eq!(loaded.stats.threads_used, 2);
        assert_eq!(loaded.stats.prefix_cache_builds, 1);
        assert_eq!(loaded.stats.prefix_cache_hits, 3);
        assert_eq!(loaded.stats.full_evals, 6);
        assert_eq!(loaded.stats.resumed, 0);
        assert_eq!(loaded.stats.retried, 0);
        assert_eq!(loaded.stats.quarantined, 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn version3_files_still_load_with_exact_provenance() {
        // The committed v3 fixture must keep loading after the v4 bump,
        // with every counter intact and provenance defaulting to exact.
        let path = temp("v3-fixture");
        std::fs::write(&path, tiny_v3_bytes()).unwrap();
        let loaded = load_sensitivities(&path).unwrap();
        assert_eq!(loaded.stats.threads_used, 4);
        assert_eq!(loaded.stats.resumed, 2);
        assert_eq!(loaded.stats.retried, 1);
        assert_eq!(loaded.stats.quarantined, 0);
        assert!(loaded.stats.provenance.is_exact());
        assert_eq!(loaded.stats.provenance.estimator_name(), "exact");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn v4_provenance_survives_roundtrip() {
        let mut sens = measured();
        sens.stats.provenance =
            OmegaProvenance::estimated(OmegaProvenance::TAG_BLOCK_TOPK, 123, 0xDEAD_BEEF);
        let path = temp("provenance");
        save_sensitivities(&sens, &path).unwrap();
        let loaded = load_sensitivities(&path).unwrap();
        assert_eq!(loaded.stats.provenance, sens.stats.provenance);
        assert_eq!(loaded.stats.provenance.estimator_name(), "blocktopk");
        assert!(!loaded.stats.provenance.is_exact());
        std::fs::remove_file(path).ok();
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(24))]

        /// Every `SensitivityStats` field and every matrix entry must
        /// survive a v4 save→load round trip *bit-exactly* — including
        /// pathological payloads (NaN, ±0.0, subnormals) drawn straight
        /// from the f64 bit space.
        #[test]
        fn v4_roundtrip_is_bit_exact(
            layers in 1usize..=3,
            raw in proptest::collection::vec((0u32..=u32::MAX, 0u32..=u32::MAX), 0..=45),
            base in (0u32..=u32::MAX, 0u32..=u32::MAX),
            (evaluations, full_evals) in (0usize..10_000, 0usize..10_000),
            (threads_used, prefix_cache_builds) in (0usize..64, 0usize..10_000),
            prefix_cache_hits in 0usize..10_000,
            (resumed, retried, quarantined) in (0usize..10_000, 0usize..100, 0usize..100),
            seconds in 0.0f64..1.0e6,
            (estimator, probe_budget, seed) in (0u8..=8, 0u64..=1 << 48, 0u64..=1 << 48),
        ) {
            let f64_of = |(hi, lo): (u32, u32)| f64::from_bits(((hi as u64) << 32) | lo as u64);
            let bits = BitWidthSet::standard();
            let n = layers * bits.len();
            let mut g = SymMatrix::zeros(n);
            let mut entries = raw.iter().copied().map(f64_of).chain(std::iter::repeat(0.25));
            for i in 0..n {
                for j in i..n {
                    g.set(i, j, entries.next().expect("infinite"));
                }
            }
            let sens = SensitivityMatrix::from_parts(
                g,
                layers,
                bits,
                f64_of(base),
                SensitivityStats {
                    evaluations,
                    seconds,
                    threads_used,
                    prefix_cache_builds,
                    prefix_cache_hits,
                    full_evals,
                    resumed,
                    retried,
                    quarantined,
                    provenance: OmegaProvenance { estimator, probe_budget, seed },
                },
            );
            let path = temp("proptest");
            save_sensitivities(&sens, &path).expect("save");
            let loaded = load_sensitivities(&path).expect("load");
            std::fs::remove_file(&path).ok();

            proptest::prop_assert_eq!(loaded.num_layers(), sens.num_layers());
            proptest::prop_assert_eq!(loaded.bits(), sens.bits());
            proptest::prop_assert_eq!(loaded.base_loss.to_bits(), sens.base_loss.to_bits());
            proptest::prop_assert_eq!(loaded.stats.evaluations, sens.stats.evaluations);
            proptest::prop_assert_eq!(loaded.stats.seconds.to_bits(), sens.stats.seconds.to_bits());
            proptest::prop_assert_eq!(loaded.stats.threads_used, sens.stats.threads_used);
            proptest::prop_assert_eq!(
                loaded.stats.prefix_cache_builds,
                sens.stats.prefix_cache_builds
            );
            proptest::prop_assert_eq!(loaded.stats.prefix_cache_hits, sens.stats.prefix_cache_hits);
            proptest::prop_assert_eq!(loaded.stats.full_evals, sens.stats.full_evals);
            proptest::prop_assert_eq!(loaded.stats.resumed, sens.stats.resumed);
            proptest::prop_assert_eq!(loaded.stats.retried, sens.stats.retried);
            proptest::prop_assert_eq!(loaded.stats.quarantined, sens.stats.quarantined);
            proptest::prop_assert_eq!(loaded.stats.provenance, sens.stats.provenance);
            for i in 0..n {
                for j in 0..n {
                    proptest::prop_assert_eq!(
                        loaded.matrix().get(i, j).to_bits(),
                        sens.matrix().get(i, j).to_bits(),
                        "matrix entry ({}, {}) changed bits", i, j
                    );
                }
            }
        }

        /// Truncating a valid file at ANY byte boundary — which covers
        /// every section boundary (mid-magic, mid-header, mid-bit-list,
        /// mid-stats, mid-matrix) — must yield `BadFormat`, never a panic
        /// or a spurious success.
        #[test]
        fn truncation_at_any_boundary_is_bad_format(cut_ratio in 0.0f64..1.0) {
            let bytes = tiny_v3_bytes();
            // Map the ratio to [0, len): strictly shorter than the file.
            let cut = ((bytes.len() as f64) * cut_ratio) as usize;
            let path = temp(&format!("trunc-{cut}"));
            std::fs::write(&path, &bytes[..cut]).expect("write");
            let got = load_sensitivities(&path);
            std::fs::remove_file(&path).ok();
            proptest::prop_assert!(
                matches!(got, Err(SensitivityIoError::BadFormat(_))),
                "truncation at byte {} must be BadFormat, got {:?}", cut,
                got.map(|_| "Ok")
            );
        }
    }

    #[test]
    fn flipped_magic_and_version_bytes_are_bad_format() {
        let good = tiny_v3_bytes();
        // Sanity: the untampered bytes load.
        let path = temp("tamper");
        std::fs::write(&path, &good).unwrap();
        assert!(load_sensitivities(&path).is_ok());

        // Flip each magic byte and each version byte in turn.
        for flip in 0..8 {
            let mut bad = good.clone();
            bad[flip] ^= 0xFF;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                matches!(
                    load_sensitivities(&path),
                    Err(SensitivityIoError::BadFormat(_))
                ),
                "flipped byte {flip} must be rejected"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn payload_length_mismatch_is_bad_format() {
        let good = tiny_v3_bytes();
        let path = temp("lenmismatch");

        // Trailing garbage after a valid payload.
        let mut long = good.clone();
        long.extend_from_slice(&[0u8; 5]);
        std::fs::write(&path, &long).unwrap();
        let err = load_sensitivities(&path).expect_err("trailing bytes rejected");
        assert!(matches!(err, SensitivityIoError::BadFormat(_)), "{err}");

        // A header claiming more layers than the payload provides.
        let mut inflated = good.clone();
        inflated[8..12].copy_from_slice(&2u32.to_le_bytes()); // I: 1 → 2
        std::fs::write(&path, &inflated).unwrap();
        let err = load_sensitivities(&path).expect_err("inflated dimensions rejected");
        assert!(matches!(err, SensitivityIoError::BadFormat(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn implausible_dimensions_are_rejected_without_allocating() {
        let mut bytes = tiny_v3_bytes();
        // Claim ~4 billion layers; the loader must refuse before sizing
        // any buffer from the header.
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let path = temp("hugedims");
        std::fs::write(&path, &bytes).unwrap();
        let err = load_sensitivities(&path).expect_err("huge dims rejected");
        assert!(matches!(err, SensitivityIoError::BadFormat(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_is_rejected() {
        let path = temp("garbage");
        std::fs::write(&path, b"CLSMxxxx").unwrap();
        assert!(matches!(
            load_sensitivities(&path),
            Err(SensitivityIoError::BadFormat(_))
        ));
        std::fs::write(&path, b"NOPE").unwrap();
        assert!(matches!(
            load_sensitivities(&path),
            Err(SensitivityIoError::BadFormat(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn zero_length_file_gets_a_targeted_error() {
        let path = temp("empty");
        std::fs::write(&path, b"").unwrap();
        match load_sensitivities(&path) {
            Err(SensitivityIoError::BadFormat(msg)) => {
                assert!(msg.contains("empty"), "{msg}");
            }
            other => panic!("expected BadFormat for empty file, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error_naming_the_path() {
        match load_sensitivities(Path::new("/nonexistent/x.clsm")) {
            Err(SensitivityIoError::Io(e)) => {
                assert!(e.to_string().contains("/nonexistent/x.clsm"), "{e}");
            }
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[cfg(unix)]
    #[test]
    fn permission_denied_is_io_error_naming_the_path() {
        use std::os::unix::fs::PermissionsExt;
        let path = temp("noperm");
        std::fs::write(&path, tiny_v3_bytes()).unwrap();
        std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o000)).unwrap();
        let got = load_sensitivities(&path);
        std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o644)).ok();
        std::fs::remove_file(&path).ok();
        // Root bypasses permission bits; only assert when the open failed.
        if let Err(SensitivityIoError::Io(e)) = got {
            assert_eq!(e.kind(), io::ErrorKind::PermissionDenied);
            assert!(e.to_string().contains("noperm"), "{e}");
        }
    }

    #[test]
    fn matrix_debug_output_is_not_needed_for_errors() {
        // SensitivityIoError must be displayable without touching the
        // filesystem again (error paths are used in CLI output).
        let e = SensitivityIoError::BadFormat("x".into());
        assert!(format!("{e}").contains("bad sensitivity file"));
    }
}
