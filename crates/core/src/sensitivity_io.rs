//! Sensitivity-matrix serialization.
//!
//! Sensitivity-based MPQ's selling point is that the expensive measurement
//! is *reusable*: when the size constraint changes, only the cheap IQP is
//! re-solved. Persisting Ĝ makes that reuse survive process boundaries —
//! measure once per (model, sensitivity-set), sweep budgets forever.
//!
//! Format: `CLSM` magic, version, `I`, |𝔹|, the bit-widths, base loss,
//! measurement stats, then the `|𝔹|I × |𝔹|I` matrix as little-endian `f64`.

use crate::sensitivity::{SensitivityMatrix, SensitivityStats};
use clado_quant::BitWidthSet;
use clado_solver::SymMatrix;
use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"CLSM";
/// Version 2 appends the measurement-engine counters (threads, prefix-cache
/// builds/hits, full evaluations) after the wall-clock seconds. Version-1
/// files still load; their counters are reported as zero, except
/// `full_evals` which inherits `evaluations` (v1 measurements always ran
/// the full forward pass).
const VERSION: u32 = 2;

/// Errors produced by sensitivity-matrix (de)serialization.
#[derive(Debug)]
pub enum SensitivityIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a CLSM file, unsupported version, or truncated payload.
    BadFormat(String),
}

impl fmt::Display for SensitivityIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::BadFormat(m) => write!(f, "bad sensitivity file: {m}"),
        }
    }
}

impl std::error::Error for SensitivityIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SensitivityIoError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Serializes a measured sensitivity matrix to `path`.
///
/// # Errors
///
/// Returns [`SensitivityIoError::Io`] on filesystem failures.
pub fn save_sensitivities(sens: &SensitivityMatrix, path: &Path) -> Result<(), SensitivityIoError> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut buf: Vec<u8> = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(sens.num_layers() as u32).to_le_bytes());
    buf.extend_from_slice(&(sens.bits().len() as u32).to_le_bytes());
    for b in sens.bits().iter() {
        buf.push(b.bits());
    }
    buf.extend_from_slice(&sens.base_loss.to_le_bytes());
    buf.extend_from_slice(&(sens.stats.evaluations as u64).to_le_bytes());
    buf.extend_from_slice(&sens.stats.seconds.to_le_bytes());
    buf.extend_from_slice(&(sens.stats.threads_used as u64).to_le_bytes());
    buf.extend_from_slice(&(sens.stats.prefix_cache_builds as u64).to_le_bytes());
    buf.extend_from_slice(&(sens.stats.prefix_cache_hits as u64).to_le_bytes());
    buf.extend_from_slice(&(sens.stats.full_evals as u64).to_le_bytes());
    let n = sens.matrix().dim();
    for i in 0..n {
        for j in 0..n {
            buf.extend_from_slice(&sens.matrix().get(i, j).to_le_bytes());
        }
    }
    let tmp = path.with_extension("tmp");
    fs::File::create(&tmp)?.write_all(&buf)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads a sensitivity matrix saved by [`save_sensitivities`].
///
/// # Errors
///
/// Returns an error for malformed or truncated files.
pub fn load_sensitivities(path: &Path) -> Result<SensitivityMatrix, SensitivityIoError> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    let mut cur = 0usize;
    let take = |cur: &mut usize, n: usize| -> Result<&[u8], SensitivityIoError> {
        if *cur + n > bytes.len() {
            return Err(SensitivityIoError::BadFormat("truncated file".into()));
        }
        let s = &bytes[*cur..*cur + n];
        *cur += n;
        Ok(s)
    };
    if take(&mut cur, 4)? != MAGIC {
        return Err(SensitivityIoError::BadFormat("missing CLSM magic".into()));
    }
    let version = u32::from_le_bytes(take(&mut cur, 4)?.try_into().expect("4 bytes"));
    if !(1..=VERSION).contains(&version) {
        return Err(SensitivityIoError::BadFormat(format!(
            "unsupported version {version}"
        )));
    }
    let num_layers = u32::from_le_bytes(take(&mut cur, 4)?.try_into().expect("4 bytes")) as usize;
    let k = u32::from_le_bytes(take(&mut cur, 4)?.try_into().expect("4 bytes")) as usize;
    if num_layers == 0 || k == 0 {
        return Err(SensitivityIoError::BadFormat(
            "degenerate dimensions".into(),
        ));
    }
    let raw_bits = take(&mut cur, k)?.to_vec();
    let bits = BitWidthSet::new(&raw_bits);
    if bits.len() != k {
        return Err(SensitivityIoError::BadFormat(
            "duplicate bit-widths in file".into(),
        ));
    }
    let base_loss = f64::from_le_bytes(take(&mut cur, 8)?.try_into().expect("8 bytes"));
    let evaluations = u64::from_le_bytes(take(&mut cur, 8)?.try_into().expect("8 bytes")) as usize;
    let seconds = f64::from_le_bytes(take(&mut cur, 8)?.try_into().expect("8 bytes"));
    let (threads_used, prefix_cache_builds, prefix_cache_hits, full_evals) = if version >= 2 {
        let mut counter = || -> Result<usize, SensitivityIoError> {
            Ok(u64::from_le_bytes(take(&mut cur, 8)?.try_into().expect("8 bytes")) as usize)
        };
        (counter()?, counter()?, counter()?, counter()?)
    } else {
        (0, 0, 0, evaluations)
    };
    let n = num_layers * k;
    let mut g = SymMatrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            let v = f64::from_le_bytes(take(&mut cur, 8)?.try_into().expect("8 bytes"));
            if j >= i {
                g.set(i, j, v);
            }
        }
    }
    if cur != bytes.len() {
        return Err(SensitivityIoError::BadFormat("trailing bytes".into()));
    }
    Ok(SensitivityMatrix::from_parts(
        g,
        num_layers,
        bits,
        base_loss,
        SensitivityStats {
            evaluations,
            seconds,
            threads_used,
            prefix_cache_builds,
            prefix_cache_hits,
            full_evals,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensitivity::{measure_sensitivities, SensitivityOptions};
    use clado_models::{SynthVision, SynthVisionConfig};
    use clado_nn::{Conv2d, GlobalAvgPool, Linear, Network, Sequential};
    use clado_tensor::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("clado-sens-{}-{name}.clsm", std::process::id()))
    }

    fn measured() -> SensitivityMatrix {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Network::new(
            Sequential::new()
                .push(
                    "conv",
                    Conv2d::new(Conv2dSpec::new(3, 4, 3, 1, 1), true, &mut rng),
                )
                .push("relu", clado_nn::Activation::new(clado_nn::ActKind::Relu))
                .push("pool", GlobalAvgPool::new())
                .push("fc", Linear::new(4, 3, &mut rng)),
            3,
        );
        let data = SynthVision::generate(SynthVisionConfig {
            classes: 3,
            img: 8,
            train: 24,
            val: 8,
            seed: 6,
            noise: 0.2,
            label_noise: 0.0,
        });
        let set = data.train.subset(&(0..12).collect::<Vec<_>>());
        measure_sensitivities(
            &mut net,
            &set,
            &BitWidthSet::standard(),
            &SensitivityOptions::default(),
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let sens = measured();
        let path = temp("roundtrip");
        save_sensitivities(&sens, &path).unwrap();
        let loaded = load_sensitivities(&path).unwrap();
        assert_eq!(loaded.num_layers(), sens.num_layers());
        assert_eq!(loaded.bits(), sens.bits());
        assert_eq!(loaded.base_loss, sens.base_loss);
        assert_eq!(loaded.stats.evaluations, sens.stats.evaluations);
        assert_eq!(loaded.stats.threads_used, sens.stats.threads_used);
        assert_eq!(
            loaded.stats.prefix_cache_builds,
            sens.stats.prefix_cache_builds
        );
        assert_eq!(loaded.stats.prefix_cache_hits, sens.stats.prefix_cache_hits);
        assert_eq!(loaded.stats.full_evals, sens.stats.full_evals);
        let n = sens.matrix().dim();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(loaded.matrix().get(i, j), sens.matrix().get(i, j));
            }
        }
    }

    #[test]
    fn loaded_matrix_produces_identical_assignments() {
        use crate::assign::{assign_bits, AssignOptions};
        use clado_quant::LayerSizes;
        let sens = measured();
        let path = temp("assign");
        save_sensitivities(&sens, &path).unwrap();
        let loaded = load_sensitivities(&path).unwrap();
        let sizes = LayerSizes::new(vec![108, 12]); // conv 4·3·9, fc 3·4
        let budget = sizes.budget_from_avg_bits(4.0);
        let a = assign_bits(&sens, &sizes, budget, &AssignOptions::default()).unwrap();
        let b = assign_bits(&loaded, &sizes, budget, &AssignOptions::default()).unwrap();
        assert_eq!(a.bits, b.bits);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn version1_files_still_load() {
        // A minimal hand-built v1 file: one layer, one bit-width, no
        // engine counters after the seconds field.
        let mut bytes: Vec<u8> = Vec::new();
        bytes.extend_from_slice(b"CLSM");
        bytes.extend_from_slice(&1u32.to_le_bytes()); // version
        bytes.extend_from_slice(&1u32.to_le_bytes()); // I
        bytes.extend_from_slice(&1u32.to_le_bytes()); // |B|
        bytes.push(8u8); // the bit-width
        bytes.extend_from_slice(&0.5f64.to_le_bytes()); // base loss
        bytes.extend_from_slice(&7u64.to_le_bytes()); // evaluations
        bytes.extend_from_slice(&0.25f64.to_le_bytes()); // seconds
        bytes.extend_from_slice(&1.5f64.to_le_bytes()); // the 1×1 matrix
        let path = temp("v1");
        std::fs::write(&path, &bytes).unwrap();
        let loaded = load_sensitivities(&path).unwrap();
        assert_eq!(loaded.num_layers(), 1);
        assert_eq!(loaded.base_loss, 0.5);
        assert_eq!(loaded.stats.evaluations, 7);
        assert_eq!(loaded.stats.seconds, 0.25);
        assert_eq!(loaded.stats.threads_used, 0);
        assert_eq!(loaded.stats.prefix_cache_builds, 0);
        assert_eq!(loaded.stats.prefix_cache_hits, 0);
        assert_eq!(loaded.stats.full_evals, 7, "v1 evals were all full");
        assert_eq!(loaded.matrix().get(0, 0), 1.5);
        std::fs::remove_file(path).ok();
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(24))]

        /// Every `SensitivityStats` field and every matrix entry must
        /// survive a v2 save→load round trip *bit-exactly* — including
        /// pathological payloads (NaN, ±0.0, subnormals) drawn straight
        /// from the f64 bit space.
        #[test]
        fn v2_roundtrip_is_bit_exact(
            layers in 1usize..=3,
            raw in proptest::collection::vec((0u32..=u32::MAX, 0u32..=u32::MAX), 0..=45),
            base in (0u32..=u32::MAX, 0u32..=u32::MAX),
            (evaluations, full_evals) in (0usize..10_000, 0usize..10_000),
            (threads_used, prefix_cache_builds) in (0usize..64, 0usize..10_000),
            prefix_cache_hits in 0usize..10_000,
            seconds in 0.0f64..1.0e6,
        ) {
            let f64_of = |(hi, lo): (u32, u32)| f64::from_bits(((hi as u64) << 32) | lo as u64);
            let bits = BitWidthSet::standard();
            let n = layers * bits.len();
            let mut g = SymMatrix::zeros(n);
            let mut entries = raw.iter().copied().map(f64_of).chain(std::iter::repeat(0.25));
            for i in 0..n {
                for j in i..n {
                    g.set(i, j, entries.next().expect("infinite"));
                }
            }
            let sens = SensitivityMatrix::from_parts(
                g,
                layers,
                bits,
                f64_of(base),
                SensitivityStats {
                    evaluations,
                    seconds,
                    threads_used,
                    prefix_cache_builds,
                    prefix_cache_hits,
                    full_evals,
                },
            );
            let path = temp("proptest");
            save_sensitivities(&sens, &path).expect("save");
            let loaded = load_sensitivities(&path).expect("load");
            std::fs::remove_file(&path).ok();

            proptest::prop_assert_eq!(loaded.num_layers(), sens.num_layers());
            proptest::prop_assert_eq!(loaded.bits(), sens.bits());
            proptest::prop_assert_eq!(loaded.base_loss.to_bits(), sens.base_loss.to_bits());
            proptest::prop_assert_eq!(loaded.stats.evaluations, sens.stats.evaluations);
            proptest::prop_assert_eq!(loaded.stats.seconds.to_bits(), sens.stats.seconds.to_bits());
            proptest::prop_assert_eq!(loaded.stats.threads_used, sens.stats.threads_used);
            proptest::prop_assert_eq!(
                loaded.stats.prefix_cache_builds,
                sens.stats.prefix_cache_builds
            );
            proptest::prop_assert_eq!(loaded.stats.prefix_cache_hits, sens.stats.prefix_cache_hits);
            proptest::prop_assert_eq!(loaded.stats.full_evals, sens.stats.full_evals);
            for i in 0..n {
                for j in 0..n {
                    proptest::prop_assert_eq!(
                        loaded.matrix().get(i, j).to_bits(),
                        sens.matrix().get(i, j).to_bits(),
                        "matrix entry ({}, {}) changed bits", i, j
                    );
                }
            }
        }
    }

    #[test]
    fn garbage_is_rejected() {
        let path = temp("garbage");
        std::fs::write(&path, b"CLSMxxxx").unwrap();
        assert!(matches!(
            load_sensitivities(&path),
            Err(SensitivityIoError::BadFormat(_))
        ));
        std::fs::write(&path, b"NOPE").unwrap();
        assert!(matches!(
            load_sensitivities(&path),
            Err(SensitivityIoError::BadFormat(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_sensitivities(Path::new("/nonexistent/x.clsm")),
            Err(SensitivityIoError::Io(_))
        ));
    }
}
