//! Scoped-thread fan-out over replicated networks.
//!
//! The sensitivity measurement, Hutchinson probing, and random search all
//! reduce to the same shape: a list of independent work items, each needing
//! a network it can perturb freely. [`replica_map`] shards the items
//! round-robin across worker threads, hands every worker its own clone of
//! the template network, and merges the per-item results back in item
//! order. Because each item's computation depends only on the item and on
//! shared read-only state — workers restore their replica to the template's
//! exact weights between items — the output is bitwise identical regardless
//! of thread count.
//!
//! [`replica_map_checked`] is the fault-tolerant core: per-item panics are
//! caught, the replica is restored from the template snapshot, the item is
//! retried up to a bounded budget, and only then is the failure surfaced
//! as a typed [`MeasureError`] — after every already-completed result has
//! been streamed through the caller's `sink` (which the sensitivity layer
//! uses to journal probes as they finish). A worker thread that dies
//! without reporting (a panic outside the per-item guard, or an abort
//! that somehow unwinds) maps to [`MeasureError::WorkerLost`] instead of
//! the old useless `expect` abort.

use crate::errors::MeasureError;
use clado_nn::Network;
use clado_telemetry::{faultpoint, panic_message};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;

/// Resolves a requested worker count: `0` means "all available cores".
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Per-item outcome streamed out of the workers.
type ItemResult<R> = (usize, Result<(usize, R), (usize, String)>);

/// Maps `f` over `items` on up to `threads` worker threads, each owning a
/// private clone of `template`. Results are returned in item order,
/// together with the total number of per-item retries that were needed.
///
/// `f` must leave the replica's weights exactly as it found them (restore
/// from a shared snapshot, not by subtracting deltas), so that an item's
/// result does not depend on which items ran before it on the same
/// replica. Under that contract the result is independent of `threads`.
///
/// A panic inside `f` is caught per item; the replica is restored to the
/// template's weights and the item retried up to `retry_budget` times
/// before the failure is recorded. Failed items do not stop the sweep —
/// the remaining items still run (and still reach `sink`), so a journaling
/// caller salvages every completed probe before the error is returned.
///
/// `sink` observes each completed `(item, result)` from the calling
/// thread, in arrival order (item order when `threads <= 1`). A sink
/// error stops further sink calls and takes precedence over worker
/// failures in the returned error.
///
/// # Errors
///
/// - The first `sink` error, if any.
/// - [`MeasureError::WorkerPanic`] for the lowest-indexed item whose
///   retries were exhausted.
/// - [`MeasureError::WorkerLost`] if a worker thread died without
///   reporting a result.
pub fn replica_map_checked<T, R, F, S>(
    template: &Network,
    threads: usize,
    items: &[T],
    retry_budget: usize,
    f: F,
    mut sink: S,
) -> Result<(Vec<R>, u64), MeasureError>
where
    T: Sync,
    R: Send,
    F: Fn(&mut Network, &T) -> R + Sync,
    S: FnMut(usize, &R) -> Result<(), MeasureError>,
{
    let pristine = template.snapshot_weights();
    let run_item = |replica: &mut Network, i: usize| -> Result<(usize, R), (usize, String)> {
        let mut attempt = 0usize;
        loop {
            match catch_unwind(AssertUnwindSafe(|| f(&mut *replica, &items[i]))) {
                Ok(r) => return Ok((attempt, r)),
                Err(payload) => {
                    // The closure died mid-probe; its replica may hold a
                    // half-applied perturbation, so rebuild pristine
                    // weights before retrying (or moving on).
                    replica.restore_weights(&pristine);
                    let message = panic_message(&*payload);
                    if attempt >= retry_budget {
                        return Err((attempt, message));
                    }
                    attempt += 1;
                }
            }
        }
    };

    let workers = threads.clamp(1, items.len().max(1));
    let mut results: Vec<Option<R>> = items.iter().map(|_| None).collect();
    let mut retries = 0u64;
    let mut failures: Vec<(usize, usize, String)> = Vec::new();
    let mut sink_error: Option<MeasureError> = None;
    let mut apply = |i: usize,
                     outcome: Result<(usize, R), (usize, String)>,
                     results: &mut Vec<Option<R>>,
                     sink_error: &mut Option<MeasureError>,
                     retries: &mut u64,
                     failures: &mut Vec<(usize, usize, String)>| {
        match outcome {
            Ok((attempts, r)) => {
                *retries += attempts as u64;
                if sink_error.is_none() {
                    if let Err(e) = sink(i, &r) {
                        *sink_error = Some(e);
                    }
                }
                results[i] = Some(r);
            }
            Err((attempts, message)) => {
                *retries += attempts as u64;
                failures.push((i, attempts, message));
            }
        }
    };

    let mut lost: Vec<usize> = Vec::new();
    if workers <= 1 {
        let mut replica = template.clone();
        for i in 0..items.len() {
            // Fail point: simulate the worker thread being killed between
            // items (outside the per-item panic guard). In the serial
            // path this unwinds the caller directly, which is exactly a
            // "lost worker" for a one-thread sweep.
            faultpoint!("engine.worker_kill");
            let outcome = run_item(&mut replica, i);
            apply(
                i,
                outcome,
                &mut results,
                &mut sink_error,
                &mut retries,
                &mut failures,
            );
        }
    } else {
        let mut replicas: Vec<Network> = (0..workers).map(|_| template.clone()).collect();
        let (tx, rx) = mpsc::channel::<ItemResult<R>>();
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(workers);
            for (w, replica) in replicas.iter_mut().enumerate() {
                let run_item = &run_item;
                let tx = tx.clone();
                handles.push(s.spawn(move || {
                    let mut i = w;
                    while i < items.len() {
                        // Fail point: a panic here is OUTSIDE the per-item
                        // guard, so the thread dies without reporting —
                        // the join below sees `Err` and maps it to
                        // `WorkerLost`.
                        faultpoint!("engine.worker_kill");
                        let outcome = run_item(&mut *replica, i);
                        if tx.send((i, outcome)).is_err() {
                            // Receiver is gone (sink failed hard); stop.
                            return;
                        }
                        i += workers;
                    }
                }));
            }
            drop(tx);
            // Stream results as they arrive so the sink (journal) sees
            // completed probes even if a later worker fails.
            for (i, outcome) in rx {
                apply(
                    i,
                    outcome,
                    &mut results,
                    &mut sink_error,
                    &mut retries,
                    &mut failures,
                );
            }
            for (w, handle) in handles.into_iter().enumerate() {
                if handle.join().is_err() {
                    lost.push(w);
                }
            }
        });
    }

    if let Some(e) = sink_error {
        return Err(e);
    }
    if let Some((item, attempts, message)) = failures.into_iter().min_by_key(|&(i, _, _)| i) {
        return Err(MeasureError::WorkerPanic {
            item,
            retries: attempts,
            message,
        });
    }
    if let Some(&thread) = lost.first() {
        return Err(MeasureError::WorkerLost { thread });
    }
    // A worker can also vanish without its join erroring (e.g. it
    // returned early because the channel closed); any hole in the
    // results is still a lost item, never a silent zero.
    let mut out = Vec::with_capacity(items.len());
    for (i, r) in results.into_iter().enumerate() {
        match r {
            Some(r) => out.push(r),
            None => {
                return Err(MeasureError::WorkerLost {
                    thread: i % workers,
                })
            }
        }
    }
    Ok((out, retries))
}

/// Infallible wrapper over [`replica_map_checked`]: no retries, no sink,
/// panics on failure. Kept for callers (Hutchinson probing, random
/// search) whose probes cannot legitimately fail.
///
/// # Panics
///
/// Propagates panics from `f` from the calling thread, prefixed with the
/// index of the item whose closure panicked (so a failing probe can be
/// reproduced directly). When several workers panic, the lowest item
/// index is reported.
pub(crate) fn replica_map<T, R, F>(template: &Network, threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&mut Network, &T) -> R + Sync,
{
    match replica_map_checked(template, threads, items, 0, f, |_, _| Ok(())) {
        Ok((results, _)) => results,
        Err(MeasureError::WorkerPanic { item, message, .. }) => {
            panic!("measurement worker panicked on item {item}: {message}")
        }
        Err(e) => panic!("measurement fan-out failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_nn::{Linear, Network, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tiny() -> Network {
        let mut rng = StdRng::seed_from_u64(7);
        Network::new(Sequential::new().push("fc", Linear::new(4, 2, &mut rng)), 2)
    }

    #[test]
    fn zero_threads_resolves_to_at_least_one() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn results_preserve_item_order_across_thread_counts() {
        let net = tiny();
        let items: Vec<usize> = (0..17).collect();
        let serial = replica_map(&net, 1, &items, |_, &i| i * i);
        for threads in [2, 3, 8, 32] {
            let parallel = replica_map(&net, threads, &items, |_, &i| i * i);
            assert_eq!(parallel, serial, "{threads} threads");
        }
    }

    #[test]
    fn workers_own_independent_replicas() {
        let net = tiny();
        let items: Vec<usize> = (0..8).collect();
        // Each item perturbs its replica and reports the weight it read
        // back; with per-item restore the reads are identical everywhere.
        let originals = net.snapshot_weights();
        let reads = replica_map(&net, 4, &items, |replica, _| {
            let delta = clado_tensor::Tensor::full(originals[0].shape(), 1.0);
            replica.perturb_weight(0, &delta);
            let seen = replica.weight(0).data()[0];
            replica.set_weight(0, &originals[0]);
            seen
        });
        let expect = originals[0].data()[0] + 1.0;
        for (i, &r) in reads.iter().enumerate() {
            assert_eq!(r, expect, "item {i} saw a dirty replica");
        }
    }

    #[test]
    fn worker_panics_are_tagged_with_the_item_index() {
        let net = tiny();
        let items: Vec<usize> = (0..9).collect();
        for threads in [1, 3] {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                replica_map(&net, threads, &items, |_, &i| {
                    assert_ne!(i, 5, "bad probe");
                    i
                })
            }));
            let msg = panic_message(&*caught.expect_err("item 5 must panic"));
            assert!(msg.contains("item 5"), "{threads} threads: {msg}");
            assert!(msg.contains("bad probe"), "{threads} threads: {msg}");
        }
    }

    #[test]
    fn empty_items_yield_empty_results() {
        let net = tiny();
        let items: Vec<usize> = Vec::new();
        let out = replica_map(&net, 4, &items, |_, &i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn checked_map_retries_flaky_items_and_counts_them() {
        let net = tiny();
        let items: Vec<usize> = (0..6).collect();
        let attempts = AtomicUsize::new(0);
        for threads in [1, 3] {
            attempts.store(0, Ordering::SeqCst);
            let (out, retries) = replica_map_checked(
                &net,
                threads,
                &items,
                2,
                |_, &i| {
                    // Item 4 fails on its first attempt only.
                    if i == 4 && attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                        panic!("transient probe failure");
                    }
                    i * 10
                },
                |_, _| Ok(()),
            )
            .expect("retry rescues the sweep");
            assert_eq!(out, vec![0, 10, 20, 30, 40, 50], "{threads} threads");
            assert_eq!(retries, 1, "{threads} threads");
        }
    }

    #[test]
    fn exhausted_retries_surface_the_lowest_failing_item() {
        let net = tiny();
        let items: Vec<usize> = (0..9).collect();
        for threads in [1, 4] {
            let err = replica_map_checked(
                &net,
                threads,
                &items,
                1,
                |_, &i| {
                    assert!(i != 3 && i != 6, "permanent failure");
                    i
                },
                |_, _| Ok(()),
            )
            .expect_err("items 3 and 6 always panic");
            match err {
                MeasureError::WorkerPanic {
                    item,
                    retries,
                    message,
                } => {
                    assert_eq!(item, 3, "{threads} threads");
                    assert_eq!(retries, 1, "{threads} threads");
                    assert!(message.contains("permanent failure"), "{message}");
                }
                other => panic!("{threads} threads: unexpected error {other}"),
            }
        }
    }

    #[test]
    fn sink_sees_completed_items_even_when_some_fail() {
        let net = tiny();
        let items: Vec<usize> = (0..8).collect();
        let mut seen: Vec<usize> = Vec::new();
        let err = replica_map_checked(
            &net,
            1,
            &items,
            0,
            |_, &i| {
                assert_ne!(i, 2, "bad item");
                i
            },
            |i, _| {
                seen.push(i);
                Ok(())
            },
        )
        .expect_err("item 2 fails");
        assert!(matches!(err, MeasureError::WorkerPanic { item: 2, .. }));
        // Every good item — including those after the failure — reached
        // the sink, so a journaling caller loses nothing.
        assert_eq!(seen, vec![0, 1, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn panicking_item_leaves_replica_pristine_for_later_items() {
        let net = tiny();
        let originals = net.snapshot_weights();
        let items: Vec<usize> = (0..4).collect();
        let (reads, _) = replica_map_checked(
            &net,
            1,
            &items,
            1,
            |replica, &i| {
                // Dirty the replica, then die on the first attempt of
                // item 1; the engine must restore before retrying.
                let delta = clado_tensor::Tensor::full(originals[0].shape(), 3.0);
                replica.perturb_weight(0, &delta);
                let seen = replica.weight(0).data()[0];
                if i == 1 && seen > originals[0].data()[0] + 4.0 {
                    panic!("dirty replica reached item {i}");
                }
                replica.set_weight(0, &originals[0]);
                seen
            },
            |_, _| Ok(()),
        )
        .expect("restore-on-panic keeps items independent");
        let expect = originals[0].data()[0] + 3.0;
        for (i, &r) in reads.iter().enumerate() {
            assert_eq!(r, expect, "item {i} saw a dirty replica");
        }
    }

    #[test]
    fn sink_errors_take_precedence_and_stop_sink_calls() {
        let net = tiny();
        let items: Vec<usize> = (0..5).collect();
        let mut calls = 0usize;
        let err = replica_map_checked(
            &net,
            1,
            &items,
            0,
            |_, &i| i,
            |i, _| {
                calls += 1;
                if i >= 1 {
                    Err(MeasureError::WorkerLost { thread: 99 })
                } else {
                    Ok(())
                }
            },
        )
        .expect_err("sink fails on the second item");
        assert!(matches!(err, MeasureError::WorkerLost { thread: 99 }));
        assert_eq!(calls, 2, "sink is not called after its first error");
    }
}
