//! Scoped-thread fan-out over replicated networks.
//!
//! The sensitivity measurement, Hutchinson probing, and random search all
//! reduce to the same shape: a list of independent work items, each needing
//! a network it can perturb freely. [`replica_map`] shards the items
//! round-robin across worker threads, hands every worker its own clone of
//! the template network, and merges the per-item results back in item
//! order. Because each item's computation depends only on the item and on
//! shared read-only state — workers restore their replica to the template's
//! exact weights between items — the output is bitwise identical regardless
//! of thread count.

use clado_nn::Network;

/// Resolves a requested worker count: `0` means "all available cores".
pub(crate) fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Maps `f` over `items` on up to `threads` worker threads, each owning a
/// private clone of `template`. Results are returned in item order.
///
/// `f` must leave the replica's weights exactly as it found them (restore
/// from a shared snapshot, not by subtracting deltas), so that an item's
/// result does not depend on which items ran before it on the same
/// replica. Under that contract the result is independent of `threads`.
///
/// # Panics
///
/// Propagates panics from `f` (a panicking worker aborts the whole map).
pub(crate) fn replica_map<T, R, F>(template: &Network, threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&mut Network, &T) -> R + Sync,
{
    let workers = threads.clamp(1, items.len().max(1));
    if workers <= 1 {
        let mut replica = template.clone();
        return items.iter().map(|item| f(&mut replica, item)).collect();
    }
    let mut replicas: Vec<Network> = (0..workers).map(|_| template.clone()).collect();
    let mut results: Vec<Option<R>> = items.iter().map(|_| None).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for (w, replica) in replicas.iter_mut().enumerate() {
            let f = &f;
            handles.push(s.spawn(move || {
                let mut out = Vec::new();
                let mut i = w;
                while i < items.len() {
                    out.push((i, f(&mut *replica, &items[i])));
                    i += workers;
                }
                out
            }));
        }
        for handle in handles {
            for (i, r) in handle.join().expect("measurement worker panicked") {
                results[i] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every item is processed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_nn::{Linear, Network, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> Network {
        let mut rng = StdRng::seed_from_u64(7);
        Network::new(Sequential::new().push("fc", Linear::new(4, 2, &mut rng)), 2)
    }

    #[test]
    fn zero_threads_resolves_to_at_least_one() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn results_preserve_item_order_across_thread_counts() {
        let net = tiny();
        let items: Vec<usize> = (0..17).collect();
        let serial = replica_map(&net, 1, &items, |_, &i| i * i);
        for threads in [2, 3, 8, 32] {
            let parallel = replica_map(&net, threads, &items, |_, &i| i * i);
            assert_eq!(parallel, serial, "{threads} threads");
        }
    }

    #[test]
    fn workers_own_independent_replicas() {
        let net = tiny();
        let items: Vec<usize> = (0..8).collect();
        // Each item perturbs its replica and reports the weight it read
        // back; with per-item restore the reads are identical everywhere.
        let originals = net.snapshot_weights();
        let reads = replica_map(&net, 4, &items, |replica, _| {
            let delta = clado_tensor::Tensor::full(originals[0].shape(), 1.0);
            replica.perturb_weight(0, &delta);
            let seen = replica.weight(0).data()[0];
            replica.set_weight(0, &originals[0]);
            seen
        });
        let expect = originals[0].data()[0] + 1.0;
        for (i, &r) in reads.iter().enumerate() {
            assert_eq!(r, expect, "item {i} saw a dirty replica");
        }
    }

    #[test]
    fn empty_items_yield_empty_results() {
        let net = tiny();
        let items: Vec<usize> = Vec::new();
        let out = replica_map(&net, 4, &items, |_, &i| i);
        assert!(out.is_empty());
    }
}
