//! Scoped-thread fan-out over replicated networks.
//!
//! The sensitivity measurement, Hutchinson probing, and random search all
//! reduce to the same shape: a list of independent work items, each needing
//! a network it can perturb freely. [`replica_map`] shards the items
//! round-robin across worker threads, hands every worker its own clone of
//! the template network, and merges the per-item results back in item
//! order. Because each item's computation depends only on the item and on
//! shared read-only state — workers restore their replica to the template's
//! exact weights between items — the output is bitwise identical regardless
//! of thread count.

use clado_nn::Network;
use clado_telemetry::panic_message;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Resolves a requested worker count: `0` means "all available cores".
pub(crate) fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Maps `f` over `items` on up to `threads` worker threads, each owning a
/// private clone of `template`. Results are returned in item order.
///
/// `f` must leave the replica's weights exactly as it found them (restore
/// from a shared snapshot, not by subtracting deltas), so that an item's
/// result does not depend on which items ran before it on the same
/// replica. Under that contract the result is independent of `threads`.
///
/// # Panics
///
/// Propagates panics from `f` from the calling thread, prefixed with the
/// index of the item whose closure panicked (so a failing probe can be
/// reproduced directly). When several workers panic, the lowest item
/// index is reported.
pub(crate) fn replica_map<T, R, F>(template: &Network, threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&mut Network, &T) -> R + Sync,
{
    let workers = threads.clamp(1, items.len().max(1));
    if workers <= 1 {
        let mut replica = template.clone();
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                catch_unwind(AssertUnwindSafe(|| f(&mut replica, item)))
                    .unwrap_or_else(|payload| item_panic(i, &*payload))
            })
            .collect();
    }
    let mut replicas: Vec<Network> = (0..workers).map(|_| template.clone()).collect();
    let mut results: Vec<Option<R>> = items.iter().map(|_| None).collect();
    let mut failures: Vec<(usize, String)> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for (w, replica) in replicas.iter_mut().enumerate() {
            let f = &f;
            handles.push(s.spawn(move || {
                let mut out = Vec::new();
                let mut i = w;
                while i < items.len() {
                    // Catch per item so the panic can be re-raised on the
                    // main thread tagged with the offending item's index.
                    match catch_unwind(AssertUnwindSafe(|| f(&mut *replica, &items[i]))) {
                        Ok(r) => out.push((i, r)),
                        Err(payload) => return Err((i, panic_message(&*payload))),
                    }
                    i += workers;
                }
                Ok(out)
            }));
        }
        for handle in handles {
            match handle.join().expect("worker thread result intact") {
                Ok(rows) => {
                    for (i, r) in rows {
                        results[i] = Some(r);
                    }
                }
                Err(failure) => failures.push(failure),
            }
        }
    });
    if let Some((i, msg)) = failures.into_iter().min_by_key(|&(i, _)| i) {
        panic!("measurement worker panicked on item {i}: {msg}");
    }
    results
        .into_iter()
        .map(|r| r.expect("every item is processed exactly once"))
        .collect()
}

fn item_panic(i: usize, payload: &(dyn std::any::Any + Send)) -> ! {
    panic!(
        "measurement worker panicked on item {i}: {}",
        panic_message(payload)
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_nn::{Linear, Network, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> Network {
        let mut rng = StdRng::seed_from_u64(7);
        Network::new(Sequential::new().push("fc", Linear::new(4, 2, &mut rng)), 2)
    }

    #[test]
    fn zero_threads_resolves_to_at_least_one() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn results_preserve_item_order_across_thread_counts() {
        let net = tiny();
        let items: Vec<usize> = (0..17).collect();
        let serial = replica_map(&net, 1, &items, |_, &i| i * i);
        for threads in [2, 3, 8, 32] {
            let parallel = replica_map(&net, threads, &items, |_, &i| i * i);
            assert_eq!(parallel, serial, "{threads} threads");
        }
    }

    #[test]
    fn workers_own_independent_replicas() {
        let net = tiny();
        let items: Vec<usize> = (0..8).collect();
        // Each item perturbs its replica and reports the weight it read
        // back; with per-item restore the reads are identical everywhere.
        let originals = net.snapshot_weights();
        let reads = replica_map(&net, 4, &items, |replica, _| {
            let delta = clado_tensor::Tensor::full(originals[0].shape(), 1.0);
            replica.perturb_weight(0, &delta);
            let seen = replica.weight(0).data()[0];
            replica.set_weight(0, &originals[0]);
            seen
        });
        let expect = originals[0].data()[0] + 1.0;
        for (i, &r) in reads.iter().enumerate() {
            assert_eq!(r, expect, "item {i} saw a dirty replica");
        }
    }

    #[test]
    fn worker_panics_are_tagged_with_the_item_index() {
        let net = tiny();
        let items: Vec<usize> = (0..9).collect();
        for threads in [1, 3] {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                replica_map(&net, threads, &items, |_, &i| {
                    assert_ne!(i, 5, "bad probe");
                    i
                })
            }));
            let msg = panic_message(&*caught.expect_err("item 5 must panic"));
            assert!(msg.contains("item 5"), "{threads} threads: {msg}");
            assert!(msg.contains("bad probe"), "{threads} threads: {msg}");
        }
    }

    #[test]
    fn empty_items_yield_empty_results() {
        let net = tiny();
        let items: Vec<usize> = Vec::new();
        let out = replica_map(&net, 4, &items, |_, &i| i);
        assert!(out.is_empty());
    }
}
