//! Bit-width assignment: from a sensitivity matrix to the IQP of eq. (11)
//! and back to per-layer bit-widths.

use crate::sensitivity::SensitivityMatrix;
use clado_quant::{BitWidth, BitWidthSet, LayerSizes};
use clado_solver::{IqpError, IqpProblem, Solution, SolverConfig, SymMatrix};
use clado_telemetry::Telemetry;
use std::fmt;

/// Strict-mode ceiling on `clipped_mass / total_mass` of the PSD
/// projection: beyond this, most of the measured spectrum was projection
/// artefact and the objective is rejected as
/// [`IqpError::DegenerateObjective`].
const MAX_CLIP_MASS_RATIO: f64 = 0.5;

/// Which sensitivity structure to optimize over — the paper's method and
/// its two structural ablations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CladoVariant {
    /// Full CLADO: all pairwise cross-layer terms.
    #[default]
    Full,
    /// CLADO\*: cross-layer terms removed (Table 1 ablation).
    DiagonalOnly,
    /// BRECQ-style: intra-block interactions only (Fig. 6 ablation);
    /// carries the per-layer block ids.
    BlockOnly(Vec<usize>),
}

/// Options for [`assign_bits`].
#[derive(Debug, Clone, Default)]
pub struct AssignOptions {
    /// Structural variant.
    pub variant: CladoVariant,
    /// Apply the PSD approximation to Ĝ before solving (the paper's
    /// default; disabling reproduces the Fig. 7 ablation).
    pub skip_psd: bool,
    /// IQP solver configuration. Set its `telemetry` field too to record
    /// solver node/prune counters.
    pub solver: SolverConfig,
    /// Strict Ω hardening (`--solver-strict`): reject non-finite entries
    /// and spectra the PSD projection would mostly discard, instead of the
    /// default repair-and-continue (zero unusable cross terms).
    pub strict: bool,
    /// Telemetry sink for the assignment phase (PSD projection span and
    /// eigenvalue-clip counters).
    pub telemetry: Telemetry,
}

/// A solved per-layer bit-width assignment.
#[derive(Debug, Clone)]
pub struct BitAssignment {
    /// Chosen bit-width per layer, in layer order.
    pub bits: Vec<BitWidth>,
    /// Predicted loss increase `αᵀĜα` under the (possibly projected)
    /// objective matrix used by the solver.
    pub predicted_delta_loss: f64,
    /// Total weight cost in bits.
    pub cost_bits: u64,
    /// Raw solver solution (node counts, optimality proof).
    pub solution: Solution,
}

impl BitAssignment {
    /// Mean bits per weight of the assignment.
    pub fn avg_bits(&self, sizes: &LayerSizes) -> f64 {
        clado_quant::avg_bits(self.cost_bits, sizes.total_params())
    }

    /// Compact bit map like `[8 4 4 2 …]`.
    pub fn bitmap(&self) -> String {
        let parts: Vec<String> = self.bits.iter().map(|b| b.bits().to_string()).collect();
        format!("[{}]", parts.join(" "))
    }
}

impl fmt::Display for BitAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (cost {} bits, predicted ΔL {:.4})",
            self.bitmap(),
            self.cost_bits,
            self.predicted_delta_loss
        )
    }
}

/// Builds the eq. (11) IQP from a sensitivity matrix and solves it.
///
/// `budget_bits` is `C_target` in bits (`Σ |w⁽ⁱ⁾| · b⁽ⁱ⁾ ≤ C_target`).
///
/// # Errors
///
/// Returns [`IqpError`] if the instance is inconsistent or infeasible.
pub fn assign_bits(
    sens: &SensitivityMatrix,
    sizes: &LayerSizes,
    budget_bits: u64,
    options: &AssignOptions,
) -> Result<BitAssignment, IqpError> {
    let _span = options.telemetry.span("assign");
    let matrix = match &options.variant {
        CladoVariant::Full => sens.matrix().clone(),
        CladoVariant::DiagonalOnly => sens.diagonal_only(),
        CladoVariant::BlockOnly(blocks) => sens.block_masked(blocks),
    };
    // Harden before the eigendecomposition: a NaN that slipped past the
    // measurement-time quarantine would otherwise corrupt every eigenvalue
    // sweep. Lenient mode zeroes unusable cross terms (rejecting only a
    // non-finite diagonal); strict mode rejects every defect typed.
    let (matrix, report) = clado_solver::harden(&matrix, options.strict)?;
    options.telemetry.add(
        "assign.omega.repaired_non_finite",
        report.repaired_non_finite as u64,
    );
    let matrix = if options.skip_psd {
        matrix
    } else {
        let _s = options.telemetry.span("assign.psd_project");
        let proj = matrix.psd_project_stats();
        options
            .telemetry
            .add("assign.psd_clipped_eigenvalues", proj.clipped as u64);
        options
            .telemetry
            .add("assign.eigen_sweeps", proj.sweeps as u64);
        options
            .telemetry
            .set_gauge("assign.psd_clip_mass", proj.clipped_mass);
        let clip_mass_ratio = if proj.total_mass > 0.0 {
            proj.clipped_mass / proj.total_mass
        } else {
            0.0
        };
        options
            .telemetry
            .set_gauge("assign.psd_clip_mass_ratio", clip_mass_ratio);
        options
            .telemetry
            .set_gauge("assign.psd_min_eigenvalue", proj.min_eigenvalue);
        options
            .telemetry
            .set_gauge("assign.psd_condition", proj.condition);
        if options.strict && clip_mass_ratio > MAX_CLIP_MASS_RATIO {
            return Err(IqpError::DegenerateObjective { clip_mass_ratio });
        }
        proj.matrix
    };
    solve_with_matrix(&matrix, sens.bits(), sizes, budget_bits, &options.solver)
}

/// Solves eq. (11) for an explicit objective matrix (used by the separable
/// baselines, which build their own diagonal Ĝ).
///
/// # Errors
///
/// Returns [`IqpError`] if the instance is inconsistent or infeasible.
pub fn solve_with_matrix(
    matrix: &SymMatrix,
    bits: &BitWidthSet,
    sizes: &LayerSizes,
    budget_bits: u64,
    solver: &SolverConfig,
) -> Result<BitAssignment, IqpError> {
    let _span = solver.telemetry.span("assign.solve");
    let num_layers = sizes.num_layers();
    let k = bits.len();
    let group_sizes = vec![k; num_layers];
    let mut costs = Vec::with_capacity(num_layers * k);
    for i in 0..num_layers {
        for b in bits.iter() {
            costs.push(sizes.params(i) as u64 * b.bits() as u64);
        }
    }
    let problem = IqpProblem::new(matrix.clone(), &group_sizes, costs, budget_bits)?;
    // `SolveMethod::Auto` already routes separable (diagonal) objectives —
    // the HAWQ/MPQCO/CLADO* path — to the exact multiple-choice-knapsack
    // DP, and everything else to the anytime degradation ladder.
    let solution = problem.solve(solver)?;
    let chosen: Vec<BitWidth> = solution.choices.iter().map(|&m| bits.get(m)).collect();
    Ok(BitAssignment {
        cost_bits: solution.cost,
        predicted_delta_loss: solution.objective,
        bits: chosen,
        solution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::eval_loss;
    use crate::sensitivity::{measure_sensitivities, SensitivityOptions};
    use clado_models::{SynthVision, SynthVisionConfig};
    use clado_nn::{Conv2d, GlobalAvgPool, Linear, Network, Sequential};
    use clado_tensor::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Network, SynthVision) {
        let mut rng = StdRng::seed_from_u64(21);
        let net = Network::new(
            Sequential::new()
                .push(
                    "conv1",
                    Conv2d::new(Conv2dSpec::new(3, 6, 3, 1, 1), true, &mut rng),
                )
                .push("relu1", clado_nn::Activation::new(clado_nn::ActKind::Relu))
                .push(
                    "conv2",
                    Conv2d::new(Conv2dSpec::new(6, 8, 3, 2, 1), true, &mut rng),
                )
                .push("relu2", clado_nn::Activation::new(clado_nn::ActKind::Relu))
                .push("pool", GlobalAvgPool::new())
                .push("fc", Linear::new(8, 4, &mut rng)),
            4,
        );
        let data = SynthVision::generate(SynthVisionConfig {
            classes: 4,
            img: 8,
            train: 64,
            val: 32,
            seed: 31,
            noise: 0.2,
            label_noise: 0.0,
        });
        (net, data)
    }

    #[test]
    fn assignment_respects_budget_and_prefers_more_bits_with_slack() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..24).collect::<Vec<_>>());
        let bits = BitWidthSet::standard();
        let sm = measure_sensitivities(&mut net, &set, &bits, &SensitivityOptions::default())
            .expect("measure");
        let sizes = LayerSizes::new(net.layer_param_counts());

        // Generous budget: the solution must fit and be at least as good as
        // the all-8-bit reference under the solver's own objective. (It need
        // not BE all-8-bit: measured sensitivities can be slightly negative,
        // so quantizing a robust layer may genuinely reduce the objective.)
        let budget = sizes.uniform_bits(BitWidth::of(8));
        let a = assign_bits(&sm, &sizes, budget, &AssignOptions::default()).unwrap();
        assert!(a.cost_bits <= budget);
        let all8 = vec![bits.len() - 1; sizes.num_layers()];
        let psd = sm.psd_projected();
        let reference =
            solve_with_matrix(&psd, &bits, &sizes, budget, &Default::default()).unwrap();
        let mut alpha = vec![0.0f64; psd.dim()];
        for (i, &m) in all8.iter().enumerate() {
            alpha[i * bits.len() + m] = 1.0;
        }
        let all8_obj = psd.quadratic_form(&alpha);
        assert!(
            reference.predicted_delta_loss <= all8_obj + 1e-9,
            "solver objective {} worse than all-8 {all8_obj}",
            reference.predicted_delta_loss
        );

        // Tight budget: must fit.
        let tight = sizes.budget_from_avg_bits(3.0);
        let a = assign_bits(&sm, &sizes, tight, &AssignOptions::default()).unwrap();
        assert!(a.cost_bits <= tight);
        assert!(a.bits.iter().any(|b| b.bits() < 8));
    }

    #[test]
    fn predicted_delta_loss_tracks_measured_loss_increase() {
        // The IQP objective (pre-PSD, full matrix) on an assignment should
        // approximate 2·(L(quantized) − L(base)) reasonably for moderate
        // perturbations.
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..32).collect::<Vec<_>>());
        let bits = BitWidthSet::standard();
        let opts = SensitivityOptions::default();
        let sm = measure_sensitivities(&mut net, &set, &bits, &opts).expect("measure");
        let sizes = LayerSizes::new(net.layer_param_counts());
        let budget = sizes.budget_from_avg_bits(5.0);
        let a = assign_bits(
            &sm,
            &sizes,
            budget,
            &AssignOptions {
                skip_psd: true,
                ..Default::default()
            },
        )
        .unwrap();

        // Measure the true loss increase at that assignment.
        let base = eval_loss(&mut net, &set, 32);
        let snapshot = crate::probe::apply_quantization(&mut net, &a.bits, opts.scheme);
        let l = eval_loss(&mut net, &set, 32);
        net.restore_weights(&snapshot);
        let measured = 2.0 * (l - base);
        // Same sign and same order of magnitude.
        assert!(
            (a.predicted_delta_loss - measured).abs() < 0.5 * measured.abs().max(0.05),
            "predicted {} vs measured {measured}",
            a.predicted_delta_loss
        );
    }

    #[test]
    fn diagonal_variant_ignores_cross_terms() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let bits = BitWidthSet::standard();
        let sm = measure_sensitivities(&mut net, &set, &bits, &SensitivityOptions::default())
            .expect("measure");
        let sizes = LayerSizes::new(net.layer_param_counts());
        let budget = sizes.budget_from_avg_bits(4.0);
        let full = assign_bits(&sm, &sizes, budget, &AssignOptions::default()).unwrap();
        let diag = assign_bits(
            &sm,
            &sizes,
            budget,
            &AssignOptions {
                variant: CladoVariant::DiagonalOnly,
                ..Default::default()
            },
        )
        .unwrap();
        // Both feasible; objectives may differ.
        assert!(full.cost_bits <= budget && diag.cost_bits <= budget);
    }

    #[test]
    fn infeasible_budget_errors() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..8).collect::<Vec<_>>());
        let bits = BitWidthSet::standard();
        let sm = measure_sensitivities(&mut net, &set, &bits, &SensitivityOptions::default())
            .expect("measure");
        let sizes = LayerSizes::new(net.layer_param_counts());
        let impossible = sizes.budget_from_avg_bits(1.0); // below 2-bit minimum
        let err = assign_bits(&sm, &sizes, impossible, &AssignOptions::default()).unwrap_err();
        assert!(matches!(err, IqpError::Infeasible { .. }));
    }

    #[test]
    fn poisoned_cross_term_is_repaired_leniently_and_rejected_strictly() {
        let bits = BitWidthSet::standard();
        let n = 2 * bits.len();
        let mut g = SymMatrix::zeros(n);
        for i in 0..n {
            g.set(i, i, 0.1);
        }
        g.set(1, 4, f64::NAN);
        let sm =
            crate::sensitivity::SensitivityMatrix::from_parts(g, 2, bits, 0.5, Default::default());
        let sizes = LayerSizes::new(vec![10, 10]);

        // Default (lenient) hardening zeroes the unusable cross term and
        // records the repair, so assignment still succeeds.
        let telemetry = Telemetry::new();
        let a = assign_bits(
            &sm,
            &sizes,
            u64::MAX,
            &AssignOptions {
                telemetry: telemetry.clone(),
                ..Default::default()
            },
        )
        .expect("lenient hardening repairs the poisoned cross term");
        assert!(a.predicted_delta_loss.is_finite());
        assert_eq!(
            telemetry.counter_value("assign.omega.repaired_non_finite"),
            2, // both mirrored triangles of the SymMatrix entry
        );

        // Strict hardening rejects it typed, before the eigensolver.
        let err = assign_bits(
            &sm,
            &sizes,
            u64::MAX,
            &AssignOptions {
                strict: true,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, IqpError::NonFiniteObjective { row: 1, col: 4, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn poisoned_diagonal_is_rejected_in_both_modes() {
        let bits = BitWidthSet::standard();
        let n = 2 * bits.len();
        let mut g = SymMatrix::zeros(n);
        for i in 0..n {
            g.set(i, i, 0.1);
        }
        g.set(3, 3, f64::INFINITY);
        let sm =
            crate::sensitivity::SensitivityMatrix::from_parts(g, 2, bits, 0.5, Default::default());
        let sizes = LayerSizes::new(vec![10, 10]);
        for strict in [false, true] {
            let err = assign_bits(
                &sm,
                &sizes,
                u64::MAX,
                &AssignOptions {
                    strict,
                    ..Default::default()
                },
            )
            .unwrap_err();
            assert!(
                matches!(err, IqpError::NonFiniteObjective { row: 3, col: 3, .. }),
                "strict={strict}: got {err:?}"
            );
        }
    }

    #[test]
    fn psd_projection_records_clip_mass_gauge() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let bits = BitWidthSet::standard();
        let sm = measure_sensitivities(&mut net, &set, &bits, &SensitivityOptions::default())
            .expect("measure");
        let sizes = LayerSizes::new(net.layer_param_counts());
        let telemetry = Telemetry::new();
        let budget = sizes.budget_from_avg_bits(4.0);
        assign_bits(
            &sm,
            &sizes,
            budget,
            &AssignOptions {
                telemetry: telemetry.clone(),
                ..Default::default()
            },
        )
        .unwrap();
        let mass = telemetry
            .gauge_value("assign.psd_clip_mass")
            .expect("gauge recorded");
        assert!(mass >= 0.0 && mass.is_finite(), "clip mass {mass}");
    }

    #[test]
    fn bitmap_format() {
        let a = BitAssignment {
            bits: vec![BitWidth::of(8), BitWidth::of(2)],
            predicted_delta_loss: 0.0,
            cost_bits: 10,
            solution: Solution {
                choices: vec![2, 0],
                objective: 0.0,
                cost: 10,
                proved_optimal: true,
                nodes_explored: 0,
                gap: 0.0,
                method_used: clado_solver::MethodUsed::DynamicProgramming,
                termination: clado_solver::Termination::Proved,
                downgrades: vec![],
            },
        };
        assert_eq!(a.bitmap(), "[8 2]");
    }
}
