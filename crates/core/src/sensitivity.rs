//! Algorithm 1: backpropagation-free measurement of the sensitivity matrix Ĝ.
//!
//! Layer-specific entries use eq. (12): `Ω_ii(m) ≈ 2(L(w+Δw_m⁽ⁱ⁾) − L(w))`.
//! Cross-layer entries use eq. (13):
//! `Ω_ij(m,n) ≈ L(w+Δw_m⁽ⁱ⁾+Δw_n⁽ʲ⁾) + L(w) − L(w+Δw_m⁽ⁱ⁾) − L(w+Δw_n⁽ʲ⁾)`.
//!
//! (The paper's Algorithm 1 pseudocode subtracts `0.5·Ĝ_diag` terms, which
//! expands to an extra `+2L(w)`; we implement eq. (13), the mathematically
//! consistent form the derivation produces.)
//!
//! The paper budgets `½·|𝔹|I(|𝔹|I+1)` forward evaluations. This
//! implementation is slightly cheaper: same-layer pairs with different
//! bit-widths `(i,m)–(i,n)` are never co-active under the one-hot
//! constraint, so their `I·C(|𝔹|,2)` measurements are skipped —
//! `1 + |𝔹|I + ½|𝔹|²I(I−1)` evaluations in total.
//!
//! # Fault tolerance
//!
//! Each probe is an independent, idempotent work unit identified by a
//! [`ProbeId`]. With [`SensitivityOptions::checkpoint_dir`] set, every
//! completed probe is journaled (atomically-committed CLSJ shards, one per
//! work item; see [`crate::journal`]); a later run with
//! [`SensitivityOptions::resume`] reloads the journal, skips completed
//! probes, and — because losses are stored bit-exactly — produces the
//! bitwise-identical matrix an uninterrupted run would have. Probe panics
//! are caught per item and retried up to [`SensitivityOptions::retries`]
//! times; non-finite losses are retried once, then quarantined (the
//! affected cross-term degrades to the diagonal-only estimate, i.e. the
//! Ω entry is zeroed) instead of poisoning the IQP objective.

use crate::engine::{replica_map_checked, resolve_threads};
use crate::errors::MeasureError;
use crate::journal::{self, JournalError, JournalWriter, ProbeId, ProbeRecord};
use crate::probe::{
    advance_prefix_cache, build_prefix_cache, eval_loss, eval_loss_from, quant_error_table,
    PrefixCache, PROBE_BATCH,
};
use clado_models::DataSplit;
use clado_nn::Network;
use clado_quant::{BitWidthSet, QuantScheme};
use clado_solver::SymMatrix;
use clado_telemetry::{faultpoint, with_panic_context, Counter, Hist, Telemetry};
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Options controlling sensitivity measurement.
#[derive(Debug, Clone)]
pub struct SensitivityOptions {
    /// Quantization scheme used to produce the Δw perturbations.
    pub scheme: QuantScheme,
    /// Probe batch size.
    pub batch_size: usize,
    /// Print coarse progress to stderr.
    pub verbose: bool,
    /// Worker threads for the measurement fan-out; `0` means all
    /// available cores. The result is bitwise identical for any value.
    pub threads: usize,
    /// Reuse cached prefix activations for probes sharing an outer
    /// perturbation (exact; disable only for measurement A/B testing).
    pub use_prefix_cache: bool,
    /// Batch pairwise probes: once the outer perturbation `(i, m)` is
    /// applied, advance the prefix cache past layer `i`'s stage so every
    /// inner probe at layer `j` re-runs only the suffix from `j`'s own
    /// stage instead of from `i`'s (exact — see
    /// [`crate::advance_prefix_cache`]; requires
    /// [`SensitivityOptions::use_prefix_cache`]).
    pub batched_probes: bool,
    /// Telemetry sink for spans, counters, and progress. The default
    /// (disabled) handle records nothing; measured values are bitwise
    /// identical either way (test-enforced).
    pub telemetry: Telemetry,
    /// Directory for the crash-safe probe journal. `None` (the default)
    /// disables checkpointing entirely.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from an existing journal in
    /// [`SensitivityOptions::checkpoint_dir`], skipping completed probes.
    /// Without this flag a non-empty checkpoint directory is an error
    /// (so two runs cannot silently interleave journals).
    pub resume: bool,
    /// Per-item retry budget for probe panics (a panicking probe is
    /// retried on a restored replica this many times before the sweep
    /// fails with [`MeasureError::WorkerPanic`]).
    pub retries: usize,
}

impl Default for SensitivityOptions {
    fn default() -> Self {
        Self {
            scheme: QuantScheme::PerTensorSymmetric,
            batch_size: PROBE_BATCH,
            verbose: false,
            threads: 0,
            use_prefix_cache: true,
            batched_probes: true,
            telemetry: Telemetry::disabled(),
            checkpoint_dir: None,
            resume: false,
            retries: 1,
        }
    }
}

/// How an Ω matrix was produced: the exact full sweep (the default) or
/// one of the `clado-estim` sub-quadratic estimators.
///
/// Stored in the CLSM v4 stats block and folded into the dist/serve wire
/// formats, so the tag values are part of those formats; do not renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OmegaProvenance {
    /// Estimator tag (see the `TAG_*` constants); `0` means the exact
    /// full sweep.
    pub estimator: u8,
    /// Probe budget the estimator was given (`0` for exact).
    pub probe_budget: u64,
    /// Estimator RNG seed (`0` for exact).
    pub seed: u64,
}

impl OmegaProvenance {
    /// Tag of the exact full sweep.
    pub const TAG_EXACT: u8 = 0;
    /// Tag of the sketched low-rank recovery estimator.
    pub const TAG_SKETCHED: u8 = 1;
    /// Tag of the adaptive-sampling estimator.
    pub const TAG_ADAPTIVE: u8 = 2;
    /// Tag of the block-diagonal + top-k cross-term estimator.
    pub const TAG_BLOCK_TOPK: u8 = 3;
    /// Tag of the Hutchinson diagonal estimator.
    pub const TAG_HUTCHINSON: u8 = 4;

    /// Provenance of an exact full sweep.
    pub fn exact() -> Self {
        Self::default()
    }

    /// Provenance of an estimated Ω.
    pub fn estimated(estimator: u8, probe_budget: u64, seed: u64) -> Self {
        Self {
            estimator,
            probe_budget,
            seed,
        }
    }

    /// Whether this Ω came from the exact full sweep.
    pub fn is_exact(&self) -> bool {
        self.estimator == Self::TAG_EXACT
    }

    /// Human-readable estimator name for the tag (the CLI spelling).
    pub fn estimator_name(&self) -> &'static str {
        match self.estimator {
            Self::TAG_EXACT => "exact",
            Self::TAG_SKETCHED => "sketched",
            Self::TAG_ADAPTIVE => "adaptive",
            Self::TAG_BLOCK_TOPK => "blocktopk",
            Self::TAG_HUTCHINSON => "hutchinson",
            _ => "unknown",
        }
    }
}

impl fmt::Display for OmegaProvenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_exact() {
            write!(f, "exact")
        } else {
            write!(
                f,
                "{} (budget {}, seed {})",
                self.estimator_name(),
                self.probe_budget,
                self.seed
            )
        }
    }
}

/// Measurement statistics (the paper's runtime discussion, §5.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct SensitivityStats {
    /// Number of network evaluations on the sensitivity set (full or
    /// suffix-only; always `prefix_cache_hits + full_evals`).
    pub evaluations: usize,
    /// Wall-clock measurement time in seconds.
    pub seconds: f64,
    /// Worker threads the measurement actually ran on.
    pub threads_used: usize,
    /// Prefix-activation caches built (one prefix forward per build).
    pub prefix_cache_builds: usize,
    /// Evaluations that ran only the suffix on cached activations.
    pub prefix_cache_hits: usize,
    /// Evaluations that ran the full forward pass.
    pub full_evals: usize,
    /// Probes restored from the checkpoint journal instead of being
    /// re-evaluated.
    pub resumed: usize,
    /// Probe retries: panicking probes re-run on a restored replica plus
    /// non-finite losses re-evaluated once.
    pub retried: usize,
    /// Probes whose loss stayed non-finite after retry; their Ω entries
    /// degrade to zero instead of poisoning the IQP objective.
    pub quarantined: usize,
    /// How this Ω was produced (exact sweep or estimator name/budget/seed).
    pub provenance: OmegaProvenance,
}

/// The measured sensitivity matrix Ĝ plus its provenance.
#[derive(Debug, Clone)]
pub struct SensitivityMatrix {
    g: SymMatrix,
    num_layers: usize,
    bits: BitWidthSet,
    /// Loss of the unperturbed model on the sensitivity set, `L(w)`.
    pub base_loss: f64,
    /// Measurement statistics.
    pub stats: SensitivityStats,
}

impl SensitivityMatrix {
    /// Reassembles a matrix from its serialized parts (see
    /// [`crate::load_sensitivities`]).
    ///
    /// # Panics
    ///
    /// Panics if `g`'s dimension is not `num_layers · |bits|`.
    pub fn from_parts(
        g: SymMatrix,
        num_layers: usize,
        bits: BitWidthSet,
        base_loss: f64,
        stats: SensitivityStats,
    ) -> Self {
        assert_eq!(
            g.dim(),
            num_layers * bits.len(),
            "matrix dimension mismatch"
        );
        Self {
            g,
            num_layers,
            bits,
            base_loss,
            stats,
        }
    }

    /// The raw (pre-PSD) matrix.
    pub fn matrix(&self) -> &SymMatrix {
        &self.g
    }

    /// Number of layers `I`.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// The bit-width candidate set 𝔹.
    pub fn bits(&self) -> &BitWidthSet {
        &self.bits
    }

    /// Flat variable index of `(layer, bit_index)`: `|𝔹|·i + m`.
    pub fn var(&self, layer: usize, bit_index: usize) -> usize {
        layer * self.bits.len() + bit_index
    }

    /// The layer-specific sensitivity `Ω_ii(m, m)`.
    pub fn layer_sensitivity(&self, layer: usize, bit_index: usize) -> f64 {
        let v = self.var(layer, bit_index);
        self.g.get(v, v)
    }

    /// The cross-layer sensitivity `Ω_ij(m, n)`.
    pub fn cross_sensitivity(
        &self,
        layer_i: usize,
        bit_m: usize,
        layer_j: usize,
        bit_n: usize,
    ) -> f64 {
        self.g
            .get(self.var(layer_i, bit_m), self.var(layer_j, bit_n))
    }

    /// PSD projection of Ĝ (the paper's preprocessing before the IQP).
    pub fn psd_projected(&self) -> SymMatrix {
        self.g.psd_project()
    }

    /// A copy of Ĝ with all cross-layer blocks zeroed — the CLADO\*
    /// ablation (Table 1).
    pub fn diagonal_only(&self) -> SymMatrix {
        let mut out = SymMatrix::zeros(self.g.dim());
        let k = self.bits.len();
        for i in 0..self.num_layers {
            for m in 0..k {
                for n in 0..k {
                    let (u, v) = (i * k + m, i * k + n);
                    out.set(u, v, self.g.get(u, v));
                }
            }
        }
        out
    }

    /// A copy of Ĝ keeping intra-block interactions only — the BRECQ-style
    /// ablation (Fig. 6). `blocks[i]` is the block id of layer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` length differs from the layer count.
    pub fn block_masked(&self, blocks: &[usize]) -> SymMatrix {
        assert_eq!(blocks.len(), self.num_layers, "block id per layer required");
        let mut out = SymMatrix::zeros(self.g.dim());
        let k = self.bits.len();
        for i in 0..self.num_layers {
            for j in 0..self.num_layers {
                if blocks[i] != blocks[j] && i != j {
                    continue;
                }
                for m in 0..k {
                    for n in 0..k {
                        let (u, v) = (i * k + m, j * k + n);
                        out.set(u, v, self.g.get(u, v));
                    }
                }
            }
        }
        out
    }
}

/// One probe's outcome as it leaves a worker: the journal record plus
/// whether it was restored from the journal rather than evaluated.
#[derive(Clone, Copy)]
struct ProbeOut {
    rec: ProbeRecord,
    resumed: bool,
}

/// Span names for one measurement pass (diagonal or pairwise).
struct PassSpans {
    build: &'static str,
    suffix: &'static str,
    full: &'static str,
}

const DIAG_SPANS: PassSpans = PassSpans {
    build: "measure.diagonal.prefix_build",
    suffix: "measure.diagonal.suffix_eval",
    full: "measure.diagonal.full_eval",
};
const PAIR_SPANS: PassSpans = PassSpans {
    build: "measure.pairwise.prefix_build",
    suffix: "measure.pairwise.suffix_eval",
    full: "measure.pairwise.full_eval",
};
/// Span covering one batched-probe cache advance (pairwise pass only).
const PAIR_ADVANCE_SPAN: &str = "measure.pairwise.prefix_advance";

/// Shared probe accounting: telemetry counter handles (fetched once,
/// bumped live from worker threads) plus local atomics that stay
/// authoritative for per-run [`SensitivityStats`] even on a reused or
/// disabled registry.
struct ProbeCounters {
    evals: Counter,
    full: Counter,
    hits: Counter,
    builds: Counter,
    advances: Counter,
    resumed: Counter,
    retries: Counter,
    quarantined: Counter,
    /// Latency histogram over every probe forward pass (suffix or full).
    h_eval: Hist,
    /// Latency histogram over prefix-cache builds.
    h_build: Hist,
    l_full: AtomicU64,
    l_hits: AtomicU64,
    l_builds: AtomicU64,
    l_resumed: AtomicU64,
    l_retried: AtomicU64,
    l_quarantined: AtomicU64,
}

impl ProbeCounters {
    fn new(telemetry: &Telemetry) -> Self {
        Self {
            evals: telemetry.counter("measure.evaluations"),
            full: telemetry.counter("measure.full_evals"),
            hits: telemetry.counter("measure.prefix_cache_hits"),
            builds: telemetry.counter("measure.prefix_cache_builds"),
            advances: telemetry.counter("measure.prefix_cache_advances"),
            resumed: telemetry.counter("measure.resumed"),
            retries: telemetry.counter("measure.retries"),
            quarantined: telemetry.counter("measure.quarantined"),
            h_eval: telemetry.histogram("probe.eval"),
            h_build: telemetry.histogram("probe.prefix_build"),
            l_full: AtomicU64::new(0),
            l_hits: AtomicU64::new(0),
            l_builds: AtomicU64::new(0),
            l_resumed: AtomicU64::new(0),
            l_retried: AtomicU64::new(0),
            l_quarantined: AtomicU64::new(0),
        }
    }

    fn count_resumed(&self) {
        self.resumed.incr();
        self.l_resumed.fetch_add(1, Ordering::Relaxed);
    }

    fn count_retry(&self) {
        self.retries.incr();
        self.l_retried.fetch_add(1, Ordering::Relaxed);
    }
}

/// Runs one forward evaluation for a probe, building the prefix cache
/// lazily on first use. The `measure.probe_panic` fail point simulates a
/// probe crash (exercised by the engine's retry path); the
/// `measure.probe_nan` fail point poisons the returned loss.
#[allow(clippy::too_many_arguments)]
fn probe_loss(
    net: &mut Network,
    cache: &mut Option<PrefixCache>,
    cache_stage: Option<usize>,
    sens_set: &DataSplit,
    batch_size: usize,
    telemetry: &Telemetry,
    spans: &PassSpans,
    c: &ProbeCounters,
) -> f64 {
    faultpoint!("measure.probe_panic", {
        panic!("fault injected: probe panic")
    });
    c.evals.incr();
    let mut loss = match cache_stage {
        Some(stage) => {
            if cache.is_none() {
                let _s = telemetry.span_timed(spans.build, &c.h_build);
                c.builds.incr();
                c.l_builds.fetch_add(1, Ordering::Relaxed);
                *cache = Some(build_prefix_cache(net, sens_set, batch_size, stage));
            }
            let _s = telemetry.span_timed(spans.suffix, &c.h_eval);
            c.hits.incr();
            c.l_hits.fetch_add(1, Ordering::Relaxed);
            eval_loss_from(net, cache.as_ref().expect("cache built above"))
        }
        None => {
            let _s = telemetry.span_timed(spans.full, &c.h_eval);
            c.full.incr();
            c.l_full.fetch_add(1, Ordering::Relaxed);
            eval_loss(net, sens_set, batch_size)
        }
    };
    faultpoint!("measure.probe_nan", {
        loss = f64::NAN;
    });
    loss
}

/// Evaluates a probe with the non-finite quarantine policy: a NaN/Inf
/// loss is re-evaluated once; if still non-finite the probe is
/// quarantined (canonical NaN is stored and the Ω assembly degrades the
/// affected entries to zero).
#[allow(clippy::too_many_arguments)]
fn measure_probe(
    net: &mut Network,
    cache: &mut Option<PrefixCache>,
    cache_stage: Option<usize>,
    sens_set: &DataSplit,
    batch_size: usize,
    telemetry: &Telemetry,
    spans: &PassSpans,
    c: &ProbeCounters,
) -> (f64, bool) {
    let mut loss = probe_loss(
        net,
        cache,
        cache_stage,
        sens_set,
        batch_size,
        telemetry,
        spans,
        c,
    );
    if !loss.is_finite() {
        c.count_retry();
        loss = probe_loss(
            net,
            cache,
            cache_stage,
            sens_set,
            batch_size,
            telemetry,
            spans,
            c,
        );
    }
    if loss.is_finite() {
        (loss, false)
    } else {
        c.quarantined.incr();
        c.l_quarantined.fetch_add(1, Ordering::Relaxed);
        (f64::NAN, true)
    }
}

/// Journals one completed work item's fresh probes as a single
/// atomically-committed shard. A no-op without a checkpoint directory.
fn journal_item(writer: &mut Option<JournalWriter>, outs: &[ProbeOut]) -> Result<(), MeasureError> {
    let Some(w) = writer.as_mut() else {
        return Ok(());
    };
    for o in outs {
        if !o.resumed {
            w.append(o.rec);
        }
    }
    w.commit().map_err(MeasureError::from)
}

/// Runs Algorithm 1 on `network` over the sensitivity set.
///
/// All perturbations are applied to per-worker replicas, so the caller's
/// network is never modified. The `(i, m)`-outer / `(j, n)`-inner probe
/// order lets every worker cache the unperturbed prefix activations up to
/// the stage holding layer `i` and re-run only the suffix for each inner
/// probe; evaluation-mode forward is pure, so the cached path is bitwise
/// equal to a full forward. With [`SensitivityOptions::batched_probes`]
/// (the default) the pairwise pass goes further: after applying the outer
/// perturbation `(i, m)` it advances the cache to each inner layer's
/// stage, amortizing one boundary forward over all `|𝔹|` probes of that
/// inner layer — still bitwise exact, because the stage fold composes
/// identically however it is split. Work is sharded per outer layer `i` across
/// [`SensitivityOptions::threads`] workers and merged in deterministic
/// order, so the result is bitwise identical for any thread count — and,
/// because the journal stores losses bit-exactly, identical whether the
/// run completed in one pass or was resumed any number of times.
///
/// # Errors
///
/// - [`MeasureError::Journal`] when the checkpoint journal cannot be
///   read or written, its fingerprint does not match this measurement
///   configuration, or the directory is non-empty without
///   [`SensitivityOptions::resume`]. Probes journaled before the failure
///   stay on disk.
/// - [`MeasureError::WorkerPanic`] when a probe panics beyond the retry
///   budget; [`MeasureError::WorkerLost`] when a worker thread dies
///   without reporting. In both cases every *other* completed item has
///   already been journaled.
/// - [`MeasureError::NonFiniteBaseLoss`] when `L(w)` is NaN/Inf even
///   after a retry (no sensitivity entry can be formed without it).
pub fn measure_sensitivities(
    network: &mut Network,
    sens_set: &DataSplit,
    bits: &BitWidthSet,
    options: &SensitivityOptions,
) -> Result<SensitivityMatrix, MeasureError> {
    let start = Instant::now();
    let telemetry = &options.telemetry;
    let _span_measure = telemetry.span("measure");
    let num_layers = network.quantizable_layers().len();
    let k = bits.len();
    let dim = num_layers * k;
    let mut g = SymMatrix::zeros(dim);
    let deltas = quant_error_table(network, bits, options.scheme);
    let stages: Vec<usize> = (0..num_layers).map(|i| network.stage_of(i)).collect();
    let originals = network.snapshot_weights();
    let threads = resolve_threads(options.threads);
    let use_cache = options.use_prefix_cache;
    let batched = use_cache && options.batched_probes;
    let batch_size = options.batch_size;

    let counters = ProbeCounters::new(telemetry);
    let evals_at_start = counters.evals.value();

    // The journal fingerprint binds a checkpoint directory to one
    // measurement configuration; resuming under different bits, scheme,
    // data, or batch size is a hard error rather than a silent mix.
    // Shared with the distributed coordinator/worker handshake, so a
    // journal written here is resumable there and vice versa.
    let fp = crate::shard::config_fingerprint(
        num_layers,
        bits,
        options.scheme,
        sens_set.len(),
        batch_size,
    );

    let mut resume_records: HashMap<ProbeId, ProbeRecord> = HashMap::new();
    let mut writer: Option<JournalWriter> = None;
    if let Some(dir) = &options.checkpoint_dir {
        let state = journal::load_journal(dir, fp)?;
        if !options.resume && (state.shards + state.corrupt_shards) > 0 {
            return Err(JournalError::NotEmpty { dir: dir.clone() }.into());
        }
        if options.resume {
            if options.verbose {
                eprintln!(
                    "sensitivity: resuming from {} journaled probes ({} shards, {} corrupt)",
                    state.records.len(),
                    state.shards,
                    state.corrupt_shards
                );
            }
            resume_records = state.records;
        }
        writer = Some(JournalWriter::open(dir, fp, state.next_seq)?);
    }
    let resume = &resume_records;

    let base_loss = if let Some(rec) = resume.get(&ProbeId::Base) {
        counters.count_resumed();
        rec.loss
    } else {
        let _s = telemetry.span("measure.base");
        let eval_base = |net: &mut Network| {
            counters.evals.incr();
            counters.full.incr();
            counters.l_full.fetch_add(1, Ordering::Relaxed);
            let mut loss = eval_loss(net, sens_set, batch_size);
            faultpoint!("measure.probe_nan", {
                loss = f64::NAN;
            });
            loss
        };
        let mut loss = eval_base(network);
        if !loss.is_finite() {
            counters.count_retry();
            loss = eval_base(network);
        }
        if !loss.is_finite() {
            return Err(MeasureError::NonFiniteBaseLoss { loss });
        }
        journal_item(
            &mut writer,
            &[ProbeOut {
                rec: ProbeRecord {
                    id: ProbeId::Base,
                    loss,
                    quarantined: false,
                },
                resumed: false,
            }],
        )?;
        loss
    };
    if options.verbose {
        eprintln!("sensitivity: {num_layers} layers × {k} bit-widths on {threads} threads");
    }

    // Layer-specific sensitivities: Ω_ii(m) = 2(L(w + Δ) − L(w)).
    // One work item per layer i; each worker probes all bit-widths of its
    // layer against its own replica, restoring from the shared snapshot
    // between probes. A prefix cache at layer i's stage is valid for all
    // of them because the perturbation never touches stages before it;
    // it is built lazily so a fully-resumed item costs nothing.
    let span_diagonal = telemetry.span("measure.diagonal");
    let layer_ids: Vec<usize> = (0..num_layers).collect();
    let (single_out, diag_retries): (Vec<Vec<ProbeOut>>, u64) = replica_map_checked(
        network,
        threads,
        &layer_ids,
        options.retries,
        |net, &i| {
            let mut cache: Option<PrefixCache> = None;
            let cache_stage = (use_cache && stages[i] > 0).then_some(stages[i]);
            let mut outs = Vec::with_capacity(k);
            for (m, delta) in deltas[i].iter().enumerate() {
                let id = ProbeId::Diag {
                    layer: i as u32,
                    bit: m as u32,
                };
                if let Some(rec) = resume.get(&id) {
                    counters.count_resumed();
                    outs.push(ProbeOut {
                        rec: *rec,
                        resumed: true,
                    });
                    continue;
                }
                net.perturb_weight(i, delta);
                let (loss, quarantined) = with_panic_context(
                    || format!("diagonal probe (layer {i}, {} bits)", bits.get(m)),
                    || {
                        measure_probe(
                            net,
                            &mut cache,
                            cache_stage,
                            sens_set,
                            batch_size,
                            telemetry,
                            &DIAG_SPANS,
                            &counters,
                        )
                    },
                );
                net.set_weight(i, &originals[i]);
                outs.push(ProbeOut {
                    rec: ProbeRecord {
                        id,
                        loss,
                        quarantined,
                    },
                    resumed: false,
                });
            }
            outs
        },
        |_, outs| journal_item(&mut writer, outs),
    )?;
    // Losses indexed [layer][bit]; NaN marks a quarantined probe whose
    // dependent Ω entries degrade to zero below.
    let mut single_loss = vec![vec![f64::NAN; k]; num_layers];
    for o in single_out.iter().flatten() {
        if let ProbeId::Diag { layer, bit } = o.rec.id {
            single_loss[layer as usize][bit as usize] = o.rec.loss;
        }
    }
    for (i, row) in single_loss.iter().enumerate() {
        for (m, &loss) in row.iter().enumerate() {
            let v = i * k + m;
            let omega = if loss.is_finite() {
                2.0 * (loss - base_loss)
            } else {
                0.0
            };
            g.set(v, v, omega);
        }
    }
    drop(span_diagonal);
    if options.verbose {
        eprintln!("sensitivity: diagonal pass done ({num_layers} layers)");
    }

    // Cross-layer sensitivities, eq. (13). One work item per outer layer
    // i < I−1; each probe carries its (i,m,j,n) identity, so assembly is
    // keyed rather than positional and a resumed run slots journaled
    // losses into exactly the right entries. Layer indices follow stage
    // order, so j > i keeps the prefix below layer i unperturbed and the
    // same cache serves every inner probe.
    let span_pairwise = telemetry.span("measure.pairwise");
    let pair_probe_total: usize = (0..num_layers).map(|i| k * k * (num_layers - 1 - i)).sum();
    let progress = telemetry.progress("sensitivity pairwise probes", pair_probe_total as u64);
    let outer_ids: Vec<usize> = (0..num_layers.saturating_sub(1)).collect();
    let (pair_out, pair_retries): (Vec<Vec<ProbeOut>>, u64) = replica_map_checked(
        network,
        threads,
        &outer_ids,
        options.retries,
        |net, &i| {
            let mut cache: Option<PrefixCache> = None;
            let cache_stage = (use_cache && stages[i] > 0).then_some(stages[i]);
            let mut outs = Vec::with_capacity(k * k * (num_layers - 1 - i));
            for (m, delta_i) in deltas[i].iter().enumerate() {
                // The outer perturbation is applied lazily: an m-block
                // whose probes were all resumed never touches the replica.
                let mut outer_applied = false;
                // Batched probes: boundary activations with Δw_m⁽ⁱ⁾ baked
                // in, advanced to the stage of the current inner layer.
                // Valid only within this m-block (it depends on the outer
                // perturbation), and only ever advanced forward — `j`
                // ascends and layers follow stage order, so each stage
                // range between consecutive inner layers is traversed
                // exactly once per block instead of once per probe.
                let mut adv: Option<PrefixCache> = None;
                for j in (i + 1)..num_layers {
                    for (n, delta_j) in deltas[j].iter().enumerate() {
                        let id = ProbeId::Pair {
                            layer_i: i as u32,
                            bit_m: m as u32,
                            layer_j: j as u32,
                            bit_n: n as u32,
                        };
                        if let Some(rec) = resume.get(&id) {
                            counters.count_resumed();
                            outs.push(ProbeOut {
                                rec: *rec,
                                resumed: true,
                            });
                            progress.tick();
                            continue;
                        }
                        if !outer_applied {
                            net.perturb_weight(i, delta_i);
                            outer_applied = true;
                        }
                        let batch_here = batched && stages[j] > stages[i];
                        if batch_here && adv.as_ref().is_none_or(|c| c.stage() < stages[j]) {
                            // The base cache excludes layer i's stage, so
                            // building it with the outer perturbation
                            // already applied is still the unperturbed
                            // prefix; the advance then runs stage[i]..
                            // stage[j] with Δw_m⁽ⁱ⁾ in place (and layer j
                            // not yet perturbed), baking the outer
                            // perturbation into the boundary activations.
                            if cache.is_none() {
                                let _s = telemetry.span(PAIR_SPANS.build);
                                counters.builds.incr();
                                counters.l_builds.fetch_add(1, Ordering::Relaxed);
                                cache =
                                    Some(build_prefix_cache(net, sens_set, batch_size, stages[i]));
                            }
                            let _s = telemetry.span(PAIR_ADVANCE_SPAN);
                            counters.advances.incr();
                            let from = adv
                                .as_ref()
                                .unwrap_or_else(|| cache.as_ref().expect("base cache built above"));
                            adv = Some(advance_prefix_cache(net, from, stages[j]));
                        }
                        net.perturb_weight(j, delta_j);
                        let (loss, quarantined) = with_panic_context(
                            || {
                                format!(
                                    "pairwise probe (layer {i} @ {} bits, layer {j} @ {} bits)",
                                    bits.get(m),
                                    bits.get(n)
                                )
                            },
                            || {
                                let (probe_cache, probe_stage) = if batch_here {
                                    (&mut adv, Some(stages[j]))
                                } else {
                                    (&mut cache, cache_stage)
                                };
                                let out = measure_probe(
                                    net,
                                    probe_cache,
                                    probe_stage,
                                    sens_set,
                                    batch_size,
                                    telemetry,
                                    &PAIR_SPANS,
                                    &counters,
                                );
                                progress.tick();
                                out
                            },
                        );
                        net.set_weight(j, &originals[j]);
                        outs.push(ProbeOut {
                            rec: ProbeRecord {
                                id,
                                loss,
                                quarantined,
                            },
                            resumed: false,
                        });
                    }
                }
                if outer_applied {
                    net.set_weight(i, &originals[i]);
                }
            }
            outs
        },
        |_, outs| journal_item(&mut writer, outs),
    )?;
    if pair_probe_total > 0 {
        progress.finish();
    }
    for o in pair_out.iter().flatten() {
        if let ProbeId::Pair {
            layer_i,
            bit_m,
            layer_j,
            bit_n,
        } = o.rec.id
        {
            let (i, m, j, n) = (
                layer_i as usize,
                bit_m as usize,
                layer_j as usize,
                bit_n as usize,
            );
            let (si, sj) = (single_loss[i][m], single_loss[j][n]);
            // Quarantined probes (own or either single-loss input)
            // degrade the cross-term to zero — the diagonal-only
            // estimate for this pair — instead of spreading NaN into Q.
            let omega = if o.rec.quarantined || !si.is_finite() || !sj.is_finite() {
                0.0
            } else {
                o.rec.loss + base_loss - si - sj
            };
            g.set(i * k + m, j * k + n, omega);
        }
    }
    drop(span_pairwise);
    if options.verbose {
        eprintln!("sensitivity: pairwise pass done");
    }

    let engine_retries = diag_retries + pair_retries;
    counters.retries.add(engine_retries);
    counters
        .l_retried
        .fetch_add(engine_retries, Ordering::Relaxed);

    let full_evals = counters.l_full.load(Ordering::Relaxed) as usize;
    let prefix_cache_hits = counters.l_hits.load(Ordering::Relaxed) as usize;
    let prefix_cache_builds = counters.l_builds.load(Ordering::Relaxed) as usize;
    let resumed = counters.l_resumed.load(Ordering::Relaxed) as usize;
    let retried = counters.l_retried.load(Ordering::Relaxed) as usize;
    let quarantined = counters.l_quarantined.load(Ordering::Relaxed) as usize;
    if telemetry.is_enabled() {
        // The registry counters (deltas against the pre-run snapshot, so
        // a reused registry still reconciles) must agree with the local
        // accounting exactly.
        debug_assert_eq!(
            (counters.evals.value() - evals_at_start) as usize,
            full_evals + prefix_cache_hits,
            "every evaluation is exactly one of full or suffix-only"
        );
    }
    if options.verbose && quarantined > 0 {
        eprintln!(
            "sensitivity: WARNING {quarantined} probe(s) quarantined (non-finite loss); \
             affected Ω entries degraded to the diagonal-only estimate"
        );
    }

    Ok(SensitivityMatrix {
        g,
        num_layers,
        bits: bits.clone(),
        base_loss,
        stats: SensitivityStats {
            evaluations: full_evals + prefix_cache_hits,
            seconds: start.elapsed().as_secs_f64(),
            threads_used: threads,
            prefix_cache_builds,
            prefix_cache_hits,
            full_evals,
            resumed,
            retried,
            quarantined,
            provenance: OmegaProvenance::exact(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_models::{SynthVision, SynthVisionConfig};
    use clado_nn::{Conv2d, GlobalAvgPool, Linear, Network, Sequential};
    use clado_tensor::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Network, SynthVision) {
        let mut rng = StdRng::seed_from_u64(3);
        let net = Network::new(
            Sequential::new()
                .push(
                    "conv1",
                    Conv2d::new(Conv2dSpec::new(3, 6, 3, 1, 1), true, &mut rng),
                )
                .push("relu1", clado_nn::Activation::new(clado_nn::ActKind::Relu))
                .push(
                    "conv2",
                    Conv2d::new(Conv2dSpec::new(6, 6, 3, 1, 1), true, &mut rng),
                )
                .push("relu2", clado_nn::Activation::new(clado_nn::ActKind::Relu))
                .push("pool", GlobalAvgPool::new())
                .push("fc", Linear::new(6, 4, &mut rng)),
            4,
        );
        let data = SynthVision::generate(SynthVisionConfig {
            classes: 4,
            img: 8,
            train: 48,
            val: 32,
            seed: 9,
            noise: 0.2,
            label_noise: 0.0,
        });
        (net, data)
    }

    fn measure(
        net: &mut Network,
        set: &DataSplit,
        bits: &BitWidthSet,
        opts: &SensitivityOptions,
    ) -> SensitivityMatrix {
        measure_sensitivities(net, set, bits, opts).expect("measurement succeeds")
    }

    fn temp_ckpt(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("clado-sens-ckpt-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn measurement_count_matches_paper_formula() {
        let (mut net, data) = setup();
        let bits = BitWidthSet::new(&[2, 8]);
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let sm = measure(&mut net, &set, &bits, &SensitivityOptions::default());
        // 1 base + |B|I diagonal + ½|B|²I(I−1) cross-pair evaluations
        // (same-layer bit pairs are skipped; see the module docs).
        let (b, i) = (2usize, 3usize); // |B| = 2, I = 3 (conv1, conv2, fc)
        assert_eq!(sm.stats.evaluations, 1 + b * i + b * b * i * (i - 1) / 2);
        assert_eq!(sm.num_layers(), 3);
    }

    #[test]
    fn weights_are_restored_after_measurement() {
        let (mut net, data) = setup();
        let before = net.snapshot_weights();
        let set = data.train.subset(&(0..8).collect::<Vec<_>>());
        let _ = measure(
            &mut net,
            &set,
            &BitWidthSet::new(&[2, 8]),
            &SensitivityOptions::default(),
        );
        let after = net.snapshot_weights();
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn diagonal_is_twice_single_layer_loss_increase() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let bits = BitWidthSet::new(&[2, 8]);
        let opts = SensitivityOptions::default();
        let sm = measure(&mut net, &set, &bits, &opts);
        // Manually recompute layer 0 @ 2 bits.
        let base = eval_loss(&mut net, &set, opts.batch_size);
        let dw = clado_quant::quant_error(&net.weight(0), bits.get(0), opts.scheme);
        net.perturb_weight(0, &dw);
        let l = eval_loss(&mut net, &set, opts.batch_size);
        let expect = 2.0 * (l - base);
        assert!((sm.layer_sensitivity(0, 0) - expect).abs() < 1e-9);
    }

    #[test]
    fn eight_bit_sensitivities_are_tiny_relative_to_two_bit() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let bits = BitWidthSet::new(&[2, 8]);
        let sm = measure(&mut net, &set, &bits, &SensitivityOptions::default());
        for i in 0..sm.num_layers() {
            let two = sm.layer_sensitivity(i, 0).abs();
            let eight = sm.layer_sensitivity(i, 1).abs();
            assert!(
                eight <= two + 1e-9,
                "layer {i}: 8-bit {eight} vs 2-bit {two}"
            );
        }
    }

    #[test]
    fn masks_zero_the_right_blocks() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..8).collect::<Vec<_>>());
        let bits = BitWidthSet::new(&[2, 8]);
        let sm = measure(&mut net, &set, &bits, &SensitivityOptions::default());
        let diag = sm.diagonal_only();
        // Off-diagonal block between layers 0 and 1 must vanish.
        assert_eq!(diag.get(sm.var(0, 0), sm.var(1, 0)), 0.0);
        // Diagonal block survives.
        assert_eq!(
            diag.get(sm.var(0, 0), sm.var(0, 0)),
            sm.layer_sensitivity(0, 0)
        );

        // Block mask keeping layers 0 and 1 together, layer 2 separate.
        let masked = sm.block_masked(&[0, 0, 1]);
        assert_eq!(
            masked.get(sm.var(0, 0), sm.var(1, 1)),
            sm.cross_sensitivity(0, 0, 1, 1)
        );
        assert_eq!(masked.get(sm.var(0, 0), sm.var(2, 0)), 0.0);
    }

    #[test]
    fn parallel_and_prefix_paths_are_bitwise_identical() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let bits = BitWidthSet::new(&[2, 8]);
        let naive = SensitivityOptions {
            threads: 1,
            use_prefix_cache: false,
            ..Default::default()
        };
        let reference = measure(&mut net, &set, &bits, &naive);
        for threads in [1, 2, 4] {
            let opts = SensitivityOptions {
                threads,
                use_prefix_cache: true,
                ..Default::default()
            };
            let sm = measure(&mut net, &set, &bits, &opts);
            assert_eq!(
                sm.base_loss.to_bits(),
                reference.base_loss.to_bits(),
                "{threads} threads: base loss drifted"
            );
            assert_eq!(sm.stats.evaluations, reference.stats.evaluations);
            assert_eq!(sm.stats.threads_used, threads);
            let dim = sm.matrix().dim();
            for u in 0..dim {
                for v in u..dim {
                    assert_eq!(
                        sm.matrix().get(u, v).to_bits(),
                        reference.matrix().get(u, v).to_bits(),
                        "{threads} threads: entry ({u},{v}) differs"
                    );
                }
            }
        }
    }

    #[test]
    fn telemetry_never_changes_the_measured_matrix_bitwise() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let bits = BitWidthSet::new(&[2, 8]);
        let reference = measure(&mut net, &set, &bits, &SensitivityOptions::default());
        for threads in [1, 2, 4] {
            let telemetry = Telemetry::new();
            let opts = SensitivityOptions {
                threads,
                telemetry: telemetry.clone(),
                ..Default::default()
            };
            let sm = measure(&mut net, &set, &bits, &opts);
            assert_eq!(
                sm.base_loss.to_bits(),
                reference.base_loss.to_bits(),
                "{threads} threads: base loss drifted under telemetry"
            );
            let dim = sm.matrix().dim();
            for u in 0..dim {
                for v in u..dim {
                    assert_eq!(
                        sm.matrix().get(u, v).to_bits(),
                        reference.matrix().get(u, v).to_bits(),
                        "{threads} threads: entry ({u},{v}) differs under telemetry"
                    );
                }
            }
            // The counted stats must agree with the telemetry-disabled
            // accounting exactly.
            assert_eq!(sm.stats.evaluations, reference.stats.evaluations);
            assert_eq!(sm.stats.full_evals, reference.stats.full_evals);
            assert_eq!(
                sm.stats.prefix_cache_hits,
                reference.stats.prefix_cache_hits
            );
            assert_eq!(
                sm.stats.prefix_cache_builds,
                reference.stats.prefix_cache_builds
            );
            // And with the registry's own counters.
            assert_eq!(
                telemetry.counter_value("measure.evaluations") as usize,
                sm.stats.evaluations
            );
            assert_eq!(
                telemetry.counter_value("measure.evaluations"),
                telemetry.counter_value("measure.full_evals")
                    + telemetry.counter_value("measure.prefix_cache_hits")
            );
            // No faults fired, so the fault-tolerance counters are zero.
            assert_eq!(telemetry.counter_value("measure.resumed"), 0);
            assert_eq!(telemetry.counter_value("measure.retries"), 0);
            assert_eq!(telemetry.counter_value("measure.quarantined"), 0);
            // The span tree covers every phase of the measurement.
            for path in [
                "measure",
                "measure.base",
                "measure.diagonal",
                "measure.pairwise",
            ] {
                assert!(
                    telemetry.span_stats(path).is_some(),
                    "{threads} threads: span {path} missing"
                );
            }
            assert!(telemetry
                .span_stats("measure.pairwise.suffix_eval")
                .is_some());
        }
    }

    #[test]
    fn reused_registry_still_yields_per_run_stats() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let bits = BitWidthSet::new(&[2, 8]);
        let telemetry = Telemetry::new();
        let opts = SensitivityOptions {
            telemetry: telemetry.clone(),
            ..Default::default()
        };
        let first = measure(&mut net, &set, &bits, &opts);
        let second = measure(&mut net, &set, &bits, &opts);
        // Stats are per-run deltas, not cumulative registry totals.
        assert_eq!(second.stats.evaluations, first.stats.evaluations);
        assert_eq!(second.stats.full_evals, first.stats.full_evals);
        // The registry itself accumulated both runs.
        assert_eq!(
            telemetry.counter_value("measure.evaluations") as usize,
            2 * first.stats.evaluations
        );
    }

    #[test]
    fn stats_partition_evaluations_between_suffix_and_full() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let bits = BitWidthSet::new(&[2, 8]);
        let sm = measure(&mut net, &set, &bits, &SensitivityOptions::default());
        let s = sm.stats;
        assert_eq!(s.evaluations, s.prefix_cache_hits + s.full_evals);
        // Layers sit at stages 0 (conv1), 2 (conv2), 5 (fc). With batched
        // probes (the default), only the base eval and conv1's 2 diagonal
        // probes run in full: every pairwise probe — including conv1's,
        // whose stage-0 "prefix" is just the raw inputs — evaluates the
        // suffix from its *inner* layer's stage on an advanced cache.
        // Builds: conv2 + fc diagonal caches plus one pairwise base cache
        // per outer layer (conv1, conv2).
        assert_eq!(s.full_evals, 3);
        assert_eq!(s.prefix_cache_hits, 16);
        assert_eq!(s.prefix_cache_builds, 4);
        assert!(s.threads_used >= 1);
        // No checkpoint, no faults: fault-tolerance stats stay zero.
        assert_eq!(s.resumed, 0);
        assert_eq!(s.retried, 0);
        assert_eq!(s.quarantined, 0);

        // Without batching, probes evaluate from the outer layer's stage:
        // conv1's 8 pairwise probes join the full-eval count.
        let unbatched = SensitivityOptions {
            batched_probes: false,
            ..Default::default()
        };
        let sm = measure(&mut net, &set, &bits, &unbatched);
        assert_eq!(sm.stats.full_evals, 11);
        assert_eq!(sm.stats.prefix_cache_hits, 8);
        assert_eq!(sm.stats.prefix_cache_builds, 3);

        let naive = SensitivityOptions {
            use_prefix_cache: false,
            ..Default::default()
        };
        let sm = measure(&mut net, &set, &bits, &naive);
        assert_eq!(sm.stats.prefix_cache_hits, 0);
        assert_eq!(sm.stats.prefix_cache_builds, 0);
        assert_eq!(sm.stats.full_evals, sm.stats.evaluations);
    }

    #[test]
    fn batched_probes_match_unbatched_bitwise() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let bits = BitWidthSet::new(&[2, 8]);
        let unbatched = SensitivityOptions {
            batched_probes: false,
            ..Default::default()
        };
        let reference = measure(&mut net, &set, &bits, &unbatched);

        let telemetry = Telemetry::new();
        let batched = SensitivityOptions {
            telemetry: telemetry.clone(),
            ..Default::default()
        };
        let sm = measure(&mut net, &set, &bits, &batched);
        assert_eq!(sm.base_loss.to_bits(), reference.base_loss.to_bits());
        assert_eq!(sm.stats.evaluations, reference.stats.evaluations);
        let dim = sm.matrix().dim();
        for u in 0..dim {
            for v in u..dim {
                assert_eq!(
                    sm.matrix().get(u, v).to_bits(),
                    reference.matrix().get(u, v).to_bits(),
                    "entry ({u},{v}) differs under batched probes"
                );
            }
        }
        // Advances per outer layer and m-block: conv1 crosses two stage
        // boundaries (→conv2, →fc), conv2 one (→fc); ×2 bit-widths.
        assert_eq!(telemetry.counter_value("measure.prefix_cache_advances"), 6);
        assert!(telemetry
            .span_stats("measure.pairwise.prefix_advance")
            .is_some());

        // Disabling the prefix cache disables batching with it.
        let telemetry = Telemetry::new();
        let naive = SensitivityOptions {
            use_prefix_cache: false,
            telemetry: telemetry.clone(),
            ..Default::default()
        };
        let sm = measure(&mut net, &set, &bits, &naive);
        assert_eq!(sm.base_loss.to_bits(), reference.base_loss.to_bits());
        assert_eq!(telemetry.counter_value("measure.prefix_cache_advances"), 0);
    }

    #[test]
    fn pairwise_entries_match_eq13_manual_recomputation() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let bits = BitWidthSet::new(&[2, 8]);
        let opts = SensitivityOptions::default();
        let sm = measure(&mut net, &set, &bits, &opts);

        let base = eval_loss(&mut net, &set, opts.batch_size);
        let w0 = net.weight(0);
        let w1 = net.weight(1);
        let d0 = clado_quant::quant_error(&w0, bits.get(0), opts.scheme);
        let d1 = clado_quant::quant_error(&w1, bits.get(0), opts.scheme);
        net.perturb_weight(0, &d0);
        let l0 = eval_loss(&mut net, &set, opts.batch_size);
        net.set_weight(0, &w0);
        net.perturb_weight(1, &d1);
        let l1 = eval_loss(&mut net, &set, opts.batch_size);
        net.set_weight(1, &w1);
        net.perturb_weight(0, &d0);
        net.perturb_weight(1, &d1);
        let l01 = eval_loss(&mut net, &set, opts.batch_size);
        let expect = l01 + base - l0 - l1;
        assert!(
            (sm.cross_sensitivity(0, 0, 1, 0) - expect).abs() < 1e-9,
            "{} vs {expect}",
            sm.cross_sensitivity(0, 0, 1, 0)
        );
    }

    #[test]
    fn checkpointed_run_matches_uncheckpointed_bitwise() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let bits = BitWidthSet::new(&[2, 8]);
        let reference = measure(&mut net, &set, &bits, &SensitivityOptions::default());

        let dir = temp_ckpt("clean");
        let opts = SensitivityOptions {
            checkpoint_dir: Some(dir.clone()),
            ..Default::default()
        };
        let sm = measure(&mut net, &set, &bits, &opts);
        assert_eq!(sm.base_loss.to_bits(), reference.base_loss.to_bits());
        assert_eq!(sm.stats.evaluations, reference.stats.evaluations);
        assert_eq!(sm.stats.resumed, 0);
        let dim = sm.matrix().dim();
        for u in 0..dim {
            for v in u..dim {
                assert_eq!(
                    sm.matrix().get(u, v).to_bits(),
                    reference.matrix().get(u, v).to_bits(),
                    "entry ({u},{v}) differs under checkpointing"
                );
            }
        }

        // Resuming a *complete* journal re-evaluates nothing and still
        // reproduces the matrix bit for bit.
        let resumed = measure(
            &mut net,
            &set,
            &bits,
            &SensitivityOptions {
                checkpoint_dir: Some(dir.clone()),
                resume: true,
                ..Default::default()
            },
        );
        assert_eq!(resumed.stats.evaluations, 0, "all probes came from disk");
        assert_eq!(
            resumed.stats.resumed, reference.stats.evaluations,
            "every probe (incl. base) was resumed"
        );
        assert_eq!(resumed.base_loss.to_bits(), reference.base_loss.to_bits());
        for u in 0..dim {
            for v in u..dim {
                assert_eq!(
                    resumed.matrix().get(u, v).to_bits(),
                    reference.matrix().get(u, v).to_bits(),
                    "entry ({u},{v}) differs after resume"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_empty_checkpoint_dir_without_resume_is_rejected() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..8).collect::<Vec<_>>());
        let bits = BitWidthSet::new(&[2, 8]);
        let dir = temp_ckpt("notempty");
        let opts = SensitivityOptions {
            checkpoint_dir: Some(dir.clone()),
            ..Default::default()
        };
        let _ = measure(&mut net, &set, &bits, &opts);
        let err = measure_sensitivities(&mut net, &set, &bits, &opts)
            .expect_err("a populated checkpoint dir without --resume must be rejected");
        assert!(
            matches!(err, MeasureError::Journal(JournalError::NotEmpty { .. })),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_under_a_different_configuration_is_rejected() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..8).collect::<Vec<_>>());
        let dir = temp_ckpt("configmismatch");
        let opts = SensitivityOptions {
            checkpoint_dir: Some(dir.clone()),
            ..Default::default()
        };
        let _ = measure(&mut net, &set, &BitWidthSet::new(&[2, 8]), &opts);
        let err = measure_sensitivities(
            &mut net,
            &set,
            &BitWidthSet::new(&[4, 8]),
            &SensitivityOptions {
                checkpoint_dir: Some(dir.clone()),
                resume: true,
                ..Default::default()
            },
        )
        .expect_err("resuming with different bit-widths must be rejected");
        assert!(
            matches!(
                err,
                MeasureError::Journal(JournalError::ConfigMismatch { .. })
            ),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
