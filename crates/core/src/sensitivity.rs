//! Algorithm 1: backpropagation-free measurement of the sensitivity matrix Ĝ.
//!
//! Layer-specific entries use eq. (12): `Ω_ii(m) ≈ 2(L(w+Δw_m⁽ⁱ⁾) − L(w))`.
//! Cross-layer entries use eq. (13):
//! `Ω_ij(m,n) ≈ L(w+Δw_m⁽ⁱ⁾+Δw_n⁽ʲ⁾) + L(w) − L(w+Δw_m⁽ⁱ⁾) − L(w+Δw_n⁽ʲ⁾)`.
//!
//! (The paper's Algorithm 1 pseudocode subtracts `0.5·Ĝ_diag` terms, which
//! expands to an extra `+2L(w)`; we implement eq. (13), the mathematically
//! consistent form the derivation produces.)
//!
//! The paper budgets `½·|𝔹|I(|𝔹|I+1)` forward evaluations. This
//! implementation is slightly cheaper: same-layer pairs with different
//! bit-widths `(i,m)–(i,n)` are never co-active under the one-hot
//! constraint, so their `I·C(|𝔹|,2)` measurements are skipped —
//! `1 + |𝔹|I + ½|𝔹|²I(I−1)` evaluations in total.

use crate::engine::{replica_map, resolve_threads};
use crate::probe::{build_prefix_cache, eval_loss, eval_loss_from, quant_error_table, PROBE_BATCH};
use clado_models::DataSplit;
use clado_nn::Network;
use clado_quant::{BitWidthSet, QuantScheme};
use clado_solver::SymMatrix;
use clado_telemetry::{with_panic_context, Telemetry};
use std::time::Instant;

/// Options controlling sensitivity measurement.
#[derive(Debug, Clone)]
pub struct SensitivityOptions {
    /// Quantization scheme used to produce the Δw perturbations.
    pub scheme: QuantScheme,
    /// Probe batch size.
    pub batch_size: usize,
    /// Print coarse progress to stderr.
    pub verbose: bool,
    /// Worker threads for the measurement fan-out; `0` means all
    /// available cores. The result is bitwise identical for any value.
    pub threads: usize,
    /// Reuse cached prefix activations for probes sharing an outer
    /// perturbation (exact; disable only for measurement A/B testing).
    pub use_prefix_cache: bool,
    /// Telemetry sink for spans, counters, and progress. The default
    /// (disabled) handle records nothing; measured values are bitwise
    /// identical either way (test-enforced).
    pub telemetry: Telemetry,
}

impl Default for SensitivityOptions {
    fn default() -> Self {
        Self {
            scheme: QuantScheme::PerTensorSymmetric,
            batch_size: PROBE_BATCH,
            verbose: false,
            threads: 0,
            use_prefix_cache: true,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Measurement statistics (the paper's runtime discussion, §5.2).
#[derive(Debug, Clone, Copy)]
pub struct SensitivityStats {
    /// Number of network evaluations on the sensitivity set (full or
    /// suffix-only; always `prefix_cache_hits + full_evals`).
    pub evaluations: usize,
    /// Wall-clock measurement time in seconds.
    pub seconds: f64,
    /// Worker threads the measurement actually ran on.
    pub threads_used: usize,
    /// Prefix-activation caches built (one prefix forward per build).
    pub prefix_cache_builds: usize,
    /// Evaluations that ran only the suffix on cached activations.
    pub prefix_cache_hits: usize,
    /// Evaluations that ran the full forward pass.
    pub full_evals: usize,
}

/// The measured sensitivity matrix Ĝ plus its provenance.
#[derive(Debug, Clone)]
pub struct SensitivityMatrix {
    g: SymMatrix,
    num_layers: usize,
    bits: BitWidthSet,
    /// Loss of the unperturbed model on the sensitivity set, `L(w)`.
    pub base_loss: f64,
    /// Measurement statistics.
    pub stats: SensitivityStats,
}

impl SensitivityMatrix {
    /// Reassembles a matrix from its serialized parts (see
    /// [`crate::load_sensitivities`]).
    ///
    /// # Panics
    ///
    /// Panics if `g`'s dimension is not `num_layers · |bits|`.
    pub fn from_parts(
        g: SymMatrix,
        num_layers: usize,
        bits: BitWidthSet,
        base_loss: f64,
        stats: SensitivityStats,
    ) -> Self {
        assert_eq!(
            g.dim(),
            num_layers * bits.len(),
            "matrix dimension mismatch"
        );
        Self {
            g,
            num_layers,
            bits,
            base_loss,
            stats,
        }
    }

    /// The raw (pre-PSD) matrix.
    pub fn matrix(&self) -> &SymMatrix {
        &self.g
    }

    /// Number of layers `I`.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// The bit-width candidate set 𝔹.
    pub fn bits(&self) -> &BitWidthSet {
        &self.bits
    }

    /// Flat variable index of `(layer, bit_index)`: `|𝔹|·i + m`.
    pub fn var(&self, layer: usize, bit_index: usize) -> usize {
        layer * self.bits.len() + bit_index
    }

    /// The layer-specific sensitivity `Ω_ii(m, m)`.
    pub fn layer_sensitivity(&self, layer: usize, bit_index: usize) -> f64 {
        let v = self.var(layer, bit_index);
        self.g.get(v, v)
    }

    /// The cross-layer sensitivity `Ω_ij(m, n)`.
    pub fn cross_sensitivity(
        &self,
        layer_i: usize,
        bit_m: usize,
        layer_j: usize,
        bit_n: usize,
    ) -> f64 {
        self.g
            .get(self.var(layer_i, bit_m), self.var(layer_j, bit_n))
    }

    /// PSD projection of Ĝ (the paper's preprocessing before the IQP).
    pub fn psd_projected(&self) -> SymMatrix {
        self.g.psd_project()
    }

    /// A copy of Ĝ with all cross-layer blocks zeroed — the CLADO\*
    /// ablation (Table 1).
    pub fn diagonal_only(&self) -> SymMatrix {
        let mut out = SymMatrix::zeros(self.g.dim());
        let k = self.bits.len();
        for i in 0..self.num_layers {
            for m in 0..k {
                for n in 0..k {
                    let (u, v) = (i * k + m, i * k + n);
                    out.set(u, v, self.g.get(u, v));
                }
            }
        }
        out
    }

    /// A copy of Ĝ keeping intra-block interactions only — the BRECQ-style
    /// ablation (Fig. 6). `blocks[i]` is the block id of layer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` length differs from the layer count.
    pub fn block_masked(&self, blocks: &[usize]) -> SymMatrix {
        assert_eq!(blocks.len(), self.num_layers, "block id per layer required");
        let mut out = SymMatrix::zeros(self.g.dim());
        let k = self.bits.len();
        for i in 0..self.num_layers {
            for j in 0..self.num_layers {
                if blocks[i] != blocks[j] && i != j {
                    continue;
                }
                for m in 0..k {
                    for n in 0..k {
                        let (u, v) = (i * k + m, j * k + n);
                        out.set(u, v, self.g.get(u, v));
                    }
                }
            }
        }
        out
    }
}

/// Runs Algorithm 1 on `network` over the sensitivity set.
///
/// All perturbations are applied to per-worker replicas, so the caller's
/// network is never modified. The `(i, m)`-outer / `(j, n)`-inner probe
/// order lets every worker cache the unperturbed prefix activations up to
/// the stage holding layer `i` and re-run only the suffix for each inner
/// probe; evaluation-mode forward is pure, so the cached path is bitwise
/// equal to a full forward. Work is sharded per outer layer `i` across
/// [`SensitivityOptions::threads`] workers and merged in deterministic
/// order, so the result is bitwise identical for any thread count.
pub fn measure_sensitivities(
    network: &mut Network,
    sens_set: &DataSplit,
    bits: &BitWidthSet,
    options: &SensitivityOptions,
) -> SensitivityMatrix {
    let start = Instant::now();
    let telemetry = &options.telemetry;
    let _span_measure = telemetry.span("measure");
    let num_layers = network.quantizable_layers().len();
    let k = bits.len();
    let dim = num_layers * k;
    let mut g = SymMatrix::zeros(dim);
    let deltas = quant_error_table(network, bits, options.scheme);
    let stages: Vec<usize> = (0..num_layers).map(|i| network.stage_of(i)).collect();
    let originals = network.snapshot_weights();
    let threads = resolve_threads(options.threads);
    let use_cache = options.use_prefix_cache;
    let batch_size = options.batch_size;

    // Counter handles are fetched once and bumped live from worker
    // threads; initial values are snapshotted so a registry reused across
    // several measurements still yields per-run stats (deltas).
    let c_evals = telemetry.counter("measure.evaluations");
    let c_full = telemetry.counter("measure.full_evals");
    let c_hits = telemetry.counter("measure.prefix_cache_hits");
    let c_builds = telemetry.counter("measure.prefix_cache_builds");
    let at_start = [
        c_evals.value(),
        c_full.value(),
        c_hits.value(),
        c_builds.value(),
    ];

    let base_loss = {
        let _s = telemetry.span("measure.base");
        let loss = eval_loss(network, sens_set, batch_size);
        c_evals.incr();
        c_full.incr();
        loss
    };
    if options.verbose {
        eprintln!("sensitivity: {num_layers} layers × {k} bit-widths on {threads} threads");
    }

    // Layer-specific sensitivities: Ω_ii(m) = 2(L(w + Δ) − L(w)).
    // One work item per layer i; each worker probes all bit-widths of its
    // layer against its own replica, restoring from the shared snapshot
    // between probes. A prefix cache at layer i's stage is valid for all
    // of them because the perturbation never touches stages before it.
    let span_diagonal = telemetry.span("measure.diagonal");
    let layer_ids: Vec<usize> = (0..num_layers).collect();
    let single_loss: Vec<Vec<f64>> = replica_map(network, threads, &layer_ids, |net, &i| {
        let cache = (use_cache && stages[i] > 0).then(|| {
            let _s = telemetry.span("measure.diagonal.prefix_build");
            c_builds.incr();
            build_prefix_cache(net, sens_set, batch_size, stages[i])
        });
        let mut losses = Vec::with_capacity(k);
        for (m, delta) in deltas[i].iter().enumerate() {
            net.perturb_weight(i, delta);
            losses.push(with_panic_context(
                || format!("diagonal probe (layer {i}, {} bits)", bits.get(m)),
                || {
                    c_evals.incr();
                    match &cache {
                        Some(c) => {
                            let _s = telemetry.span("measure.diagonal.suffix_eval");
                            c_hits.incr();
                            eval_loss_from(net, c)
                        }
                        None => {
                            let _s = telemetry.span("measure.diagonal.full_eval");
                            c_full.incr();
                            eval_loss(net, sens_set, batch_size)
                        }
                    }
                },
            ));
            net.set_weight(i, &originals[i]);
        }
        losses
    });
    for (i, row) in single_loss.iter().enumerate() {
        for (m, &loss) in row.iter().enumerate() {
            g.set(i * k + m, i * k + m, 2.0 * (loss - base_loss));
        }
    }
    drop(span_diagonal);
    if options.verbose {
        eprintln!("sensitivity: diagonal pass done ({num_layers} layers)");
    }

    // Cross-layer sensitivities, eq. (13). One work item per outer layer
    // i < I−1; workers emit the probe losses in (m, j, n) order and the
    // merge below re-walks that order, so entries land at fixed indices
    // regardless of which worker produced them. Layer indices follow
    // stage order, so j > i keeps the prefix below layer i unperturbed
    // and the same cache serves every inner probe.
    let span_pairwise = telemetry.span("measure.pairwise");
    let pair_probe_total: usize = (0..num_layers).map(|i| k * k * (num_layers - 1 - i)).sum();
    let progress = telemetry.progress("sensitivity pairwise probes", pair_probe_total as u64);
    let outer_ids: Vec<usize> = (0..num_layers.saturating_sub(1)).collect();
    let pair_losses: Vec<Vec<f64>> = replica_map(network, threads, &outer_ids, |net, &i| {
        let cache = (use_cache && stages[i] > 0).then(|| {
            let _s = telemetry.span("measure.pairwise.prefix_build");
            c_builds.incr();
            build_prefix_cache(net, sens_set, batch_size, stages[i])
        });
        let mut losses = Vec::with_capacity(k * k * (num_layers - 1 - i));
        for (m, delta_i) in deltas[i].iter().enumerate() {
            net.perturb_weight(i, delta_i);
            for j in (i + 1)..num_layers {
                for (n, delta_j) in deltas[j].iter().enumerate() {
                    net.perturb_weight(j, delta_j);
                    losses.push(with_panic_context(
                        || {
                            format!(
                                "pairwise probe (layer {i} @ {} bits, layer {j} @ {} bits)",
                                bits.get(m),
                                bits.get(n)
                            )
                        },
                        || {
                            c_evals.incr();
                            let loss = match &cache {
                                Some(c) => {
                                    let _s = telemetry.span("measure.pairwise.suffix_eval");
                                    c_hits.incr();
                                    eval_loss_from(net, c)
                                }
                                None => {
                                    let _s = telemetry.span("measure.pairwise.full_eval");
                                    c_full.incr();
                                    eval_loss(net, sens_set, batch_size)
                                }
                            };
                            progress.tick();
                            loss
                        },
                    ));
                    net.set_weight(j, &originals[j]);
                }
            }
            net.set_weight(i, &originals[i]);
        }
        losses
    });
    if pair_probe_total > 0 {
        progress.finish();
    }
    for (&i, losses) in outer_ids.iter().zip(&pair_losses) {
        let mut stream = losses.iter();
        for m in 0..k {
            for j in (i + 1)..num_layers {
                for n in 0..k {
                    let loss = *stream.next().expect("pairwise probe stream aligned");
                    let omega = loss + base_loss - single_loss[i][m] - single_loss[j][n];
                    g.set(i * k + m, j * k + n, omega);
                }
            }
        }
    }
    drop(span_pairwise);
    if options.verbose {
        eprintln!("sensitivity: pairwise pass done");
    }

    let (full_evals, prefix_cache_hits, prefix_cache_builds) = if telemetry.is_enabled() {
        // The workers counted live; the deltas against the snapshot taken
        // above are this run's share even on a reused registry.
        let counted = (
            (c_full.value() - at_start[1]) as usize,
            (c_hits.value() - at_start[2]) as usize,
            (c_builds.value() - at_start[3]) as usize,
        );
        debug_assert_eq!(
            (c_evals.value() - at_start[0]) as usize,
            counted.0 + counted.1,
            "every evaluation is exactly one of full or suffix-only"
        );
        counted
    } else {
        // Telemetry off: derive the same numbers analytically. The base
        // loss always runs the full network; each probed layer contributes
        // k diagonal probes plus k²(I−1−i) pairwise probes, all
        // suffix-only when its prefix cache exists. A test pins this
        // against the counted path.
        let mut full_evals = 1usize;
        let mut prefix_cache_hits = 0usize;
        let mut prefix_cache_builds = 0usize;
        for (i, &stage) in stages.iter().enumerate() {
            let diag_probes = k;
            let pair_probes = k * k * (num_layers - 1 - i);
            if use_cache && stage > 0 {
                prefix_cache_builds += 1 + usize::from(pair_probes > 0);
                prefix_cache_hits += diag_probes + pair_probes;
            } else {
                full_evals += diag_probes + pair_probes;
            }
        }
        (full_evals, prefix_cache_hits, prefix_cache_builds)
    };

    SensitivityMatrix {
        g,
        num_layers,
        bits: bits.clone(),
        base_loss,
        stats: SensitivityStats {
            evaluations: full_evals + prefix_cache_hits,
            seconds: start.elapsed().as_secs_f64(),
            threads_used: threads,
            prefix_cache_builds,
            prefix_cache_hits,
            full_evals,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_models::{SynthVision, SynthVisionConfig};
    use clado_nn::{Conv2d, GlobalAvgPool, Linear, Network, Sequential};
    use clado_tensor::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Network, SynthVision) {
        let mut rng = StdRng::seed_from_u64(3);
        let net = Network::new(
            Sequential::new()
                .push(
                    "conv1",
                    Conv2d::new(Conv2dSpec::new(3, 6, 3, 1, 1), true, &mut rng),
                )
                .push("relu1", clado_nn::Activation::new(clado_nn::ActKind::Relu))
                .push(
                    "conv2",
                    Conv2d::new(Conv2dSpec::new(6, 6, 3, 1, 1), true, &mut rng),
                )
                .push("relu2", clado_nn::Activation::new(clado_nn::ActKind::Relu))
                .push("pool", GlobalAvgPool::new())
                .push("fc", Linear::new(6, 4, &mut rng)),
            4,
        );
        let data = SynthVision::generate(SynthVisionConfig {
            classes: 4,
            img: 8,
            train: 48,
            val: 32,
            seed: 9,
            noise: 0.2,
            label_noise: 0.0,
        });
        (net, data)
    }

    #[test]
    fn measurement_count_matches_paper_formula() {
        let (mut net, data) = setup();
        let bits = BitWidthSet::new(&[2, 8]);
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let sm = measure_sensitivities(&mut net, &set, &bits, &SensitivityOptions::default());
        // 1 base + |B|I diagonal + ½|B|²I(I−1) cross-pair evaluations
        // (same-layer bit pairs are skipped; see the module docs).
        let (b, i) = (2usize, 3usize); // |B| = 2, I = 3 (conv1, conv2, fc)
        assert_eq!(sm.stats.evaluations, 1 + b * i + b * b * i * (i - 1) / 2);
        assert_eq!(sm.num_layers(), 3);
    }

    #[test]
    fn weights_are_restored_after_measurement() {
        let (mut net, data) = setup();
        let before = net.snapshot_weights();
        let set = data.train.subset(&(0..8).collect::<Vec<_>>());
        let _ = measure_sensitivities(
            &mut net,
            &set,
            &BitWidthSet::new(&[2, 8]),
            &SensitivityOptions::default(),
        );
        let after = net.snapshot_weights();
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn diagonal_is_twice_single_layer_loss_increase() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let bits = BitWidthSet::new(&[2, 8]);
        let opts = SensitivityOptions::default();
        let sm = measure_sensitivities(&mut net, &set, &bits, &opts);
        // Manually recompute layer 0 @ 2 bits.
        let base = eval_loss(&mut net, &set, opts.batch_size);
        let dw = clado_quant::quant_error(&net.weight(0), bits.get(0), opts.scheme);
        net.perturb_weight(0, &dw);
        let l = eval_loss(&mut net, &set, opts.batch_size);
        let expect = 2.0 * (l - base);
        assert!((sm.layer_sensitivity(0, 0) - expect).abs() < 1e-9);
    }

    #[test]
    fn eight_bit_sensitivities_are_tiny_relative_to_two_bit() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let bits = BitWidthSet::new(&[2, 8]);
        let sm = measure_sensitivities(&mut net, &set, &bits, &SensitivityOptions::default());
        for i in 0..sm.num_layers() {
            let two = sm.layer_sensitivity(i, 0).abs();
            let eight = sm.layer_sensitivity(i, 1).abs();
            assert!(
                eight <= two + 1e-9,
                "layer {i}: 8-bit {eight} vs 2-bit {two}"
            );
        }
    }

    #[test]
    fn masks_zero_the_right_blocks() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..8).collect::<Vec<_>>());
        let bits = BitWidthSet::new(&[2, 8]);
        let sm = measure_sensitivities(&mut net, &set, &bits, &SensitivityOptions::default());
        let diag = sm.diagonal_only();
        // Off-diagonal block between layers 0 and 1 must vanish.
        assert_eq!(diag.get(sm.var(0, 0), sm.var(1, 0)), 0.0);
        // Diagonal block survives.
        assert_eq!(
            diag.get(sm.var(0, 0), sm.var(0, 0)),
            sm.layer_sensitivity(0, 0)
        );

        // Block mask keeping layers 0 and 1 together, layer 2 separate.
        let masked = sm.block_masked(&[0, 0, 1]);
        assert_eq!(
            masked.get(sm.var(0, 0), sm.var(1, 1)),
            sm.cross_sensitivity(0, 0, 1, 1)
        );
        assert_eq!(masked.get(sm.var(0, 0), sm.var(2, 0)), 0.0);
    }

    #[test]
    fn parallel_and_prefix_paths_are_bitwise_identical() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let bits = BitWidthSet::new(&[2, 8]);
        let naive = SensitivityOptions {
            threads: 1,
            use_prefix_cache: false,
            ..Default::default()
        };
        let reference = measure_sensitivities(&mut net, &set, &bits, &naive);
        for threads in [1, 2, 4] {
            let opts = SensitivityOptions {
                threads,
                use_prefix_cache: true,
                ..Default::default()
            };
            let sm = measure_sensitivities(&mut net, &set, &bits, &opts);
            assert_eq!(
                sm.base_loss.to_bits(),
                reference.base_loss.to_bits(),
                "{threads} threads: base loss drifted"
            );
            assert_eq!(sm.stats.evaluations, reference.stats.evaluations);
            assert_eq!(sm.stats.threads_used, threads);
            let dim = sm.matrix().dim();
            for u in 0..dim {
                for v in u..dim {
                    assert_eq!(
                        sm.matrix().get(u, v).to_bits(),
                        reference.matrix().get(u, v).to_bits(),
                        "{threads} threads: entry ({u},{v}) differs"
                    );
                }
            }
        }
    }

    #[test]
    fn telemetry_never_changes_the_measured_matrix_bitwise() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let bits = BitWidthSet::new(&[2, 8]);
        let reference =
            measure_sensitivities(&mut net, &set, &bits, &SensitivityOptions::default());
        for threads in [1, 2, 4] {
            let telemetry = Telemetry::new();
            let opts = SensitivityOptions {
                threads,
                telemetry: telemetry.clone(),
                ..Default::default()
            };
            let sm = measure_sensitivities(&mut net, &set, &bits, &opts);
            assert_eq!(
                sm.base_loss.to_bits(),
                reference.base_loss.to_bits(),
                "{threads} threads: base loss drifted under telemetry"
            );
            let dim = sm.matrix().dim();
            for u in 0..dim {
                for v in u..dim {
                    assert_eq!(
                        sm.matrix().get(u, v).to_bits(),
                        reference.matrix().get(u, v).to_bits(),
                        "{threads} threads: entry ({u},{v}) differs under telemetry"
                    );
                }
            }
            // The counted stats must agree with the analytic (disabled)
            // accounting exactly.
            assert_eq!(sm.stats.evaluations, reference.stats.evaluations);
            assert_eq!(sm.stats.full_evals, reference.stats.full_evals);
            assert_eq!(
                sm.stats.prefix_cache_hits,
                reference.stats.prefix_cache_hits
            );
            assert_eq!(
                sm.stats.prefix_cache_builds,
                reference.stats.prefix_cache_builds
            );
            // And with the registry's own counters.
            assert_eq!(
                telemetry.counter_value("measure.evaluations") as usize,
                sm.stats.evaluations
            );
            assert_eq!(
                telemetry.counter_value("measure.evaluations"),
                telemetry.counter_value("measure.full_evals")
                    + telemetry.counter_value("measure.prefix_cache_hits")
            );
            // The span tree covers every phase of the measurement.
            for path in [
                "measure",
                "measure.base",
                "measure.diagonal",
                "measure.pairwise",
            ] {
                assert!(
                    telemetry.span_stats(path).is_some(),
                    "{threads} threads: span {path} missing"
                );
            }
            assert!(telemetry
                .span_stats("measure.pairwise.suffix_eval")
                .is_some());
        }
    }

    #[test]
    fn reused_registry_still_yields_per_run_stats() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let bits = BitWidthSet::new(&[2, 8]);
        let telemetry = Telemetry::new();
        let opts = SensitivityOptions {
            telemetry: telemetry.clone(),
            ..Default::default()
        };
        let first = measure_sensitivities(&mut net, &set, &bits, &opts);
        let second = measure_sensitivities(&mut net, &set, &bits, &opts);
        // Stats are per-run deltas, not cumulative registry totals.
        assert_eq!(second.stats.evaluations, first.stats.evaluations);
        assert_eq!(second.stats.full_evals, first.stats.full_evals);
        // The registry itself accumulated both runs.
        assert_eq!(
            telemetry.counter_value("measure.evaluations") as usize,
            2 * first.stats.evaluations
        );
    }

    #[test]
    fn stats_partition_evaluations_between_suffix_and_full() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let bits = BitWidthSet::new(&[2, 8]);
        let sm = measure_sensitivities(&mut net, &set, &bits, &SensitivityOptions::default());
        let s = sm.stats;
        assert_eq!(s.evaluations, s.prefix_cache_hits + s.full_evals);
        // Layers sit at stages 0 (conv1), 2 (conv2), 5 (fc): conv1 has no
        // cacheable prefix, so its 2 diagonal + 8 pairwise probes plus the
        // base eval run in full; the remaining 8 probes are suffix-only.
        assert_eq!(s.full_evals, 11);
        assert_eq!(s.prefix_cache_hits, 8);
        assert_eq!(s.prefix_cache_builds, 3);
        assert!(s.threads_used >= 1);

        let naive = SensitivityOptions {
            use_prefix_cache: false,
            ..Default::default()
        };
        let sm = measure_sensitivities(&mut net, &set, &bits, &naive);
        assert_eq!(sm.stats.prefix_cache_hits, 0);
        assert_eq!(sm.stats.prefix_cache_builds, 0);
        assert_eq!(sm.stats.full_evals, sm.stats.evaluations);
    }

    #[test]
    fn pairwise_entries_match_eq13_manual_recomputation() {
        let (mut net, data) = setup();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let bits = BitWidthSet::new(&[2, 8]);
        let opts = SensitivityOptions::default();
        let sm = measure_sensitivities(&mut net, &set, &bits, &opts);

        let base = eval_loss(&mut net, &set, opts.batch_size);
        let w0 = net.weight(0);
        let w1 = net.weight(1);
        let d0 = clado_quant::quant_error(&w0, bits.get(0), opts.scheme);
        let d1 = clado_quant::quant_error(&w1, bits.get(0), opts.scheme);
        net.perturb_weight(0, &d0);
        let l0 = eval_loss(&mut net, &set, opts.batch_size);
        net.set_weight(0, &w0);
        net.perturb_weight(1, &d1);
        let l1 = eval_loss(&mut net, &set, opts.batch_size);
        net.set_weight(1, &w1);
        net.perturb_weight(0, &d0);
        net.perturb_weight(1, &d1);
        let l01 = eval_loss(&mut net, &set, opts.batch_size);
        let expect = l01 + base - l0 - l1;
        assert!(
            (sm.cross_sensitivity(0, 0, 1, 0) - expect).abs() < 1e-9,
            "{} vs {expect}",
            sm.cross_sensitivity(0, 0, 1, 0)
        );
    }
}
