//! Loss and gradient probes over a sensitivity set.
//!
//! These are the primitives Algorithm 1 and the baselines are built from:
//! evaluation-mode mean loss under weight perturbations (forward-only), and
//! training-mode mean gradients (for the HVP-based baselines and Table 2).

use clado_models::DataSplit;
use clado_nn::{cross_entropy, Network};
use clado_quant::{quant_error, BitWidthSet, QuantScheme};
use clado_tensor::Tensor;

/// Default probe batch size.
pub const PROBE_BATCH: usize = 64;

/// Evaluation-mode mean cross-entropy loss of `network` on `set`.
///
/// This is the `L(·)` of Algorithm 1.
pub fn eval_loss(network: &mut Network, set: &DataSplit, batch_size: usize) -> f64 {
    clado_models::mean_loss(network, set, batch_size)
}

/// Cached boundary activations at a stage boundary of the root stack.
///
/// Holds, for every probe batch, the activation entering stage `stage`
/// (along with its labels) so that perturbations confined to stages
/// `stage..` can be evaluated with [`eval_loss_from`] without re-running
/// the unperturbed prefix. Evaluation-mode forward is pure — no running
/// statistics are updated — so the cached prefix is *exact*: prefix +
/// suffix executes the identical op sequence as a full forward and the
/// resulting loss is bitwise equal.
#[derive(Debug, Clone)]
pub struct PrefixCache {
    stage: usize,
    batches: Vec<(Tensor, Vec<usize>)>,
    total: usize,
}

impl PrefixCache {
    /// The stage boundary the activations were captured at.
    pub fn stage(&self) -> usize {
        self.stage
    }

    /// Number of cached probe batches.
    pub fn num_batches(&self) -> usize {
        self.batches.len()
    }
}

/// Runs the unperturbed prefix `0..stage` once over `set` and caches the
/// boundary activations for repeated suffix evaluations.
pub fn build_prefix_cache(
    network: &mut Network,
    set: &DataSplit,
    batch_size: usize,
    stage: usize,
) -> PrefixCache {
    let batches = set
        .batches(batch_size)
        .map(|(x, labels)| (network.forward_prefix(stage, x, false), labels))
        .collect();
    PrefixCache {
        stage,
        batches,
        total: set.len(),
    }
}

/// Advances a prefix cache to a later stage boundary by running stages
/// `cache.stage()..to_stage` once per batch with the network's *current*
/// weights.
///
/// This is the batched-probe primitive: with an outer perturbation applied
/// to a layer in stage `s_i`, advancing the cache past `s_i` bakes that
/// perturbation into the boundary activations, so every inner probe at a
/// later stage `s_j` re-runs only `s_j..` instead of `s_i..`. Because the
/// stage fold composes bitwise-identically (see
/// `Network::forward_range`), losses computed from the advanced cache are
/// bit-for-bit equal to losses from the original cache.
///
/// # Panics
///
/// Panics if `to_stage < cache.stage()`.
pub fn advance_prefix_cache(
    network: &mut Network,
    cache: &PrefixCache,
    to_stage: usize,
) -> PrefixCache {
    assert!(
        to_stage >= cache.stage,
        "cannot rewind a prefix cache ({} -> {to_stage})",
        cache.stage
    );
    let batches = cache
        .batches
        .iter()
        .map(|(x, labels)| {
            (
                network.forward_range(cache.stage, to_stage, x.clone(), false),
                labels.clone(),
            )
        })
        .collect();
    PrefixCache {
        stage: to_stage,
        batches,
        total: cache.total,
    }
}

/// Evaluation-mode mean cross-entropy loss computed by running only the
/// suffix `cache.stage()..` on the cached boundary activations.
///
/// Bitwise equal to [`eval_loss`] on the same set as long as all weight
/// perturbations since the cache was built are confined to the suffix.
pub fn eval_loss_from(network: &mut Network, cache: &PrefixCache) -> f64 {
    let mut loss_weighted = 0.0f64;
    for (x, labels) in &cache.batches {
        let n = labels.len() as f64;
        let logits = network.forward_from(cache.stage, x.clone(), false);
        loss_weighted += clado_nn::cross_entropy_loss(&logits, labels) * n;
    }
    loss_weighted / cache.total as f64
}

/// Training-mode mean loss (batch-statistics BatchNorm); used by QAT-style
/// probes. Note [`quantizable_gradients`] differentiates the evaluation-mode
/// loss instead, matching Algorithm 1's `L(·)`.
pub fn train_mode_loss(network: &mut Network, set: &DataSplit, batch_size: usize) -> f64 {
    let mut loss_weighted = 0.0f64;
    for (x, labels) in set.batches(batch_size) {
        let n = labels.len() as f64;
        let logits = network.forward(x, true);
        loss_weighted += clado_nn::cross_entropy_loss(&logits, &labels) * n;
    }
    loss_weighted / set.len() as f64
}

/// Mean-loss gradients of the quantizable-layer weights, computed against
/// the *evaluation-mode* loss (running-statistics BatchNorm) so they are
/// the exact gradients of the `L(·)` that Algorithm 1 probes. Returns one
/// gradient tensor per quantizable layer, in layer order.
pub fn quantizable_gradients(
    network: &mut Network,
    set: &DataSplit,
    batch_size: usize,
) -> Vec<Tensor> {
    network.zero_grad();
    let total = set.len() as f64;
    for (x, labels) in set.batches(batch_size) {
        let n = labels.len() as f64;
        let logits = network.forward(x, false);
        let (_, mut grad) = cross_entropy(&logits, &labels);
        // cross_entropy averages within the batch; reweight so the
        // accumulated gradient is the mean over the whole set.
        grad.scale((n / total) as f32);
        network.backward(grad);
    }
    let grads = network.quantizable_weight_grads();
    network.zero_grad();
    grads
}

/// Precomputes the quantization-error tensors `Δw_m⁽ⁱ⁾ = Q(w⁽ⁱ⁾, b_m) − w⁽ⁱ⁾`
/// for every quantizable layer and candidate bit-width.
///
/// Indexed as `deltas[layer][bit_index]`.
pub fn quant_error_table(
    network: &Network,
    bits: &BitWidthSet,
    scheme: QuantScheme,
) -> Vec<Vec<Tensor>> {
    let num_layers = network.quantizable_layers().len();
    (0..num_layers)
        .map(|i| {
            let w = network.weight(i);
            bits.iter().map(|b| quant_error(&w, b, scheme)).collect()
        })
        .collect()
}

/// Evaluation-mode top-1 accuracy with the quantizable weights temporarily
/// replaced by their fake-quantized versions at the given per-layer bits.
///
/// The network is restored to its original weights before returning.
///
/// # Panics
///
/// Panics if `assignment` length differs from the quantizable-layer count.
pub fn quantized_accuracy(
    network: &mut Network,
    assignment: &[clado_quant::BitWidth],
    scheme: QuantScheme,
    split: &DataSplit,
) -> f64 {
    let snapshot = apply_quantization(network, assignment, scheme);
    let acc = clado_models::evaluate(network, split);
    network.restore_weights(&snapshot);
    acc
}

/// Replaces every quantizable weight by its fake-quantized version,
/// returning the snapshot of the original weights (for restoration).
///
/// # Panics
///
/// Panics if `assignment` length differs from the quantizable-layer count.
pub fn apply_quantization(
    network: &mut Network,
    assignment: &[clado_quant::BitWidth],
    scheme: QuantScheme,
) -> Vec<Tensor> {
    let num_layers = network.quantizable_layers().len();
    assert_eq!(assignment.len(), num_layers, "assignment length mismatch");
    let snapshot = network.snapshot_weights();
    for (i, &b) in assignment.iter().enumerate() {
        let q = clado_quant::quantize_weights(&snapshot[i], b, scheme);
        network.set_weight(i, &q);
    }
    snapshot
}

#[cfg(test)]
mod tests {
    use super::*;
    use clado_models::{SynthVision, SynthVisionConfig};
    use clado_nn::{Conv2d, GlobalAvgPool, Linear, Network, Sequential};
    use clado_quant::BitWidth;
    use clado_tensor::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net_and_data() -> (Network, SynthVision) {
        let mut rng = StdRng::seed_from_u64(1);
        let net = Network::new(
            Sequential::new()
                .push(
                    "conv",
                    Conv2d::new(Conv2dSpec::new(3, 6, 3, 1, 1), true, &mut rng),
                )
                .push("relu", clado_nn::Activation::new(clado_nn::ActKind::Relu))
                .push("pool", GlobalAvgPool::new())
                .push("fc", Linear::new(6, 4, &mut rng)),
            4,
        );
        let data = SynthVision::generate(SynthVisionConfig {
            classes: 4,
            img: 8,
            train: 64,
            val: 32,
            seed: 5,
            noise: 0.2,
            label_noise: 0.0,
        });
        (net, data)
    }

    #[test]
    fn eval_loss_is_batch_invariant() {
        let (mut net, data) = net_and_data();
        let a = eval_loss(&mut net, &data.val, 8);
        let b = eval_loss(&mut net, &data.val, 32);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn gradients_match_finite_difference_of_train_loss() {
        let (mut net, data) = net_and_data();
        let set = data.train.subset(&(0..16).collect::<Vec<_>>());
        let grads = quantizable_gradients(&mut net, &set, 16);
        assert_eq!(grads.len(), 2);
        let eps = 1e-3f32;
        // Check one coordinate of each layer.
        for (layer, idx) in [(0usize, 3usize), (1, 5)] {
            let w = net.weight(layer);
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            net.set_weight(layer, &wp);
            let lp = train_mode_loss(&mut net, &set, 16);
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            net.set_weight(layer, &wm);
            let lm = train_mode_loss(&mut net, &set, 16);
            net.set_weight(layer, &w);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let an = grads[layer].data()[idx];
            assert!(
                (fd - an).abs() < 5e-3,
                "layer {layer} idx {idx}: fd {fd} vs {an}"
            );
        }
    }

    #[test]
    fn quant_error_table_shapes() {
        let (net, _) = net_and_data();
        let bits = BitWidthSet::standard();
        let table = quant_error_table(&net, &bits, QuantScheme::PerTensorSymmetric);
        assert_eq!(table.len(), 2);
        assert_eq!(table[0].len(), 3);
        assert_eq!(table[0][0].shape(), net.weight(0).shape());
        // Errors shrink with more bits.
        assert!(table[0][0].norm_sq() > table[0][2].norm_sq());
    }

    #[test]
    fn quantized_accuracy_restores_weights() {
        let (mut net, data) = net_and_data();
        let before = net.snapshot_weights();
        let assignment = vec![BitWidth::of(2); 2];
        let _ = quantized_accuracy(
            &mut net,
            &assignment,
            QuantScheme::PerTensorSymmetric,
            &data.val,
        );
        let after = net.snapshot_weights();
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn suffix_eval_is_bitwise_equal_to_full_eval() {
        let (mut net, data) = net_and_data();
        let set = data.val.subset(&(0..24).collect::<Vec<_>>());
        let full = eval_loss(&mut net, &set, 8);
        for stage in 0..=net.num_stages() {
            let cache = build_prefix_cache(&mut net, &set, 8, stage);
            assert_eq!(cache.stage(), stage);
            assert_eq!(cache.num_batches(), 3);
            let suffix = eval_loss_from(&mut net, &cache);
            assert_eq!(
                suffix.to_bits(),
                full.to_bits(),
                "stage {stage}: {suffix} vs {full}"
            );
        }
    }

    #[test]
    fn suffix_eval_stays_exact_under_suffix_perturbations() {
        let (mut net, data) = net_and_data();
        let set = data.val.subset(&(0..16).collect::<Vec<_>>());
        // Perturbation target: the fc layer (quantizable layer 1).
        let stage = net.stage_of(1);
        let cache = build_prefix_cache(&mut net, &set, 8, stage);
        let delta = Tensor::full(net.weight(1).shape(), 0.05);
        net.perturb_weight(1, &delta);
        let full = eval_loss(&mut net, &set, 8);
        let suffix = eval_loss_from(&mut net, &cache);
        assert_eq!(suffix.to_bits(), full.to_bits(), "{suffix} vs {full}");
    }

    #[test]
    fn eight_bit_quantization_is_nearly_lossless() {
        let (mut net, data) = net_and_data();
        let base = eval_loss(&mut net, &data.val, 32);
        let snapshot = apply_quantization(
            &mut net,
            &[BitWidth::of(8); 2],
            QuantScheme::PerTensorSymmetric,
        );
        let q = eval_loss(&mut net, &data.val, 32);
        net.restore_weights(&snapshot);
        assert!((q - base).abs() < 0.05, "8-bit loss moved {base} → {q}");
    }
}
