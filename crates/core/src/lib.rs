//! # clado-core
//!
//! CLADO — Cross-LAyer-Dependency-aware Optimization for mixed-precision
//! quantization (Deng, Sharify, Wang, Orshansky — DAC 2025), reproduced in
//! Rust.
//!
//! The crate implements:
//!
//! * **Algorithm 1**: backpropagation-free measurement of the full
//!   sensitivity matrix Ĝ, including all cross-layer terms
//!   ([`measure_sensitivities`]);
//! * the **PSD approximation** and the **IQP formulation** of eq. (11)
//!   ([`assign_bits`]);
//! * the **baselines** the paper compares against: HAWQ-style Hessian-trace
//!   and MPQCO-style empirical-Fisher sensitivities ([`hawq_sensitivities`],
//!   [`mpqco_sensitivities`]), plus the CLADO\* and BRECQ-style ablations;
//! * **QAT fine-tuning** with the straight-through estimator
//!   ([`qat_finetune`], Fig. 3);
//! * exact vs fast **vᵀHv** measurement ([`exact_vhv`], [`fast_vhv`],
//!   Table 2);
//! * experiment runners used by the benchmark harness
//!   ([`ExperimentContext`]).
//!
//! ## Example
//!
//! ```no_run
//! use clado_core::{assign_bits, measure_sensitivities, AssignOptions, SensitivityOptions};
//! use clado_models::{pretrained, ModelKind};
//! use clado_quant::{BitWidthSet, LayerSizes};
//!
//! let mut p = pretrained(ModelKind::ResNet34);
//! let sens_set = p.data.train.sample_subset(64, 0);
//! let bits = BitWidthSet::standard();
//! let sm = measure_sensitivities(
//!     &mut p.network, &sens_set, &bits, &SensitivityOptions::default())
//!     .expect("sensitivity measurement");
//! let sizes = LayerSizes::new(p.network.layer_param_counts());
//! let budget = sizes.budget_from_avg_bits(3.0);
//! let assignment = assign_bits(&sm, &sizes, budget, &AssignOptions::default())?;
//! println!("bit map: {}", assignment.bitmap());
//! # Ok::<(), clado_solver::IqpError>(())
//! ```

#![warn(missing_docs)]

mod assign;
mod baselines;
mod engine;
mod errors;
mod experiments;
mod hessian;
pub mod journal;
mod probe;
mod qat;
mod search;
mod sensitivity;
mod sensitivity_io;
mod shard;

pub use assign::{assign_bits, solve_with_matrix, AssignOptions, BitAssignment, CladoVariant};
pub use baselines::{
    empirical_fisher, hawq_sensitivities, hessian_traces, mpqco_sensitivities, BaselineOptions,
};
pub use engine::{replica_map_checked, resolve_threads};
pub use errors::MeasureError;
pub use experiments::{quartiles, Algorithm, ExperimentContext, Quartiles};
pub use hessian::{exact_cross_vhv, exact_vhv, exact_vhv_direction, fast_cross_vhv, fast_vhv};
pub use journal::{JournalError, JournalState, JournalWriter, ProbeId, ProbeRecord};
pub use probe::{
    advance_prefix_cache, apply_quantization, build_prefix_cache, eval_loss, eval_loss_from,
    quant_error_table, quantizable_gradients, quantized_accuracy, train_mode_loss, PrefixCache,
    PROBE_BATCH,
};
pub use qat::{qat_finetune, QatConfig, QatReport};
pub use search::{annealing_search, random_search, SearchOptions, SearchReport};
pub use sensitivity::{
    measure_sensitivities, OmegaProvenance, SensitivityMatrix, SensitivityOptions, SensitivityStats,
};
pub use sensitivity_io::{
    load_sensitivities, save_sensitivities, sensitivities_from_bytes, sensitivities_to_bytes,
    SensitivityIoError,
};
pub use shard::{
    config_fingerprint, estimator_config_fingerprint, PartialAssembly, ShardContext, ShardRunStats,
    ShardSpec,
};
