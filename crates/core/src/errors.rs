//! Typed errors for the sensitivity-measurement pipeline.
//!
//! Before this module, every failure mode of the measurement fan-out was a
//! panic: a probe closure that panicked aborted the whole sweep, a worker
//! thread dying without reporting hit an `expect`, and a non-finite loss
//! silently poisoned the Ω matrix. [`MeasureError`] replaces all of those
//! with structured errors that the journal layer can flush before
//! surfacing, so completed probes survive any failure.
//!
//! [`MeasureError`] covers the *measurement* stage only. Failures of the
//! *solve* stage — damaged Ω matrices caught by hardening
//! (`NonFiniteObjective`, `AsymmetricObjective`, `DegenerateObjective`),
//! infeasible budgets, and cost overflow — are typed as
//! [`clado_solver::IqpError`] and surface from [`crate::assign_bits`];
//! deadline expiry and cancellation are *not* errors there, they degrade
//! to a feasible incumbent with a reported optimality gap.

use crate::journal::JournalError;
use std::fmt;

/// A failure of [`crate::measure_sensitivities`] or the replica fan-out.
#[derive(Debug)]
pub enum MeasureError {
    /// A probe closure panicked on `item` and every retry also panicked.
    WorkerPanic {
        /// Index of the work item whose closure panicked.
        item: usize,
        /// Retries already spent on this item before giving up.
        retries: usize,
        /// The panic payload rendered as text.
        message: String,
    },
    /// A worker thread died without reporting a result (e.g. killed by a
    /// double panic or `process::abort` inside the closure).
    WorkerLost {
        /// Round-robin index of the lost worker thread.
        thread: usize,
    },
    /// The checkpoint journal failed (I/O, config mismatch, non-empty
    /// directory without resume).
    Journal(JournalError),
    /// The unperturbed base loss `L(w)` was non-finite even after a
    /// retry; no sensitivity entry can be formed without it.
    NonFiniteBaseLoss {
        /// The offending value (NaN or ±Inf).
        loss: f64,
    },
    /// Ω assembly found probes of the grid with no record — the sweep
    /// ended (or a journal was loaded) before every shard completed.
    MissingProbes {
        /// Probes of the grid without a record.
        missing: usize,
        /// Total probes the configuration requires.
        total: usize,
    },
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::WorkerPanic {
                item,
                retries,
                message,
            } => write!(
                f,
                "measurement worker panicked on item {item} \
                 (after {retries} retries): {message}"
            ),
            Self::WorkerLost { thread } => write!(
                f,
                "measurement worker thread {thread} died without reporting a result"
            ),
            Self::Journal(e) => write!(f, "{e}"),
            Self::NonFiniteBaseLoss { loss } => write!(
                f,
                "base loss L(w) is non-finite ({loss}) after retry; \
                 the sensitivity set or model is unusable"
            ),
            Self::MissingProbes { missing, total } => write!(
                f,
                "sensitivity assembly is missing {missing} of {total} probe records; \
                 the sweep did not complete"
            ),
        }
    }
}

impl std::error::Error for MeasureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JournalError> for MeasureError {
    fn from(e: JournalError) -> Self {
        Self::Journal(e)
    }
}
